"""E12 — ablation of the Claim 3.5 update rule.

Compares the dual-certificate update against Figure 3's printed sign and a
naive loss-difference direction; the certificate must converge while both
ablations fail. Times one full convergence loop iteration.
"""

import numpy as np
import pytest

from repro.core.update import dual_certificate, mw_step
from repro.data.builders import signed_cube
from repro.data.histogram import Histogram
from repro.experiments.diagnostics import run_update_rule_ablation
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def report():
    return run_update_rule_ablation(rng=0)


def test_e12_report(report, save_report):
    text = save_report(report)
    assert "dual certificate" in text


def test_e12_certificate_beats_ablations(report):
    table = report.sections[0]
    rows = {line.split("|")[0].strip(): float(line.split("|")[1])
            for line in table.splitlines()[3:]}
    ours = rows["dual certificate (ours)"]
    assert ours < rows["initial (uniform hypothesis)"]
    assert ours < rows["Figure 3 printed sign (+)"]
    assert ours < rows["naive loss-difference"]


def test_e12_paper_sign_diverges(report):
    table = report.sections[0]
    rows = {line.split("|")[0].strip(): float(line.split("|")[1])
            for line in table.splitlines()[3:]}
    assert rows["Figure 3 printed sign (+)"] > rows["initial (uniform hypothesis)"]


def test_bench_convergence_iteration(benchmark, report, save_report):
    save_report(report)
    universe = signed_cube(6)
    loss = QuadraticLoss(L2Ball(6))
    rng = np.random.default_rng(0)
    data = Histogram(universe, rng.dirichlet(np.full(universe.size, 0.1)))
    theta_star = minimize_loss(loss, data).theta
    state = {"hypothesis": Histogram.uniform(universe)}
    scale = loss.scale_bound()

    def one_iteration():
        certificate = dual_certificate(loss, state["hypothesis"], theta_star)
        state["hypothesis"] = mw_step(state["hypothesis"], certificate,
                                      eta=0.05, scale=scale)

    benchmark(one_iteration)
