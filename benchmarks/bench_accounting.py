"""E14 — composition accounting: basic vs Theorem 3.10 vs Rényi.

The paper charges its T oracle calls via advanced composition
(Theorem 3.10). For Gaussian-noise oracles, modern Rényi accounting is
substantially tighter; this benchmark quantifies the gap — i.e. how much
extra accuracy the same mechanism could buy with post-2015 accounting —
and times the accountant itself.
"""

import pytest

from repro.dp.renyi import RenyiAccountant, gaussian_composition_comparison
from repro.experiments.report import ExperimentReport


@pytest.fixture(scope="module")
def report():
    report = ExperimentReport("E14 accounting: basic vs Thm 3.10 vs Renyi")
    rows = []
    for releases in (10, 100, 1000):
        result = gaussian_composition_comparison(
            noise_multiplier=50.0, releases=releases, delta=1e-6,
        )
        rows.append([
            releases,
            result["basic"].epsilon,
            result["advanced"].epsilon,
            result["renyi"].epsilon,
            result["advanced"].epsilon / result["renyi"].epsilon,
        ])
    report.add_table(
        ["releases", "basic eps", "advanced (Thm 3.10) eps", "Renyi eps",
         "advanced / Renyi"],
        rows,
        title="Gaussian releases at noise multiplier 50, delta = 1e-6",
    )
    report.add(
        "the paper's Theorem 3.10 accounting is the 2015 state of the art; "
        "Renyi accounting (2017+) would let the same mechanism run its "
        "oracles at proportionally lower noise. The library's formal "
        "guarantees stay on the paper's path; RenyiAccountant is provided "
        "for comparison."
    )
    return report


def test_e14_report(report, save_report):
    text = save_report(report)
    assert "Renyi" in text


def test_e14_renyi_strictly_tighter(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        cells = [float(c) for c in line.split("|")]
        releases, basic, advanced, renyi, ratio = cells
        assert renyi < advanced
        assert renyi < basic


def test_e14_gap_grows_with_releases(report):
    table = report.sections[0]
    ratios = [float(line.split("|")[-1]) for line in table.splitlines()[3:]]
    assert ratios == sorted(ratios)


def test_bench_renyi_accounting(benchmark, report, save_report):
    save_report(report)

    def account():
        accountant = RenyiAccountant()
        accountant.record_gaussian(50.0, count=1000)
        return accountant.to_dp(1e-6)

    benchmark(account)
