"""E24 — pluggable numeric backend on the MW hot path.

The backend refactor (``repro.backend``) moved every heavy kernel of the
mechanism loop — fused log-weight accumulation, deferred normalization,
linear-answer matvecs, GLM margin matmuls, cached-CDF sampling — behind
the :class:`~repro.backend.base.ArrayBackend` protocol, with the NumPy
float64 default extracted bitwise and accelerated implementations
(float32 SIMD-friendly NumPy always; JAX when installed) registered
beside it. This benchmark measures the claim the protocol exists for:
the accelerated backend runs the same hot path materially faster while
staying inside the documented 1e-6 agreement band.

1. **cm_hot_loop** — the raw mechanism inner loop at large ``|X|``
   (full mode: 10^6): in-place MW accumulation, the deferred
   normalization (materialize), and a probe ``dot`` per round,
   accelerated backend vs the dense NumPy default.
2. **glm_margin** — the batched GLM margin matmul
   (``kernels.glm_margin_matrix``), the engine's flop-heavy kernel.
3. **sampling** — cached-CDF inverse sampling (``build_cdf`` once, then
   repeated ``sample_indices`` batches).

The ≥5x full-mode bar applies only where hardware/runtime support it —
i.e. when the accelerated backend is the jitted JAX one. The float32
NumPy backend is bandwidth-bound and is held to the more modest
``FLOAT32_BAR`` on the hot loop instead; every mode asserts the 1e-6
agreement contract. Smoke mode (CI) runs small, asserts agreement plus
a catastrophic-regression floor, and archives
``BENCH_backend.smoke.json`` whose ``gated_speedups`` feed the nightly
regression gate (``tools/check_bench_regression.py``).
"""

import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.backend import available_backends, get_backend, jax_available
from repro.data.builders import interval_grid
from repro.data.log_histogram import hypothesis_core
from repro.engine import kernels
from repro.experiments.report import ExperimentReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_backend.json"

#: Agreement band every non-default backend must stay inside.
TOLERANCE = 1e-6

#: Full-mode hot-loop bar for a genuinely accelerated (jitted JAX)
#: backend; the float32 NumPy fallback is bandwidth-bound and held to
#: FLOAT32_BAR. Smoke mode only guards against catastrophic regression
#: (the nightly JSON diff tracks the real trajectory).
FULL_BAR = 5.0
FLOAT32_BAR = 1.05
SMOKE_BAR = 0.5

FULL_SIZES = dict(universe_size=1_000_000, rounds=24, glm_batch=96,
                  glm_dim=16, sample_batches=32)
SMOKE_SIZES = dict(universe_size=100_000, rounds=12, glm_batch=32,
                   glm_dim=8, sample_batches=8)


def accelerated_name() -> str:
    """The fastest registered non-default backend on this machine."""
    return "jax" if jax_available() else "float32"


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def cm_hot_loop(universe_size, *, rounds=24, timing_repeats=3):
    """Section 1: update + deferred normalize + probe dot, per backend."""
    rng = np.random.default_rng(10)
    universe = interval_grid(universe_size)
    directions = rng.uniform(-1.0, 1.0, (rounds, universe_size))
    probe = rng.random(universe_size)

    def run(backend_name):
        core = hypothesis_core(universe, backend=backend_name)
        total = 0.0
        for direction in directions:
            core.apply_update(direction, 0.05)
            total += core.dot(probe)
        return np.asarray(core.weights, dtype=float), total

    name = accelerated_name()
    run(name)  # warm-up: JIT compilation must not ride the timing
    numpy_seconds, (numpy_weights, _) = _best_of(
        timing_repeats, lambda: run("numpy"))
    accel_seconds, (accel_weights, _) = _best_of(
        timing_repeats, lambda: run(name))
    return {
        "universe": universe_size, "rounds": rounds, "accelerated": name,
        "numpy_seconds": numpy_seconds, "accelerated_seconds": accel_seconds,
        "speedup": numpy_seconds / accel_seconds,
        "max_divergence": float(np.max(np.abs(accel_weights
                                              - numpy_weights))),
    }


def glm_margin(universe_size, *, batch=96, dim=16, timing_repeats=5):
    """Section 2: the ``|X|×d @ d×B`` margin matmul per backend."""
    rng = np.random.default_rng(11)
    points = rng.standard_normal((universe_size, dim))
    parameters = rng.standard_normal((dim, batch))

    name = accelerated_name()
    backend = get_backend(name)
    points_native = backend.from_float64(points)
    parameters_native = backend.from_float64(parameters)
    backend.matmul(points_native, parameters_native)  # warm-up / JIT

    numpy_seconds, numpy_margins = _best_of(
        timing_repeats,
        lambda: kernels.glm_margin_matrix(points, parameters))
    accel_seconds, accel_margins = _best_of(
        timing_repeats,
        lambda: backend.matmul(points_native, parameters_native))
    return {
        "universe": universe_size, "batch": batch, "dim": dim,
        "accelerated": name,
        "numpy_seconds": numpy_seconds, "accelerated_seconds": accel_seconds,
        "speedup": numpy_seconds / accel_seconds,
        # Margins are pre-link inner products of O(d) standard normals;
        # normalize the deviation to the float32 scale of the values.
        "max_divergence": float(np.max(np.abs(
            np.asarray(accel_margins, dtype=float) - numpy_margins))
            / max(1.0, float(np.max(np.abs(numpy_margins))))),
    }


def sampling(universe_size, *, batches=32, draw=4096, timing_repeats=3):
    """Section 3: cached-CDF inverse sampling per backend."""
    rng = np.random.default_rng(12)
    universe = interval_grid(universe_size)
    direction = rng.uniform(-1.0, 1.0, universe_size)

    def run(backend_name):
        core = hypothesis_core(universe, backend=backend_name)
        core.apply_update(direction, 0.5)
        frozen = core.freeze()
        out = []
        for index in range(batches):
            out.append(frozen.sample_indices(
                draw, rng=np.random.default_rng(100 + index)))
        return np.concatenate(out)

    name = accelerated_name()
    run(name)  # warm-up
    numpy_seconds, numpy_samples = _best_of(
        timing_repeats, lambda: run("numpy"))
    accel_seconds, accel_samples = _best_of(
        timing_repeats, lambda: run(name))
    return {
        "universe": universe_size, "batches": batches, "draw": draw,
        "accelerated": name,
        "numpy_seconds": numpy_seconds, "accelerated_seconds": accel_seconds,
        "speedup": numpy_seconds / accel_seconds,
        "sample_agreement": float(np.mean(numpy_samples == accel_samples)),
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cm = cm_hot_loop(sizes["universe_size"], rounds=sizes["rounds"])
    glm = glm_margin(sizes["universe_size"], batch=sizes["glm_batch"],
                     dim=sizes["glm_dim"])
    samp = sampling(sizes["universe_size"],
                    batches=sizes["sample_batches"])
    return {
        "benchmark": "backend",
        "mode": "smoke" if smoke else "full",
        "accelerated": accelerated_name(),
        "backends": available_backends(),
        "bar": SMOKE_BAR if smoke else (
            FULL_BAR if accelerated_name() == "jax" else FLOAT32_BAR),
        "cm_hot_loop": cm,
        "glm_margin": glm,
        "sampling": samp,
    }


def build_report(results):
    report = ExperimentReport("E24 pluggable numeric backend")
    report.add(f"backends registered: {results['backends']}; "
               f"accelerated under test: {results['accelerated']!r} "
               f"(hot-loop bar {results['bar']}x, agreement <= "
               f"{TOLERANCE:g})")
    cm = results["cm_hot_loop"]
    report.add_table(
        ["|X|", "rounds", "numpy s", "accel s", "speedup", "max |dw|"],
        [[cm["universe"], cm["rounds"], cm["numpy_seconds"],
          cm["accelerated_seconds"], cm["speedup"], cm["max_divergence"]]],
        title="MW hot loop: in-place accumulate + deferred normalize + "
              "probe dot",
    )
    glm = results["glm_margin"]
    report.add_table(
        ["|X|", "batch", "d", "numpy s", "accel s", "speedup",
         "rel |dM|"],
        [[glm["universe"], glm["batch"], glm["dim"], glm["numpy_seconds"],
          glm["accelerated_seconds"], glm["speedup"],
          glm["max_divergence"]]],
        title="GLM margin matmul (kernels.glm_margin_matrix)",
    )
    samp = results["sampling"]
    report.add_table(
        ["|X|", "batches", "draw", "numpy s", "accel s", "speedup",
         "agree"],
        [[samp["universe"], samp["batches"], samp["draw"],
          samp["numpy_seconds"], samp["accelerated_seconds"],
          samp["speedup"], f"{samp['sample_agreement']:.1%}"]],
        title="cached-CDF inverse sampling (build once, draw repeatedly)",
    )
    return report


def write_json(results, path=None, json_dir=None):
    """Archive machine-readable results (see bench_hot_loop.write_json)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if path is None:
        name = JSON_NAME if results["mode"] == "full" \
            else JSON_NAME.replace(".json", ".smoke.json")
        if json_dir is not None:
            directory = pathlib.Path(json_dir)
        elif results["mode"] == "full":
            directory = RESULTS_DIR
        else:
            directory = pathlib.Path(tempfile.gettempdir()) \
                / "repro-bench-smoke"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
    payload = dict(results)
    payload["speedups"] = {
        section: results[section]["speedup"]
        for section in ("cm_hot_loop", "glm_margin", "sampling")
    }
    # Only the flop-heavy margin matmul feeds the nightly regression
    # gate: with the float32 fallback the hot loop and sampling sit near
    # bandwidth parity (1.0-1.5x) and a -20% floor there would flake on
    # scheduler noise. The sgemm advantage itself swings 3x-5x with BLAS
    # scheduling, so the gated value is capped: losing the advantage
    # entirely (~1x) still trips the floor, a lucky 5x baseline cannot.
    payload["gated_speedups"] = {
        "glm_margin": min(results["glm_margin"]["speedup"], 3.0),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    cm = results["cm_hot_loop"]
    assert cm["max_divergence"] <= TOLERANCE, (
        f"accelerated backend {cm['accelerated']!r} left the agreement "
        f"band: max |dw| = {cm['max_divergence']:.3g} > {TOLERANCE:g}"
    )
    assert results["glm_margin"]["max_divergence"] <= TOLERANCE
    # float32 weight rounding shifts each CDF boundary by ~1e-7, so a
    # draw landing inside a shifted sliver picks the neighboring index.
    # Expected flip fraction is sum_i |dCDF_i| — it grows with |X|
    # (~0.1% at 1e5 bins, ~1% at 1e6) and is an index-label effect, not
    # a distributional one; the bar guards against gross divergence.
    assert results["sampling"]["sample_agreement"] >= 0.98, (
        f"inverse-CDF sampling diverged: "
        f"{results['sampling']['sample_agreement']:.4%} agreement"
    )
    bar = results["bar"]
    assert cm["speedup"] >= bar, (
        f"hot-loop speedup {cm['speedup']:.2f}x below the {bar}x bar for "
        f"accelerated backend {cm['accelerated']!r} at "
        f"|X|={cm['universe']}"
    )


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e24_report(results, save_report):
    text = save_report(build_report(results))
    assert "pluggable numeric backend" in text


def test_e24_bars(results):
    check_bars(results)


def test_e24_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["mode"] == "full"
    assert "glm_margin" in payload["gated_speedups"]


# -- standalone / CI ----------------------------------------------------------


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    json_dir = None
    if "--json-dir" in sys.argv:
        position = sys.argv.index("--json-dir") + 1
        if position >= len(sys.argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = sys.argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e24.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    print(f"OK: hot-loop speedup {outcome['cm_hot_loop']['speedup']:.2f}x "
          f">= {outcome['bar']}x with backend "
          f"{outcome['accelerated']!r} ({outcome['mode']} mode)")
