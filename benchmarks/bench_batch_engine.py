"""E17 — batched query evaluation: loss matrices, margin matrices, shards.

The `repro.engine` subsystem claims that a whole batch of queries can be
evaluated against a histogram in one vectorized pass per family, and that
large universes should run their MW updates shard-by-shard. This benchmark
measures the claims the PR is gated on:

1. **GLM margin-matrix kernel** — a 64-query logistic batch evaluated via
   one ``|X|×d @ d×B`` matmul vs the per-query scalar loop (asserted
   >= 3x, and batched answers within 1e-10 of scalar);
2. **loss-matrix linear answers** — 64 range queries over a 200k-element
   universe as one matvec vs per-query dot products;
3. **batched data-side minima** — the squared family's closed form via
   one shared moment computation vs per-query exact solves;
4. **sharded MW update** — `ShardedHistogram.multiplicative_update` at
   |X| = 2·10^6 vs the dense update (identical weights out);
5. **end-to-end PMW-linear** — a large-universe interval workload through
   the segment-batched `answer_all` vs the per-query `answer()` loop.

Run standalone (``python benchmarks/bench_batch_engine.py``) or via
pytest (``pytest benchmarks/bench_batch_engine.py -s``).
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.core.pmw_linear import PrivateMWLinear
from repro.data import Histogram, make_classification_dataset
from repro.data.sharded import ShardedHistogram
from repro.engine import batch_data_minima, compile_batch
from repro.experiments.report import ExperimentReport
from repro.experiments.workloads import large_universe_workload
from repro.losses.families import (
    random_logistic_family,
    random_squared_family,
)
from repro.optimize.minimize import minimize_loss

BATCH = 64
REPEATS = 5


def _best_of(repeats, fn):
    """Best-of-N wall time (and the last return value, for checks)."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def glm_margin_kernel(family, universe_points=20_000, d=8):
    """Sections 1a/1b: the blocked margin-matrix kernel per GLM family.

    The squared family is the headline (>= 3x asserted): its link is
    cheap, so the evaluation is memory-bound and the universe-blocked
    layout wins big. Logistic is reported alongside for honesty — its
    ``logaddexp`` link is transcendental-bound, so the kernel's ceiling
    is lower there.
    """
    task = make_classification_dataset(n=4_000, d=d,
                                       universe_size=universe_points, rng=0)
    histogram = task.dataset.histogram()
    losses = family(task.universe, BATCH, rng=1)
    rng = np.random.default_rng(2)
    thetas = [rng.standard_normal(d) * 0.4 for _ in losses]

    scalar_seconds, scalar = _best_of(REPEATS, lambda: np.array(
        [loss.loss_on(theta, histogram)
         for loss, theta in zip(losses, thetas)]
    ))
    batch = compile_batch(losses)
    batched_seconds, batched = _best_of(
        REPEATS, lambda: batch.loss_values(thetas, histogram))
    return {
        "family": losses[0].__class__.__name__,
        "universe": histogram.universe.size, "dim": d, "batch": BATCH,
        "scalar_seconds": scalar_seconds, "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "max_divergence": float(np.max(np.abs(scalar - batched))),
    }


def linear_loss_matrix(universe_size=200_000, k=BATCH):
    """Section 2: whole-batch linear answers as one matvec."""
    workload = large_universe_workload(universe_size=universe_size, k=k,
                                       n=50_000, rng=3)
    histogram = workload.dataset.histogram()
    queries = workload.queries

    scalar_seconds, scalar = _best_of(REPEATS, lambda: np.array(
        [histogram.dot(query.table) for query in queries]
    ))
    batch = compile_batch(queries)
    batched_seconds, batched = _best_of(
        REPEATS, lambda: batch.linear_answers(histogram))
    return {
        "universe": universe_size, "batch": k,
        "scalar_seconds": scalar_seconds, "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "max_divergence": float(np.max(np.abs(scalar - batched))),
    }


def batched_data_minima(universe_points=10_000, d=6):
    """Section 3: squared-family closed forms through shared moments."""
    task = make_classification_dataset(n=4_000, d=d,
                                       universe_size=universe_points, rng=4)
    histogram = task.dataset.histogram()
    losses = random_squared_family(task.universe, BATCH, rng=5)

    scalar_seconds, scalar = _best_of(1, lambda: [
        minimize_loss(loss, histogram) for loss in losses
    ])
    batched_seconds, batched = _best_of(
        1, lambda: batch_data_minima(losses, histogram))
    divergence = max(
        float(np.max(np.abs(a.theta - b.theta)))
        for a, b in zip(scalar, batched)
    )
    return {
        "universe": histogram.universe.size, "dim": d, "batch": BATCH,
        "scalar_seconds": scalar_seconds, "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "max_divergence": divergence,
    }


def sharded_update(universe_size=2_000_000, shards=8):
    """Section 4: shard-local MW updates at a multi-million universe."""
    rng = np.random.default_rng(6)
    from repro.data.builders import interval_grid

    universe = interval_grid(universe_size)
    weights = rng.random(universe_size) + 1e-9
    direction = rng.standard_normal(universe_size) * 0.5
    dense = Histogram(universe, weights)
    sharded = ShardedHistogram(universe, weights, num_shards=shards,
                               workers=4)

    dense_seconds, dense_out = _best_of(
        3, lambda: dense.multiplicative_update(direction, 0.3))
    sharded_seconds, sharded_out = _best_of(
        3, lambda: sharded.multiplicative_update(direction, 0.3))
    return {
        "universe": universe_size, "shards": shards,
        "dense_seconds": dense_seconds, "sharded_seconds": sharded_seconds,
        "ratio": dense_seconds / sharded_seconds,
        "max_divergence": float(np.max(np.abs(
            dense_out.weights - sharded_out.weights))),
    }


def cm_stream_prewarm(universe_points=6_000, d=6, k=BATCH):
    """Section 5: a whole PMW-CM stream with and without engine prewarm.

    ``prewarm=True`` routes the batch's data-side minimizations through
    :func:`repro.engine.batch_data_minima` (shared moment computation for
    the squared family) before the stream runs; ``prewarm=False`` is the
    pre-engine behaviour (one lazy universe-sized solve per round).
    Answers must agree exactly up to floating point.
    """
    from repro.core.pmw_cm import PrivateMWConvex
    from repro.erm.oracle import NonPrivateOracle

    task = make_classification_dataset(n=4_000, d=d,
                                       universe_size=universe_points, rng=9)
    losses = random_squared_family(task.universe, k, rng=10)
    scale = max(loss.scale_bound() for loss in losses)
    params = dict(scale=scale, alpha=0.3, epsilon=2.0, delta=1e-6,
                  max_updates=8, solver_steps=60)

    def run(prewarm):
        mechanism = PrivateMWConvex(
            task.dataset, NonPrivateOracle(solver_steps=60), rng=11,
            **params)
        return mechanism.answer_all(losses, on_halt="hypothesis",
                                    prewarm=prewarm)

    scalar_seconds, scalar = _best_of(3, lambda: run(False))
    batched_seconds, batched = _best_of(3, lambda: run(True))
    return {
        "universe": task.universe.size, "batch": k,
        "scalar_seconds": scalar_seconds, "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "max_divergence": max(
            float(np.max(np.abs(a.theta - b.theta)))
            for a, b in zip(scalar, batched)),
    }


def linear_stream(universe_size=100_000, k=BATCH):
    """Section 6: a whole PMW-linear stream, scalar loop vs engine path.

    Linear streams are memory-bandwidth-bound (each table is read once
    per hypothesis version either way), so the interesting claims here
    are exact agreement and not regressing — the big linear win is the
    single-matvec *answering* of section 2, not the update stream.
    """
    workload = large_universe_workload(universe_size=universe_size, k=k,
                                       n=50_000, shards=4, rng=7)

    def scalar_run():
        mechanism = PrivateMWLinear(
            workload.dataset, alpha=0.15, epsilon=2.0, max_updates=15,
            rng=8)
        return [mechanism.answer(query) for query in workload.queries]

    def batched_run():
        mechanism = PrivateMWLinear(
            workload.dataset, alpha=0.15, epsilon=2.0, max_updates=15,
            shards=workload.shards, rng=8)
        return mechanism.answer_all(workload.queries)

    scalar_seconds, scalar = _best_of(3, scalar_run)
    batched_seconds, batched = _best_of(3, batched_run)
    return {
        "universe": universe_size, "batch": k,
        "scalar_seconds": scalar_seconds, "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "max_divergence": max(
            abs(a.value - b.value) for a, b in zip(scalar, batched)),
    }


def build_report():
    report = ExperimentReport("E17 batched evaluation engine")

    glm = glm_margin_kernel(random_squared_family)
    logistic = glm_margin_kernel(random_logistic_family)
    report.add_table(
        ["family", "|X|", "d", "batch", "scalar s", "batched s", "speedup",
         "max |diff|"],
        [[row["family"], row["universe"], row["dim"], row["batch"],
          row["scalar_seconds"], row["batched_seconds"], row["speedup"],
          row["max_divergence"]]
         for row in (glm, logistic)],
        title=f"blocked margin-matrix kernel: {BATCH}-loss batch, "
              f"one universe pass vs per-query loop",
    )

    linear = linear_loss_matrix()
    report.add_table(
        ["|X|", "batch", "scalar s", "batched s", "speedup", "max |diff|"],
        [[linear["universe"], linear["batch"], linear["scalar_seconds"],
          linear["batched_seconds"], linear["speedup"],
          linear["max_divergence"]]],
        title="loss-matrix linear answers: one matvec vs per-query dots",
    )

    minima = batched_data_minima()
    report.add_table(
        ["|X|", "d", "batch", "scalar s", "batched s", "speedup",
         "max |theta diff|"],
        [[minima["universe"], minima["dim"], minima["batch"],
          minima["scalar_seconds"], minima["batched_seconds"],
          minima["speedup"], minima["max_divergence"]]],
        title="batched data minima: squared family via shared moments",
    )

    shard = sharded_update()
    report.add_table(
        ["|X|", "shards", "dense s", "sharded s", "dense/sharded",
         "max |diff|"],
        [[shard["universe"], shard["shards"], shard["dense_seconds"],
          shard["sharded_seconds"], shard["ratio"],
          shard["max_divergence"]]],
        title="sharded MW update (workers=4) vs dense, |X| = 2e6",
    )

    cm_stream = cm_stream_prewarm()
    report.add_table(
        ["|X|", "batch", "lazy s", "prewarmed s", "speedup", "max |diff|"],
        [[cm_stream["universe"], cm_stream["batch"],
          cm_stream["scalar_seconds"], cm_stream["batched_seconds"],
          cm_stream["speedup"], cm_stream["max_divergence"]]],
        title="end-to-end PMW-CM stream: lazy per-round data minima vs "
              "engine prewarm",
    )

    stream = linear_stream()
    report.add_table(
        ["|X|", "batch", "scalar s", "batched s", "speedup", "max |diff|"],
        [[stream["universe"], stream["batch"], stream["scalar_seconds"],
          stream["batched_seconds"], stream["speedup"],
          stream["max_divergence"]]],
        title="end-to-end PMW-linear stream: answer() loop vs "
              "block-batched answer_all (sharded hypothesis)",
    )
    return report, glm, linear, shard, cm_stream, stream


# -- pytest entry points ------------------------------------------------------

@pytest.fixture(scope="module")
def results():
    return build_report()


def test_e17_report(results, save_report):
    report = results[0]
    text = save_report(report)
    assert "batched evaluation" in text


def test_e17_glm_batch_at_least_3x(results):
    glm = results[1]
    assert glm["speedup"] >= 3.0, (
        f"expected >= 3x over the per-query loop on a {BATCH}-query "
        f"batch, got {glm['speedup']:.2f}x"
    )
    assert glm["max_divergence"] < 1e-10


def test_e17_linear_matvec_not_slower_and_exact(results):
    linear = results[2]
    assert linear["speedup"] >= 1.0
    assert linear["max_divergence"] < 1e-10


def test_e17_sharded_update_exact(results):
    shard = results[3]
    assert shard["max_divergence"] == 0.0


def test_e17_cm_stream_prewarm_faster_and_agrees(results):
    cm_stream = results[4]
    assert cm_stream["max_divergence"] < 1e-10
    assert cm_stream["speedup"] >= 1.0


def test_e17_linear_stream_agrees(results):
    stream = results[5]
    assert stream["max_divergence"] < 1e-10


if __name__ == "__main__":
    report, glm, linear, shard, cm_stream, stream = build_report()
    print(report.render())
    ok = (glm["speedup"] >= 3.0 and glm["max_divergence"] < 1e-10
          and linear["max_divergence"] < 1e-10
          and shard["max_divergence"] == 0.0
          and cm_stream["max_divergence"] < 1e-10
          and stream["max_divergence"] < 1e-10)
    print(f"acceptance: glm batch speedup={glm['speedup']:.1f}x (need >= 3), "
          f"agreement within 1e-10={glm['max_divergence'] < 1e-10}, "
          f"sharded update exact={shard['max_divergence'] == 0.0} "
          f"-> {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
