"""E5 — the composition-vs-PMW crossover (Section 1 / 4.1).

Races the paper's mechanism against k independent oracle calls on the same
workload and budget, locating the k where PMW starts winning. Also times
one composition-baseline call at a heavily split budget.
"""

import pytest

from repro.core.composition_baseline import CompositionBaseline
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.crossover import run_crossover
from repro.experiments.workloads import classification_workload
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_crossover(trials=2, rng=0)


def test_e5_report(report, save_report):
    text = save_report(report)
    assert "winner" in text


def test_e5_pmw_wins_eventually(report):
    table = report.sections[0]
    last_row = table.splitlines()[-1]
    assert last_row.rstrip().endswith("PMW"), \
        "PMW must win at the largest k (the paper's core claim)"


def test_e5_composition_wins_small_k(report):
    table = report.sections[0]
    first_row = table.splitlines()[3]
    assert "composition" in first_row, \
        "for few queries the direct approach should still win"


def test_bench_composition_call(benchmark, report, save_report):
    save_report(report)
    workload = classification_workload(
        n=30_000, d=4, k=4, family_builder=random_logistic_family,
        universe_size=150, rng=0,
    )
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)
    baseline = CompositionBaseline(workload.dataset, oracle,
                                   planned_queries=10_000, epsilon=1.0,
                                   delta=1e-6, rng=1)
    stream = iter(workload.losses * 2_500)

    benchmark(lambda: baseline.answer(next(stream)))
