"""E7 — Claim 3.5, the dual-certificate inequality.

Verifies the paper's key lemma over hundreds of random instances (zero
violations expected — it is a theorem; the benchmark guards the
implementation) and times certificate construction.
"""

import numpy as np
import pytest

from repro.core.update import dual_certificate
from repro.data.builders import signed_cube
from repro.data.histogram import Histogram
from repro.experiments.diagnostics import run_dual_certificate_check
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def report():
    return run_dual_certificate_check(samples=300, rng=0)


def test_e7_report(report, save_report):
    text = save_report(report)
    assert "zero violations" in text


def test_e7_no_violations(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        violations = int(line.split("|")[-1])
        assert violations == 0


def test_bench_certificate_construction(benchmark, report, save_report):
    save_report(report)
    universe = signed_cube(9)  # |X| = 512
    loss = QuadraticLoss(L2Ball(9))
    rng = np.random.default_rng(0)
    hypothesis = Histogram(universe,
                           rng.dirichlet(np.full(universe.size, 0.5)))
    theta = loss.domain.random_point(rng)

    benchmark(lambda: dual_certificate(loss, hypothesis, theta))
