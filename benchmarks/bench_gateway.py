"""E19 — sustained-load throughput of the coalescing request gateway.

PR 4's tentpole claim: under concurrent analyst traffic, the
`ServiceGateway` (bounded per-session queues + cross-session worker pool
+ batch coalescing into the engine-prewarmed serving path) sustains at
least **2x** the throughput of the status quo ante — a single dispatcher
submitting the same arrival order one at a time against a plain
`PMWService`. Sections:

1. **sustained load** (the gated bar) — N concurrent analysts (64 at
   full size) each flood a burst of squared-GLM CM queries at their own
   pmw-convex session; the naive twin serves the identical round-robin
   arrival order serially. Coalescing converts each analyst's backlog
   into engine passes on *both* sides of the round: the lane's
   data-side minima batch through the shared-moment kernel
   (`PrivateMWConvex.prewarm`), and the lane's hypothesis-side solves
   batch per version through the same kernel
   (`PrivateMWConvex._batch_hypothesis_minima`). Every run rebuilds its
   query objects, so fingerprint hashing is paid identically by both
   modes, and answers must agree between the runs (deterministic twins:
   `noise_multiplier=0`, same seeds).
2. **coalescing only** — the same comparison with a single gateway
   worker: the win is purely algorithmic batching, no parallelism (the
   number that matters on a 1-CPU host).
3. **linear sessions** (informational) — interval linear queries
   against PMW-linear sessions: rounds are single dots and request cost
   is dominated by fingerprint hashing, so only the batched true-answer
   matvec (`PrivateMWLinear.prewarm`) helps — the honest number for
   hash-bound workloads.

Results are archived as text (``benchmarks/results/e19.txt``) and JSON
(``benchmarks/results/BENCH_gateway.json``); smoke runs write
``BENCH_gateway.smoke.json`` — the nightly regression workflow diffs
fresh smoke numbers against the committed baseline.

Run standalone (``python benchmarks/bench_gateway.py``), in CI smoke
mode (``--smoke`` — small sizes, asserts the sustained-load speedup
>= 1.3x), or via pytest (``pytest benchmarks/bench_gateway.py -s``).
``--json-dir DIR`` redirects the JSON artifact (used by the nightly
benchmark-regression workflow).
"""

import json
import os
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.data.builders import interval_grid
from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_squared_family
from repro.losses.linear import LinearQuery
from repro.serve.service import PMWService

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_gateway.json"

#: Regression bars on the sustained-load speedup. Full mode runs 64
#: concurrent analysts; smoke (CI) runs small.
FULL_BAR = 2.0
SMOKE_BAR = 1.3

FULL_SIZES = dict(analysts=64, queries_per_analyst=12,
                  universe_size=50_000, d=10, workers=2)
SMOKE_SIZES = dict(analysts=16, queries_per_analyst=8,
                   universe_size=20_000, d=6, workers=2)

#: Both serving modes are timed best-of-N over fresh twin services AND
#: fresh query objects (fingerprints are memoized per object — reusing
#: objects across runs would hand whichever mode runs later a free
#: hash), the same noise control the hot-loop benchmark uses.
TIMING_REPEATS = 3

CONVEX_PARAMS = dict(oracle="non-private", alpha=0.25, beta=0.1,
                     epsilon=2.0, delta=1e-6, schedule="calibrated",
                     max_updates=6, solver_steps=30, noise_multiplier=0.0)
LINEAR_PARAMS = dict(alpha=0.1, epsilon=2.0, delta=1e-6, max_updates=8,
                     noise_multiplier=0.0)


# -- workloads ----------------------------------------------------------------


def convex_workload(sizes):
    """(dataset, params, streams_factory) for squared-GLM CM traffic."""
    task = make_classification_dataset(n=20_000, d=sizes["d"],
                                       universe_size=sizes["universe_size"],
                                       rng=1)

    def build_streams():
        streams, scale = [], 0.0
        for index in range(sizes["analysts"]):
            family = random_squared_family(
                task.universe, sizes["queries_per_analyst"] - 1,
                rng=3000 + index)
            scale = max(scale, max(loss.scale_bound() for loss in family))
            # One tail repeat per analyst: dashboards re-ask, and the
            # repeat rides the zero-cost cache lane in both modes.
            streams.append(list(family) + [family[0]])
        return streams, scale

    _, scale = build_streams()
    params = dict(CONVEX_PARAMS, scale=2.0 * scale)
    return task.dataset, params, lambda: build_streams()[0]


def linear_workload(sizes, *, n=30_000):
    """(dataset, params, streams_factory) for interval linear traffic."""
    universe_size = sizes["universe_size"]
    universe = interval_grid(universe_size)
    generator = np.random.default_rng(1)
    indices = np.concatenate([
        np.zeros(int(0.7 * n), dtype=int),
        generator.choice(universe_size, size=n - int(0.7 * n)),
    ])
    dataset = Dataset(universe, indices)

    def build_streams():
        streams = []
        for index in range(sizes["analysts"]):
            rng = np.random.default_rng(2000 + index)
            queries = []
            for position in range(sizes["queries_per_analyst"] - 1):
                table = np.zeros(universe_size)
                start = int(rng.integers(0, universe_size // 2))
                width = int(rng.integers(universe_size // 8,
                                         universe_size // 3))
                table[start:start + width] = 1.0
                table.setflags(write=False)
                queries.append(LinearQuery(
                    table, name=f"interval-{index}-{position}"))
            streams.append(queries + [queries[0]])
        return streams

    return dataset, dict(LINEAR_PARAMS), build_streams


# -- the two serving modes ----------------------------------------------------


def open_sessions(service, mechanism, analysts, params):
    return [
        service.open_session(mechanism, analyst=f"analyst-{index}",
                             **params)
        for index in range(analysts)
    ]


def arrival_order(sids, streams):
    """Round-robin interleaving: the arrival order a single dispatcher
    would see from concurrent analysts."""
    return [(sid, stream[position])
            for position in range(len(streams[0]))
            for sid, stream in zip(sids, streams)]


def run_naive(dataset, streams, analysts, *, mechanism, params, rng=17):
    """Status quo ante: one dispatcher, blocking submit per request."""
    service = PMWService(dataset, rng=rng)
    sids = open_sessions(service, mechanism, analysts, params)
    requests = arrival_order(sids, streams)
    answers = {sid: [] for sid in sids}
    started = time.perf_counter()
    for sid, query in requests:
        answers[sid].append(service.submit(sid, query,
                                           on_halt="hypothesis"))
    elapsed = time.perf_counter() - started
    return elapsed, {sid: [r.value for r in results]
                     for sid, results in answers.items()}, sids


def run_gateway(dataset, streams, analysts, *, mechanism, params, workers,
                max_coalesce=32, rng=17):
    """N analyst threads flooding a gateway concurrently."""
    service = PMWService(dataset, rng=rng)
    sids = open_sessions(service, mechanism, analysts, params)
    futures = {sid: [] for sid in sids}
    values = {}
    with service.gateway(workers=workers, max_queue_depth=512,
                         max_coalesce=max_coalesce) as gateway:
        started = time.perf_counter()

        def flood(sid, stream):
            futures[sid] = [gateway.submit_async(sid, query)
                            for query in stream]

        threads = [threading.Thread(target=flood, args=(sid, stream))
                   for sid, stream in zip(sids, streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for sid in sids:
            values[sid] = [future.result(timeout=600).value
                           for future in futures[sid]]
        elapsed = time.perf_counter() - started
        snapshot = gateway.metrics.snapshot()
    return elapsed, values, sids, snapshot


def compare_modes(dataset, streams_factory, analysts, *, mechanism, params,
                  workers, repeats=TIMING_REPEATS):
    """Best-of-N naive vs gateway on fresh streams, plus agreement."""
    naive_seconds = float("inf")
    for _ in range(repeats):
        elapsed, naive_values, naive_sids = run_naive(
            dataset, streams_factory(), analysts,
            mechanism=mechanism, params=params)
        naive_seconds = min(naive_seconds, elapsed)
    gateway_seconds = float("inf")
    for _ in range(repeats):
        elapsed, gateway_values, gateway_sids, snapshot = run_gateway(
            dataset, streams_factory(), analysts,
            mechanism=mechanism, params=params, workers=workers)
        gateway_seconds = min(gateway_seconds, elapsed)

    divergence = 0.0
    for sid_n, sid_g in zip(naive_sids, gateway_sids):
        for a, b in zip(naive_values[sid_n], gateway_values[sid_g]):
            divergence = max(divergence, float(np.max(np.abs(
                np.asarray(a) - np.asarray(b)))))
    return naive_seconds, gateway_seconds, divergence, snapshot


# -- sections -----------------------------------------------------------------


def sustained_load(sizes):
    """Section 1: coalescing gateway vs naive one-at-a-time dispatch."""
    dataset, params, streams_factory = convex_workload(sizes)
    total = sizes["analysts"] * sizes["queries_per_analyst"]
    naive_seconds, gateway_seconds, divergence, snapshot = compare_modes(
        dataset, streams_factory, sizes["analysts"],
        mechanism="pmw-convex", params=params, workers=sizes["workers"])
    return {
        "analysts": sizes["analysts"],
        "requests": total,
        "universe": sizes["universe_size"],
        "d": sizes["d"],
        "workers": sizes["workers"],
        "naive_seconds": naive_seconds,
        "gateway_seconds": gateway_seconds,
        "naive_rps": total / naive_seconds,
        "gateway_rps": total / gateway_seconds,
        "speedup": naive_seconds / gateway_seconds,
        "max_divergence": divergence,
        "coalesced_batches": snapshot["coalesced_batches"],
        "coalesced_requests": snapshot["coalesced_requests"],
        "coalesce_rate": snapshot["coalesce_rate"],
        "cache_hits": snapshot["sources"].get("cache", 0),
        "queue_wait_p99_ms": snapshot["queue_wait"]["p99_seconds"] * 1e3,
        "end_to_end_p99_ms": snapshot["end_to_end"]["p99_seconds"] * 1e3,
    }


def coalesce_only(sizes):
    """Section 2: one worker — the batching win without parallelism."""
    scaled = dict(sizes, analysts=max(8, sizes["analysts"] // 4))
    dataset, params, streams_factory = convex_workload(scaled)
    total = scaled["analysts"] * scaled["queries_per_analyst"]
    naive_seconds, gateway_seconds, divergence, snapshot = compare_modes(
        dataset, streams_factory, scaled["analysts"],
        mechanism="pmw-convex", params=params, workers=1)
    return {
        "analysts": scaled["analysts"],
        "requests": total,
        "universe": scaled["universe_size"],
        "naive_seconds": naive_seconds,
        "gateway_seconds": gateway_seconds,
        "speedup": naive_seconds / gateway_seconds,
        "max_divergence": divergence,
        "coalesced_batches": snapshot["coalesced_batches"],
        "coalesce_rate": snapshot["coalesce_rate"],
    }


def linear_sessions(sizes):
    """Section 3 (informational): hash-bound PMW-linear traffic."""
    scaled = dict(sizes, analysts=max(8, sizes["analysts"] // 4),
                  universe_size=2 * sizes["universe_size"])
    dataset, params, streams_factory = linear_workload(scaled)
    total = scaled["analysts"] * scaled["queries_per_analyst"]
    naive_seconds, gateway_seconds, divergence, snapshot = compare_modes(
        dataset, streams_factory, scaled["analysts"],
        mechanism="pmw-linear", params=params, workers=1)
    return {
        "analysts": scaled["analysts"],
        "requests": total,
        "universe": scaled["universe_size"],
        "naive_seconds": naive_seconds,
        "gateway_seconds": gateway_seconds,
        "speedup": naive_seconds / gateway_seconds,
        "max_divergence": divergence,
        "coalesce_rate": snapshot["coalesce_rate"],
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    load = sustained_load(sizes)
    solo = coalesce_only(sizes)
    linear = linear_sessions(sizes)
    return {
        "benchmark": "gateway",
        "mode": "smoke" if smoke else "full",
        "bar": SMOKE_BAR if smoke else FULL_BAR,
        "sustained_load": load,
        "coalesce_only": solo,
        "linear_sessions": linear,
        "speedups": {
            "sustained_load": load["speedup"],
            "coalesce_only": solo["speedup"],
            "linear_sessions": linear["speedup"],
        },
        # The subset the nightly regression gate diffs: only sections
        # with genuine headroom. linear_sessions hovers near 1.0x by
        # design (hash-bound, documented as informational) — gating it
        # at -20% would flake on scheduler noise alone.
        "gated_speedups": {
            "sustained_load": load["speedup"],
            "coalesce_only": solo["speedup"],
        },
    }


def build_report(results):
    report = ExperimentReport("E19 coalescing request gateway under load")
    load = results["sustained_load"]
    report.add_table(
        ["analysts", "requests", "|X|", "d", "workers", "naive s",
         "gateway s", "naive req/s", "gateway req/s", "speedup",
         "max |diff|"],
        [[load["analysts"], load["requests"], load["universe"], load["d"],
          load["workers"], load["naive_seconds"], load["gateway_seconds"],
          load["naive_rps"], load["gateway_rps"], load["speedup"],
          load["max_divergence"]]],
        title="sustained load, squared-GLM CM sessions: coalescing gateway "
              f"vs naive one-at-a-time dispatch (bar: >= {results['bar']}x)",
    )
    report.add_table(
        ["coalesced batches", "coalesced requests", "coalesce rate",
         "cache hits", "queue-wait p99 (ms)", "end-to-end p99 (ms)"],
        [[load["coalesced_batches"], load["coalesced_requests"],
          load["coalesce_rate"], load["cache_hits"],
          load["queue_wait_p99_ms"], load["end_to_end_p99_ms"]]],
        title="gateway pressure profile (metrics registry)",
    )
    solo = results["coalesce_only"]
    report.add_table(
        ["analysts", "requests", "|X|", "naive s", "gateway s", "speedup",
         "max |diff|"],
        [[solo["analysts"], solo["requests"], solo["universe"],
          solo["naive_seconds"], solo["gateway_seconds"], solo["speedup"],
          solo["max_divergence"]]],
        title="coalescing only (1 worker): both round sides batch through "
              "the shared-moment kernel — no parallelism involved",
    )
    linear = results["linear_sessions"]
    report.add_table(
        ["analysts", "requests", "|X|", "naive s", "gateway s", "speedup",
         "max |diff|"],
        [[linear["analysts"], linear["requests"], linear["universe"],
          linear["naive_seconds"], linear["gateway_seconds"],
          linear["speedup"], linear["max_divergence"]]],
        title="PMW-linear sessions (informational): request cost is "
              "dominated by per-request fingerprint hashing, so only the "
              "true-answer matvec batches",
    )
    return report


def write_json(results, json_dir=None):
    """Archive machine-readable results (perf trajectory across PRs).

    Full-mode results default into ``benchmarks/results/``; smoke runs
    default into a scratch directory so the casual CI/developer command
    (``--smoke`` with no ``--json-dir``) can never silently overwrite
    the committed nightly baseline. Re-baseline explicitly with
    ``--smoke --json-dir benchmarks/results``.
    """
    if json_dir is not None:
        directory = pathlib.Path(json_dir)
    elif results["mode"] == "full":
        directory = RESULTS_DIR
    else:
        directory = pathlib.Path(tempfile.gettempdir()) / "repro-bench-smoke"
    directory.mkdir(parents=True, exist_ok=True)
    name = JSON_NAME if results["mode"] == "full" \
        else JSON_NAME.replace(".json", ".smoke.json")
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    load = results["sustained_load"]
    bar = results["bar"]
    assert load["speedup"] >= bar, (
        f"sustained-load speedup {load['speedup']:.2f}x is below the "
        f"{bar}x bar at {load['analysts']} analysts"
    )
    assert load["max_divergence"] < 1e-8, (
        f"gateway answers diverged from the serial twin by "
        f"{load['max_divergence']:.2e}"
    )
    assert load["coalesced_batches"] > 0, (
        "queue pressure never converted into a coalesced batch"
    )
    assert results["linear_sessions"]["max_divergence"] < 1e-8


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e19_report(results, save_report):
    text = save_report(build_report(results))
    assert "coalescing request gateway" in text


def test_e19_sustained_load_at_least_2x(results):
    check_bars(results)


def test_e19_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["speedups"]["sustained_load"] >= FULL_BAR
    assert payload["mode"] == "full"


# -- standalone / CI ----------------------------------------------------------


def main(argv):
    smoke = "--smoke" in argv
    json_dir = None
    if "--json-dir" in argv:
        position = argv.index("--json-dir") + 1
        if position >= len(argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke and json_dir is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e19.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    speedup = outcome["sustained_load"]["speedup"]
    print(f"OK: sustained-load gateway speedup {speedup:.2f}x >= "
          f"{outcome['bar']}x ({outcome['mode']} mode)")


if __name__ == "__main__":
    main(sys.argv[1:])
