"""E10 — adaptive generalization (Section 1.3 / [BSSU15]).

Regenerates the population-vs-sample contrast under adaptive questioning
and times the accuracy-game round.
"""

import pytest

from repro.adaptive.analysts import CyclingAnalyst
from repro.adaptive.game import play_accuracy_game
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.synthetic import make_classification_dataset
from repro.erm.oracle import NonPrivateOracle
from repro.experiments.generalization import run_generalization
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_generalization(trials=3, rng=0)


def test_e10_report(report, save_report):
    text = save_report(report)
    assert "generalization gap" in text


def test_e10_dp_population_error_bounded(report):
    """The DP mechanism's population error must stay near its sample error
    (the transfer theorem), not blow up."""
    table = report.sections[0]
    pmw_row = next(l for l in table.splitlines() if l.startswith("PMW"))
    cells = [c.strip() for c in pmw_row.split("|")]
    sample_err, population_err = float(cells[1]), float(cells[2])
    assert population_err <= sample_err + 0.1


def test_bench_accuracy_game_round(benchmark, report, save_report):
    save_report(report)
    task = make_classification_dataset(n=10_000, d=3, universe_size=100,
                                       rng=0)
    pool = random_logistic_family(task.universe, 5, rng=1)
    mechanism = PrivateMWConvex(
        task.dataset, NonPrivateOracle(150), scale=2.0, alpha=0.3,
        epsilon=2.0, delta=1e-6, schedule="calibrated", max_updates=500,
        solver_steps=150, rng=2,
    )
    analyst = CyclingAnalyst(pool)

    benchmark(lambda: play_accuracy_game(mechanism, analyst, k=1,
                                         solver_steps=150))
