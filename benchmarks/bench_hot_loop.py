"""E18 — the versioned log-domain hypothesis core in the PMW hot loop.

PR 2's engine made *query evaluation* batched; the remaining per-round
cost was the update/answer loop itself: a fresh log/exp/normalize
histogram per MW update, a cold 400-step hypothesis solve per round, and
wholesale cache invalidation. This benchmark measures the versioned-core
claims the PR is gated on:

1. **end-to-end update-heavy PMW-CM** (the ≥3x bar, |X| = 10^5) — a
   cycling query stream against a concentrated dataset that forces the
   full MW update budget (``noise_multiplier=0`` makes the update
   pattern deterministic), run with ``versioned_core=True`` vs the
   legacy immutable path. The versioned run replays repeated
   ``(fingerprint, version)`` rounds from cache and accumulates updates
   in place; answers agree to float reassociation;
2. **log-domain core micro** — in-place ``log w += eta·u`` with lazy
   normalization vs one immutable ``multiplicative_update`` per round,
   with a ``dot`` read per round forcing materialization;
3. **update-heavy PMW-linear stream** — in-place core + version-stamped
   batch evaluator vs the legacy immutable hypothesis, both through
   ``answer_all``;
4. **warm-started hypothesis solve** — a post-update logistic solve
   seeded from the previous round's minimizer at a quarter of the step
   budget vs a cold solve.

Results are archived as text (``benchmarks/results/e18.txt``) and as
machine-readable JSON (``benchmarks/results/BENCH_hot_loop.json``) so the
perf trajectory is trackable across PRs.

Run standalone (``python benchmarks/bench_hot_loop.py``), in CI smoke
mode (``python benchmarks/bench_hot_loop.py --smoke`` — small sizes,
asserts the end-to-end speedup ≥ 1.5x), or via pytest
(``pytest benchmarks/bench_hot_loop.py -s``).
"""

import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.data.builders import interval_grid, random_ball_net
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram
from repro.erm.oracle import NonPrivateOracle
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_logistic_family, \
    random_quadratic_family
from repro.losses.linear import LinearQuery
from repro.optimize.minimize import minimize_loss

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_hot_loop.json"

#: The regression bars: full mode runs at |X| >= 1e5 and must clear 3x;
#: smoke mode (CI) runs small and must clear 1.5x.
FULL_BAR = 3.0
SMOKE_BAR = 1.5

FULL_SIZES = dict(universe_size=100_000, solver_steps=100, repeats=24)
SMOKE_SIZES = dict(universe_size=20_000, solver_steps=60, repeats=24)


def _best_of(repeats, fn):
    """Best-of-N wall time (and the last return value, for checks)."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def concentrated_task(universe_size, *, d=8, n=20_000, rng=1):
    """A ball-net universe with 85% of the data mass on its farthest
    point: the uniform starting hypothesis errs badly, so the stream
    deterministically burns the whole MW update budget."""
    universe = random_ball_net(d, universe_size, rng=0)
    generator = np.random.default_rng(rng)
    anchor = int(np.argmax(np.linalg.norm(universe.points, axis=1)))
    n_anchor = int(0.85 * n)
    indices = np.concatenate([
        np.full(n_anchor, anchor),
        generator.choice(universe_size, size=n - n_anchor),
    ])
    return Dataset(universe, indices)


def cm_hot_loop(universe_size, *, distinct=8, repeats=24, solver_steps=100,
                max_updates=12, alpha=0.15, timing_repeats=3):
    """Section 1: the end-to-end update-heavy PMW-CM answer loop."""
    dataset = concentrated_task(universe_size)
    losses = random_quadratic_family(dataset.universe, distinct, rng=2)
    stream = losses * repeats
    scale = max(loss.scale_bound() for loss in losses)
    params = dict(scale=scale, alpha=alpha, epsilon=2.0, delta=1e-6,
                  max_updates=max_updates, solver_steps=solver_steps,
                  noise_multiplier=0.0)

    def run(versioned):
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(solver_steps=solver_steps), rng=3,
            versioned_core=versioned, **params)
        answers = mechanism.answer_all(stream, on_halt="hypothesis",
                                       prewarm=True)
        return answers, mechanism.updates_performed

    versioned_seconds, (versioned_answers, versioned_updates) = _best_of(
        timing_repeats, lambda: run(True))
    legacy_seconds, (legacy_answers, legacy_updates) = _best_of(
        timing_repeats, lambda: run(False))
    return {
        "universe": universe_size, "queries": len(stream),
        "distinct": distinct, "updates": versioned_updates,
        "legacy_updates": legacy_updates,
        "versioned_seconds": versioned_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / versioned_seconds,
        "max_divergence": max(
            float(np.max(np.abs(a.theta - b.theta)))
            for a, b in zip(versioned_answers, legacy_answers)),
    }


def core_update_micro(universe_size, *, rounds=50, timing_repeats=3):
    """Section 2: the raw MW accumulation, one dot read per round."""
    rng = np.random.default_rng(4)
    universe = interval_grid(universe_size)
    directions = [rng.uniform(-1.0, 1.0, universe_size)
                  for _ in range(rounds)]
    probe = rng.random(universe_size)

    def immutable_chain():
        hist = Histogram.uniform(universe)
        total = 0.0
        for direction in directions:
            hist = hist.multiplicative_update(direction, 0.05)
            total += hist.dot(probe)
        return hist, total

    def log_domain_chain():
        core = LogHistogram.uniform(universe)
        total = 0.0
        for direction in directions:
            core.apply_update(direction, 0.05)
            total += core.dot(probe)
        return core, total

    immutable_seconds, (immutable, _) = _best_of(timing_repeats,
                                                 immutable_chain)
    core_seconds, (core, _) = _best_of(timing_repeats, log_domain_chain)
    return {
        "universe": universe_size, "rounds": rounds,
        "immutable_seconds": immutable_seconds,
        "core_seconds": core_seconds,
        "speedup": immutable_seconds / core_seconds,
        "max_divergence": float(np.max(np.abs(
            core.weights - immutable.weights))),
    }


def linear_hot_loop(universe_size, *, k=64, timing_repeats=3):
    """Section 3: an update-heavy PMW-linear stream through answer_all."""
    universe = interval_grid(universe_size)
    rng = np.random.default_rng(5)
    n = 20_000
    anchored = int(0.8 * n)
    indices = np.concatenate([
        np.zeros(anchored, dtype=int),
        rng.choice(universe_size, size=n - anchored),
    ])
    dataset = Dataset(universe, indices)
    # Interval queries over a concentrated dataset: the uniform
    # hypothesis over/under-counts nearly all of them, forcing updates.
    queries = []
    for index in range(k):
        table = np.zeros(universe_size)
        start = (index * universe_size // k)
        table[start:start + universe_size // 4] = 1.0
        queries.append(LinearQuery(table, name=f"interval-{index}"))

    def run(versioned):
        mechanism = PrivateMWLinear(
            dataset, alpha=0.1, epsilon=2.0, delta=1e-6, max_updates=24,
            noise_multiplier=0.0, versioned_core=versioned, rng=6)
        answers = mechanism.answer_all(queries * 3, on_halt="hypothesis")
        return answers, mechanism.updates_performed

    versioned_seconds, (versioned_answers, updates) = _best_of(
        timing_repeats, lambda: run(True))
    legacy_seconds, (legacy_answers, _) = _best_of(
        timing_repeats, lambda: run(False))
    return {
        "universe": universe_size, "queries": 3 * k, "updates": updates,
        "versioned_seconds": versioned_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / versioned_seconds,
        "max_divergence": max(
            abs(a.value - b.value)
            for a, b in zip(versioned_answers, legacy_answers)),
    }


def warm_start_solve(universe_size, *, solver_steps=200, timing_repeats=3):
    """Section 4: warm-started post-update hypothesis solve (logistic)."""
    from repro.data.synthetic import make_classification_dataset

    task = make_classification_dataset(n=4_000, d=8,
                                       universe_size=universe_size, rng=7)
    loss = random_logistic_family(task.universe, 1, rng=8)[0]
    core = LogHistogram.uniform(task.universe)
    previous = minimize_loss(loss, core.freeze(), steps=solver_steps)
    rng = np.random.default_rng(9)
    core.apply_update(rng.uniform(-1.0, 1.0, task.universe.size), 0.1)
    moved = core.freeze()

    cold_seconds, cold = _best_of(
        timing_repeats, lambda: minimize_loss(loss, moved,
                                              steps=solver_steps))
    warm_steps = max(25, solver_steps // 4)
    warm_seconds, warm = _best_of(
        timing_repeats, lambda: minimize_loss(loss, moved, steps=warm_steps,
                                              start=previous.theta))
    return {
        "universe": task.universe.size, "cold_steps": solver_steps,
        "warm_steps": warm_steps,
        "cold_seconds": cold_seconds, "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "objective_gap": float(warm.value - cold.value),
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cm = cm_hot_loop(sizes["universe_size"], repeats=sizes["repeats"],
                     solver_steps=sizes["solver_steps"])
    micro = core_update_micro(2 * sizes["universe_size"])
    linear = linear_hot_loop(2 * sizes["universe_size"])
    warm = warm_start_solve(max(10_000, sizes["universe_size"] // 4),
                            solver_steps=2 * sizes["solver_steps"])
    return {
        "benchmark": "hot_loop",
        "mode": "smoke" if smoke else "full",
        "bar": SMOKE_BAR if smoke else FULL_BAR,
        "cm_hot_loop": cm,
        "core_update_micro": micro,
        "linear_hot_loop": linear,
        "warm_start_solve": warm,
    }


def build_report(results):
    report = ExperimentReport("E18 versioned log-domain hypothesis core")
    cm = results["cm_hot_loop"]
    report.add_table(
        ["|X|", "queries", "distinct", "updates", "legacy s",
         "versioned s", "speedup", "max |diff|"],
        [[cm["universe"], cm["queries"], cm["distinct"], cm["updates"],
          cm["legacy_seconds"], cm["versioned_seconds"], cm["speedup"],
          cm["max_divergence"]]],
        title="end-to-end update-heavy PMW-CM: versioned core + round "
              "cache + warm starts vs immutable path "
              f"(bar: >= {results['bar']}x)",
    )
    micro = results["core_update_micro"]
    report.add_table(
        ["|X|", "rounds", "immutable s", "log-domain s", "speedup",
         "max |diff|"],
        [[micro["universe"], micro["rounds"], micro["immutable_seconds"],
          micro["core_seconds"], micro["speedup"],
          micro["max_divergence"]]],
        title="MW accumulation micro: in-place log-domain update + lazy "
              "normalize vs immutable update (one dot read per round)",
    )
    linear = results["linear_hot_loop"]
    report.add_table(
        ["|X|", "queries", "updates", "legacy s", "versioned s", "speedup",
         "max |diff|"],
        [[linear["universe"], linear["queries"], linear["updates"],
          linear["legacy_seconds"], linear["versioned_seconds"],
          linear["speedup"], linear["max_divergence"]]],
        title="update-heavy PMW-linear stream: in-place core + versioned "
              "batch evaluator vs immutable hypothesis",
    )
    warm = results["warm_start_solve"]
    report.add_table(
        ["|X|", "cold steps", "warm steps", "cold s", "warm s", "speedup",
         "objective gap"],
        [[warm["universe"], warm["cold_steps"], warm["warm_steps"],
          warm["cold_seconds"], warm["warm_seconds"], warm["speedup"],
          warm["objective_gap"]]],
        title="post-update hypothesis solve: warm-started quarter-budget "
              "vs cold full-budget (logistic)",
    )
    return report


def write_json(results, path=None, json_dir=None):
    """Archive machine-readable results (perf trajectory across PRs).

    ``json_dir`` redirects the artifact (the nightly regression workflow
    writes candidates to a scratch directory and diffs them against the
    committed baselines here). Smoke runs without an explicit directory
    land in a scratch location, never on top of the committed baseline;
    re-baseline with ``--smoke --json-dir benchmarks/results``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if path is None:
        name = JSON_NAME if results["mode"] == "full" \
            else JSON_NAME.replace(".json", ".smoke.json")
        if json_dir is not None:
            directory = pathlib.Path(json_dir)
        elif results["mode"] == "full":
            directory = RESULTS_DIR
        else:
            directory = pathlib.Path(tempfile.gettempdir()) \
                / "repro-bench-smoke"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
    payload = dict(results)
    payload["speedups"] = {
        section: results[section]["speedup"]
        for section in ("cm_hot_loop", "core_update_micro",
                        "linear_hot_loop", "warm_start_solve")
    }
    # Only sections with genuine headroom feed the nightly regression
    # gate; linear_hot_loop sits near 1.0x (bandwidth-bound parity) and
    # would flake a -20% floor on scheduler noise alone.
    payload["gated_speedups"] = {
        section: results[section]["speedup"]
        for section in ("cm_hot_loop", "core_update_micro",
                        "warm_start_solve")
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    cm = results["cm_hot_loop"]
    bar = results["bar"]
    assert cm["updates"] >= 8, (
        f"the stream must be update-heavy; only {cm['updates']} updates ran"
    )
    assert cm["updates"] == cm["legacy_updates"], (
        "versioned and legacy paths took different update patterns"
    )
    assert cm["speedup"] >= bar, (
        f"end-to-end hot loop speedup {cm['speedup']:.2f}x is below the "
        f"{bar}x bar at |X|={cm['universe']}"
    )
    assert cm["max_divergence"] < 1e-9
    assert results["core_update_micro"]["max_divergence"] < 1e-10
    assert results["linear_hot_loop"]["max_divergence"] < 1e-10


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e18_report(results, save_report):
    text = save_report(build_report(results))
    assert "versioned log-domain" in text


def test_e18_cm_hot_loop_at_least_3x(results):
    check_bars(results)


def test_e18_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["speedups"]["cm_hot_loop"] >= FULL_BAR
    assert payload["mode"] == "full"


# -- standalone / CI ----------------------------------------------------------


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    json_dir = None
    if "--json-dir" in sys.argv:
        position = sys.argv.index("--json-dir") + 1
        if position >= len(sys.argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = sys.argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e18.txt").write_text(
            build_report(outcome).render())
    check_bars(outcome)
    cm_speedup = outcome["cm_hot_loop"]["speedup"]
    print(f"OK: hot-loop speedup {cm_speedup:.2f}x >= {outcome['bar']}x "
          f"({outcome['mode']} mode)")
