"""E21 — observability fidelity and overhead of the repro.obs stack.

PR 6's tentpole claims, measured under E19-style sustained gateway load
(concurrent analysts flooding squared-GLM CM sessions through the
coalescing `ServiceGateway`):

1. **tail fidelity** (gated) — with the `GatewayMetrics` facade on a
   shared `MetricsRegistry`, the end-to-end latency histogram's p99 is
   finite and *strictly below the top bucket edge* with **zero
   overflow**: the log-scale buckets (100 ns – 10 000 s) cover the whole
   observed tail, the saturation the old fixed-table histogram hit at
   3 276.8 ms is gone, and the interpolated quantile carries the
   documented <= 12.2 % relative-error bound.
2. **instrumentation overhead** (gated) — the *fully instrumented*
   configuration (shared registry + process tracer, every span site
   live through planner, session, mechanism rounds, and engine) costs
   at most **5 %** throughput against the identical workload with
   tracing off (span sites reduced to one module-global read). Measured
   on the serial ``service.submit`` path: the same instrumented round
   runs, but single-threaded, so the comparison isolates span cost from
   the gateway's thread-scheduling variance (which dwarfs 5 % at smoke
   sizes). The ratio off/on is the gated number (~1.0).
3. **budget exactness** (asserted) — after the load, every session's
   ``budget.epsilon_spent`` gauge (pull-published from the live
   accountants) equals the sum replayed from the budget ledger
   **bitwise** — telemetry an auditor can diff against the journal with
   ``==``, not ``approx``.

Results are archived as text (``benchmarks/results/e21.txt``) and JSON
(``benchmarks/results/BENCH_observability.json``); smoke runs write
``BENCH_observability.smoke.json`` — the nightly regression workflow
diffs fresh smoke numbers against the committed baseline.

Run standalone (``python benchmarks/bench_observability.py``), in CI
smoke mode (``--smoke``), or via pytest
(``pytest benchmarks/bench_observability.py -s``). ``--json-dir DIR``
redirects the JSON artifact.
"""

import gc
import json
import os
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_squared_family
from repro.obs import MetricsRegistry, publish_service, trace
from repro.serve.ledger import replay_ledger
from repro.serve.metrics import GatewayMetrics
from repro.serve.service import PMWService

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_observability.json"

#: Maximum tolerated slowdown from full instrumentation (tracer +
#: registry + domain gauges all live), as a fraction of the tracing-off
#: throughput. Mirrors the CI perf-smoke guard.
OVERHEAD_BUDGET = 0.05

FULL_SIZES = dict(analysts=32, queries_per_analyst=10,
                  universe_size=20_000, d=8, workers=2)
SMOKE_SIZES = dict(analysts=16, queries_per_analyst=10,
                   universe_size=12_000, d=5, workers=2)

#: Both configurations are timed best-of-N over fresh services AND
#: fresh query objects (fingerprints are memoized per object), same
#: noise control as the other serving benchmarks. Smoke sizes run in
#: fractions of a second, so the 5% overhead assertion needs more
#: repeats there for the minima to shed scheduler jitter.
TIMING_REPEATS = 3
SMOKE_TIMING_REPEATS = 7

CONVEX_PARAMS = dict(oracle="non-private", alpha=0.25, beta=0.1,
                     epsilon=2.0, delta=1e-6, schedule="calibrated",
                     max_updates=6, solver_steps=30, noise_multiplier=0.0)


# -- workload -----------------------------------------------------------------


def convex_workload(sizes):
    """(dataset, params, streams_factory) for squared-GLM CM traffic."""
    task = make_classification_dataset(n=15_000, d=sizes["d"],
                                       universe_size=sizes["universe_size"],
                                       rng=1)

    def build_streams():
        streams, scale = [], 0.0
        for index in range(sizes["analysts"]):
            family = random_squared_family(
                task.universe, sizes["queries_per_analyst"] - 1,
                rng=5000 + index)
            scale = max(scale, max(loss.scale_bound() for loss in family))
            # One tail repeat per analyst: the repeat rides the
            # zero-cost cache lane and exercises cache counters.
            streams.append(list(family) + [family[0]])
        return streams, scale

    _, scale = build_streams()
    params = dict(CONVEX_PARAMS, scale=2.0 * scale)
    return task.dataset, params, lambda: build_streams()[0]


def run_load(dataset, streams, sizes, params, *, instrument,
             ledger_path=None, rng=17):
    """One sustained-load pass; ``instrument`` flips the whole obs stack.

    Returns ``(elapsed_seconds, registry, exactness_rows)`` —
    ``registry`` and the budget-exactness comparison are ``None`` for
    uninstrumented passes.
    """
    registry = None
    metrics = None
    if instrument:
        registry = MetricsRegistry()
        trace.install(registry=registry)
        metrics = GatewayMetrics(registry=registry)
    try:
        service = PMWService(dataset, ledger_path=ledger_path, rng=rng)
        sids = [service.open_session("pmw-convex",
                                     analyst=f"analyst-{index}", **params)
                for index in range(sizes["analysts"])]
        futures = {sid: [] for sid in sids}
        with service.gateway(workers=sizes["workers"], max_queue_depth=512,
                             max_coalesce=32, metrics=metrics) as gateway:
            started = time.perf_counter()

            def flood(sid, stream):
                futures[sid] = [gateway.submit_async(sid, query)
                                for query in stream]

            threads = [threading.Thread(target=flood, args=(sid, stream))
                       for sid, stream in zip(sids, streams)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for sid in sids:
                for future in futures[sid]:
                    future.result(timeout=600)
            elapsed = time.perf_counter() - started

        exactness = None
        if instrument:
            publish_service(registry, service)
            if ledger_path is not None:
                replayed = replay_ledger(ledger_path)
                exactness = []
                for sid in sids:
                    gauge = registry.get("budget.epsilon_spent",
                                         {"session": sid}).value
                    ledger_sum = sum(record["epsilon"] for record
                                     in replayed.spends.get(sid, []))
                    exactness.append({
                        "session": sid,
                        "gauge": gauge,
                        "replay": ledger_sum,
                        "bitwise_equal": gauge == ledger_sum,
                    })
        service.close()
        return elapsed, registry, exactness
    finally:
        if instrument:
            trace.uninstall()


# -- sections -----------------------------------------------------------------


def tail_and_exactness(sizes, streams_factory, dataset, params):
    """Sections 1 + 3: one instrumented run under a live ledger."""
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "budget.jsonl")
        elapsed, registry, exactness = run_load(
            dataset, streams_factory(), sizes, params,
            instrument=True, ledger_path=ledger_path)
    end_to_end = registry.get("gateway.end_to_end")
    total = sizes["analysts"] * sizes["queries_per_analyst"]
    span_histograms = sum(
        1 for (name, _labels) in registry.collect("histogram")
        if name.startswith("span."))
    return {
        "requests": total,
        "seconds": elapsed,
        "rps": total / elapsed,
        "count": end_to_end.count,
        "p50_ms": end_to_end.quantile(0.5) * 1e3,
        "p99_ms": end_to_end.quantile(0.99) * 1e3,
        "max_ms": end_to_end.max * 1e3,
        "top_edge_seconds": end_to_end.top_edge,
        "overflow": end_to_end.overflow,
        "span_histograms": span_histograms,
        "budget_sessions": len(exactness),
        "budget_bitwise_equal": all(row["bitwise_equal"]
                                    for row in exactness),
        "budget_rows": exactness,
    }


def run_serial(dataset, streams, sizes, params, *, instrument, rng=17):
    """One single-dispatcher pass over the round-robin arrival order.

    The timed section runs with the cyclic GC off (collected right
    before): collector pauses land on whichever pass happens to cross
    an allocation threshold, which at smoke sizes is bigger than the
    5% signal this section gates.
    """
    if instrument:
        trace.install(registry=MetricsRegistry())
    try:
        service = PMWService(dataset, rng=rng)
        sids = [service.open_session("pmw-convex",
                                     analyst=f"analyst-{index}", **params)
                for index in range(sizes["analysts"])]
        requests = [(sid, stream[position])
                    for position in range(len(streams[0]))
                    for sid, stream in zip(sids, streams)]
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            for sid, query in requests:
                service.submit(sid, query, on_halt="hypothesis")
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        service.close()
        return elapsed
    finally:
        if instrument:
            trace.uninstall()


def instrumentation_overhead(sizes, streams_factory, dataset, params, *,
                             repeats=TIMING_REPEATS):
    """Section 2: identical serial load, tracing off vs on, paired.

    Passes alternate (off, on, off, on, ...) and the gated overhead is
    the **minimum of the paired on/off ratios** after one untimed
    warmup pass per mode. Pairing cancels slow machine-load drift;
    taking the best pair discards passes a noisy-neighbour scheduler
    disturbed. The estimator is deliberately optimistic-biased — a
    shared CI runner's jitter (±10% on sub-second passes) must not trip
    a 5% gate — but a *genuine* per-span regression shifts every pair,
    so a real blow-up still fails.
    """
    run_serial(dataset, streams_factory(), sizes, params,
               instrument=False)  # warmup: first passes run slow
    run_serial(dataset, streams_factory(), sizes, params, instrument=True)
    offs, ons = [], []
    for _ in range(repeats):
        offs.append(run_serial(dataset, streams_factory(), sizes, params,
                               instrument=False))
        ons.append(run_serial(dataset, streams_factory(), sizes, params,
                              instrument=True))
    best_pair = min(on / off for on, off in zip(ons, offs))
    off_seconds = min(offs)
    on_seconds = min(ons)
    total = sizes["analysts"] * sizes["queries_per_analyst"]
    return {
        "requests": total,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "off_rps": total / off_seconds,
        "on_rps": total / on_seconds,
        "overhead_fraction": best_pair - 1.0,
        "ratio": 1.0 / best_pair,
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    dataset, params, streams_factory = convex_workload(sizes)
    tail = tail_and_exactness(sizes, streams_factory, dataset, params)
    overhead = instrumentation_overhead(
        sizes, streams_factory, dataset, params,
        repeats=SMOKE_TIMING_REPEATS if smoke else TIMING_REPEATS)
    return {
        "benchmark": "observability",
        "mode": "smoke" if smoke else "full",
        "overhead_budget": OVERHEAD_BUDGET,
        "sizes": sizes,
        "tail_fidelity": tail,
        "instrumentation_overhead": overhead,
        # The nightly regression gate diffs these at -20% tolerance.
        # The off/on throughput ratio is clamped to 1.0: scheduler
        # jitter can make the instrumented run *faster* on small smoke
        # sizes, and an inflated baseline would turn that noise into a
        # future false alarm. With the clamp, a gate breach means
        # instrumentation got >20% slower than uninstrumented serving.
        "gated_speedups": {
            "instrumentation_ratio": min(overhead["ratio"], 1.0),
        },
    }


def build_report(results):
    report = ExperimentReport(
        "E21 observability: tail fidelity, overhead, budget exactness")
    tail = results["tail_fidelity"]
    report.add_table(
        ["requests", "req/s", "p50 (ms)", "p99 (ms)", "max (ms)",
         "top edge (s)", "overflow"],
        [[tail["requests"], tail["rps"], tail["p50_ms"], tail["p99_ms"],
          tail["max_ms"], tail["top_edge_seconds"], tail["overflow"]]],
        title="tail fidelity under sustained load: end-to-end latency "
              "histogram (log-scale buckets, interpolated quantiles; "
              "gate: p99 < top edge, overflow == 0)",
    )
    overhead = results["instrumentation_overhead"]
    report.add_table(
        ["requests", "tracing-off s", "tracing-on s", "off req/s",
         "on req/s", "overhead"],
        [[overhead["requests"], overhead["off_seconds"],
          overhead["on_seconds"], overhead["off_rps"], overhead["on_rps"],
          f"{overhead['overhead_fraction'] * 100:.2f}%"]],
        title="full-instrumentation overhead (registry + tracer + domain "
              f"gauges; budget: <= {results['overhead_budget'] * 100:.0f}%)",
    )
    report.add_table(
        ["session", "epsilon_spent gauge", "ledger replay sum", "bitwise"],
        [[row["session"], row["gauge"], row["replay"],
          "equal" if row["bitwise_equal"] else "MISMATCH"]
         for row in tail["budget_rows"][:8]],
        title=f"budget exactness ({tail['budget_sessions']} sessions; "
              f"first 8 shown): gauge == journal-ordered ledger replay",
    )
    report.add(
        f"{tail['span_histograms']} span histograms populated by the "
        f"tracer during the instrumented run."
    )
    return report


def write_json(results, json_dir=None):
    """Archive machine-readable results (perf trajectory across PRs).

    Full-mode results default into ``benchmarks/results/``; smoke runs
    default into a scratch directory so the casual CI/developer command
    (``--smoke`` with no ``--json-dir``) can never silently overwrite
    the committed nightly baseline. Re-baseline explicitly with
    ``--smoke --json-dir benchmarks/results``.
    """
    results = {key: value for key, value in results.items()}
    results["tail_fidelity"] = {
        key: value for key, value in results["tail_fidelity"].items()
        if key != "budget_rows"
    }
    if json_dir is not None:
        directory = pathlib.Path(json_dir)
    elif results["mode"] == "full":
        directory = RESULTS_DIR
    else:
        directory = pathlib.Path(tempfile.gettempdir()) / "repro-bench-smoke"
    directory.mkdir(parents=True, exist_ok=True)
    name = JSON_NAME if results["mode"] == "full" \
        else JSON_NAME.replace(".json", ".smoke.json")
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    tail = results["tail_fidelity"]
    assert tail["count"] == tail["requests"], (
        f"histogram counted {tail['count']} of {tail['requests']} requests"
    )
    assert tail["overflow"] == 0, (
        f"{tail['overflow']} samples overflowed the latency histogram — "
        f"the log-scale range no longer covers the observed tail"
    )
    assert tail["p99_ms"] / 1e3 < tail["top_edge_seconds"], (
        f"p99 {tail['p99_ms']:.1f} ms reached the top bucket edge "
        f"({tail['top_edge_seconds']:.1f} s) — tail saturated"
    )
    assert tail["budget_bitwise_equal"], (
        "at least one session's epsilon_spent gauge diverged from its "
        "ledger replay sum"
    )
    overhead = results["instrumentation_overhead"]
    budget = results["overhead_budget"]
    assert overhead["overhead_fraction"] <= budget, (
        f"full instrumentation costs "
        f"{overhead['overhead_fraction'] * 100:.2f}% throughput — over "
        f"the {budget * 100:.0f}% budget"
    )


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e21_report(results, save_report):
    text = save_report(build_report(results))
    assert "observability" in text


def test_e21_bars(results):
    check_bars(results)


def test_e21_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["gated_speedups"]["instrumentation_ratio"] > 0
    assert payload["mode"] == "full"


# -- standalone / CI ----------------------------------------------------------


def main(argv):
    smoke = "--smoke" in argv
    json_dir = None
    if "--json-dir" in argv:
        position = argv.index("--json-dir") + 1
        if position >= len(argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke and json_dir is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e21.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    overhead = outcome["instrumentation_overhead"]["overhead_fraction"]
    print(f"OK: overflow 0, p99 finite, budget gauges bitwise-exact, "
          f"instrumentation overhead {overhead * 100:.2f}% <= "
          f"{outcome['overhead_budget'] * 100:.0f}% "
          f"({outcome['mode']} mode)")


if __name__ == "__main__":
    main(sys.argv[1:])
