"""E13 — offline vs online PMW-CM (Section 1.2's offline variant).

Compares the exponential-mechanism-selection offline variant with the
sparse-vector online mechanism on the same workload and budget, and times
one offline round (score-all + select + solve + update).
"""

import pytest

from repro.core.offline import OfflineMWConvex
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.offline_online import run_offline_online
from repro.experiments.workloads import classification_workload
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_offline_online(trials=2, rng=0)


def test_e13_report(report, save_report):
    text = save_report(report)
    assert "offline" in text


def test_e13_both_variants_accurate(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        error = float(line.split("|")[1].split("±")[0])
        assert error <= 0.35, line


def test_bench_offline_round(benchmark, report, save_report):
    save_report(report)
    workload = classification_workload(
        n=30_000, d=4, k=20, family_builder=random_logistic_family,
        universe_size=150, rng=0,
    )
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)

    def one_offline_round():
        mechanism = OfflineMWConvex(
            workload.dataset, workload.losses, oracle,
            scale=workload.scale, rounds=1, epsilon=1.0, delta=1e-6,
            solver_steps=150, rng=1,
        )
        return mechanism.run()

    benchmark(one_offline_round)
