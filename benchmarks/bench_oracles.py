"""E9 — single-query oracle guarantees (Theorems 4.1, 4.3, 4.5).

Regenerates the excess-risk-vs-n sweep for every DP-ERM oracle and times
the noisy-GD workhorse.
"""

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.oracles import run_oracle_sweep
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_oracle_sweep(trials=3, rng=0)


def test_e9_report(report, save_report):
    text = save_report(report)
    assert "noisy-GD" in text


def test_e9_all_oracles_improve_with_n(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        cells = [c.strip() for c in line.split("|")]
        first, last = float(cells[1]), float(cells[-2])
        assert last <= first * 1.5, f"{cells[0]} did not improve with n"


def test_e9_gradient_oracles_decay_fast(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        cells = [c.strip() for c in line.split("|")]
        slope = float(cells[-1])
        if "noisy-GD" in cells[0] or "output-pert" in cells[0]:
            assert slope < -0.6, f"{cells[0]} slope {slope} too shallow"


def test_bench_noisy_gd_call(benchmark, report, save_report):
    save_report(report)
    task = make_classification_dataset(n=20_000, d=4, universe_size=150,
                                       rng=0)
    loss = random_logistic_family(task.universe, 1, rng=1)[0]
    oracle = NoisyGradientDescentOracle(epsilon=0.3, delta=1e-6, steps=40)

    benchmark(lambda: oracle.answer(loss, task.dataset, rng=2))
