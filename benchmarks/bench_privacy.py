"""E8 — privacy diagnostics (Theorem 3.9 and the sensitivity lemma).

Empirically verifies the Section 3.4.2 sensitivity bound ``3S/n`` over
adjacent dataset pairs, checks the mechanism's privacy accountant against
its declared budget, and times the error-query evaluation (the quantity
fed to sparse vector each round).
"""

import pytest

from repro.core.accuracy import database_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.synthetic import make_classification_dataset
from repro.data.histogram import Histogram
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.diagnostics import run_sensitivity_check
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_sensitivity_check(pairs=100, rng=0)


def test_e8_report(report, save_report):
    text = save_report(report)
    assert "3S/n" in text


def test_e8_no_sensitivity_violations(report):
    table = report.sections[0]
    violations_line = next(l for l in table.splitlines()
                           if l.startswith("violations"))
    assert int(violations_line.split("|")[1]) == 0


def test_e8_mechanism_accounting_matches_declaration():
    """Run a real stream and check the accountant against Theorem 3.9."""
    task = make_classification_dataset(n=20_000, d=3, universe_size=100,
                                       rng=0)
    losses = random_logistic_family(task.universe, 10, rng=1)
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=20)
    mechanism = PrivateMWConvex(
        task.dataset, oracle, scale=2.0, alpha=0.2, epsilon=1.0, delta=1e-6,
        schedule="calibrated", max_updates=10, solver_steps=150, rng=2,
    )
    mechanism.answer_all(losses, on_halt="hypothesis")
    guarantee = mechanism.privacy_guarantee()
    # Theorem 3.9 with the known second-order slack of Theorem 3.10.
    assert guarantee.epsilon <= 1.0 * 1.05
    assert guarantee.delta <= 1e-6 * 1.001
    # The oracle was called exactly once per update, at (eps0, delta0).
    oracle_spends = [s for s in mechanism.accountant.spends
                     if s.label.startswith("oracle")]
    assert len(oracle_spends) == mechanism.updates_performed


def test_bench_error_query(benchmark, report, save_report):
    save_report(report)
    task = make_classification_dataset(n=20_000, d=3, universe_size=150,
                                       rng=0)
    loss = random_logistic_family(task.universe, 1, rng=1)[0]
    data = task.dataset.histogram()
    hypothesis = Histogram.uniform(task.universe)

    benchmark(lambda: database_error(loss, data, hypothesis,
                                     solver_steps=150))
