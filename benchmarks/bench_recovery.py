"""E20 — restart latency and journal size: checkpoint + suffix replay.

PR 5's tentpole claim: restarting a long-lived `PMWService` from a
seq-stamped checkpoint plus the ledger *suffix* past the stamp is at
least **5x** faster than the status quo ante — the same snapshot with
full-journal replay as the budget authority — on a 20k-spend journal,
with bitwise-identical restored budget accounting. Sections:

1. **restart latency** (the gated bar) — a service with several
   long-lived sessions accumulates a 20k-spend write-ahead journal and
   checkpoints; a short crash window of spends follows. Three restart
   paths are timed on the identical on-disk state:

   - *checkpoint + suffix* — the stamped snapshot; restore replays only
     the crash window (`replay_ledger(from_seq=stamp)` skips the prefix
     with a cheap seq scan, and accountants extend rather than rebuild);
   - *full replay* — the **same snapshot with its stamp stripped**,
     which reproduces the pre-PR reconciliation exactly (the ledger is
     re-replayed record by record and every accountant rebuilt from the
     full history). Identical snapshot-loading cost on both sides, so
     the measured gap is purely the replay-suffix design;
   - *cold resume* (informational) — ledger only, no snapshot: what
     restart costs when no checkpoint exists at all.

   All three must agree with the pre-crash accountants **bitwise**
   (identical spend-record lists, not just close totals).
2. **compaction** — `Checkpointer.compact()` rotates the journal into
   run-length-encoded `baseline` records: journal lines and bytes
   before/after, cold-replay time on the rotated journal, and bitwise
   equality of replayed totals across the rotation.

Spends are synthesized through the service's own journaling path
(accountant -> `consume_unjournaled` -> `append_spends`) with
`fsync=False`, so a 20k-spend history builds in seconds while the
on-disk artifact is byte-for-byte what a real deployment accumulates.
Per-round labels repeat (one oracle, one calibrated per-round cost —
the steady state of a long-lived session), which is also what makes the
RLE baselines collapse well; the byte counts are reported either way.

Results are archived as text (``benchmarks/results/e20.txt``) and JSON
(``benchmarks/results/BENCH_recovery.json``); smoke runs write
``BENCH_recovery.smoke.json`` — the nightly regression workflow diffs
fresh smoke numbers against the committed baseline.

Run standalone (``python benchmarks/bench_recovery.py``), in CI smoke
mode (``--smoke`` — 2k-spend journal, asserts the restart speedup
>= 2x), or via pytest (``pytest benchmarks/bench_recovery.py -s``).
``--json-dir DIR`` redirects the JSON artifact (used by the nightly
benchmark-regression workflow).
"""

import copy
import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.serve.checkpoint import Checkpointer
from repro.serve.service import PMWService

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_recovery.json"

#: Regression bars on the restart speedup (checkpoint+suffix vs full
#: replay of the same snapshot). Full mode replays a 20k-spend journal.
FULL_BAR = 5.0
SMOKE_BAR = 2.0

FULL_SIZES = dict(sessions=6, spends=20_000, suffix_spends=200,
                  universe_size=400, d=3)
SMOKE_SIZES = dict(sessions=4, spends=2_000, suffix_spends=50,
                   universe_size=200, d=3)

#: Restores are timed best-of-N (same machine, same files; the min is
#: the honest estimate of the path's cost without scheduler noise).
TIMING_REPEATS = 5

SESSION_PARAMS = dict(oracle="non-private", scale=4.0, alpha=0.35,
                      beta=0.1, epsilon=2.0, delta=1e-6,
                      schedule="calibrated", max_updates=4,
                      solver_steps=30)


# -- journal synthesis --------------------------------------------------------


def synthesize_history(service, sids, total_spends, *, label="oracle:round",
                       epsilon=0.004, delta=1e-9):
    """Drive ``total_spends`` spends through the service's own
    write-ahead journaling path, round-robin across sessions."""
    sessions = [service.session(sid) for sid in sids]
    for index in range(total_spends):
        session = sessions[index % len(sessions)]
        with session.lock:
            session.accountant.spend(epsilon, delta, label=label)
            records = session.consume_unjournaled()
            seq = service.ledger.append_spends(session.session_id, records)
            if seq >= 0:
                session.last_spend_seq = seq


def build_state(sizes, workdir):
    """One crashed deployment on disk: ledger + checkpoint + suffix.

    Returns (task, paths, expected per-session accountant records).
    """
    ledger_path = os.path.join(workdir, "budget.jsonl")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    task = make_classification_dataset(
        n=2_000, d=sizes["d"], universe_size=sizes["universe_size"], rng=1)
    service = PMWService(task.dataset, ledger_path=ledger_path,
                         ledger_fsync=False, rng=7)
    sids = [service.open_session("pmw-convex", analyst=f"analyst-{index}",
                                 **SESSION_PARAMS)
            for index in range(sizes["sessions"])]
    synthesize_history(service, sids, sizes["spends"])
    checkpointer = Checkpointer(service, checkpoint_dir)
    checkpointer.checkpoint()
    # The crash window: spends journaled after the checkpoint.
    synthesize_history(service, sids, sizes["suffix_spends"],
                       label="oracle:post-checkpoint")
    expected = {sid: service.session(sid).accountant.to_records()
                for sid in sids}
    service.close()  # the crash: only the on-disk state survives
    return task, dict(ledger=ledger_path, checkpoints=checkpoint_dir,
                      snapshot=checkpointer.latest()), sids, expected


# -- the restart paths --------------------------------------------------------


def restore_checkpoint_suffix(task, paths):
    return Checkpointer.restore(task.dataset, paths["checkpoints"],
                                ledger_path=paths["ledger"],
                                ledger_fsync=False, rng=7)


def restore_full_replay(task, paths, unstamped_snapshot):
    """The pre-PR reconciliation: same snapshot, stamp stripped, so the
    whole journal is replayed and every accountant rebuilt from it."""
    return PMWService.restore(task.dataset, snapshot=unstamped_snapshot,
                              ledger_path=paths["ledger"],
                              ledger_fsync=False, rng=7)


def restore_cold(task, paths):
    return PMWService.restore(task.dataset, ledger_path=paths["ledger"],
                              ledger_fsync=False, rng=7)


def timed(fn, repeats=TIMING_REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if result is not None:
            result.close()
        best = min(best, elapsed)
    return best


def check_exact(service, sids, expected, path_name):
    for sid in sids:
        got = service.session(sid).accountant.to_records()
        assert got == expected[sid], (
            f"{path_name}: session {sid} restored {len(got)} spend "
            f"records that differ from the pre-crash accountant"
        )
    service.close()


# -- sections -----------------------------------------------------------------


def restart_latency(sizes, workdir):
    task, paths, sids, expected = build_state(sizes, workdir)
    with open(paths["snapshot"], encoding="utf-8") as handle:
        snapshot = json.load(handle)
    unstamped = copy.deepcopy(snapshot)
    unstamped["ledger_seq"] = None
    for record in unstamped["sessions"].values():
        record["last_spend_seq"] = -1

    # Correctness first: every path must restore the identical records.
    check_exact(restore_checkpoint_suffix(task, paths), sids, expected,
                "checkpoint+suffix")
    check_exact(restore_full_replay(task, paths, unstamped), sids,
                expected, "full replay")
    check_exact(restore_cold(task, paths), sids, expected, "cold resume")

    suffix_seconds = timed(lambda: restore_checkpoint_suffix(task, paths))
    full_seconds = timed(
        lambda: restore_full_replay(task, paths, copy.deepcopy(unstamped)))
    cold_seconds = timed(lambda: restore_cold(task, paths))
    journal_bytes = os.path.getsize(paths["ledger"])
    with open(paths["ledger"], "rb") as handle:
        journal_lines = sum(1 for _ in handle)
    return {
        "sessions": sizes["sessions"],
        "journal_spends": sizes["spends"] + sizes["suffix_spends"],
        "suffix_spends": sizes["suffix_spends"],
        "journal_lines": journal_lines,
        "journal_bytes": journal_bytes,
        "full_replay_seconds": full_seconds,
        "checkpoint_suffix_seconds": suffix_seconds,
        "cold_resume_seconds": cold_seconds,
        "speedup": full_seconds / suffix_seconds,
        "cold_vs_suffix": cold_seconds / suffix_seconds,
    }, task, paths, sids, expected


def compaction(task, paths, sids, expected):
    before_bytes = os.path.getsize(paths["ledger"])
    with open(paths["ledger"], "rb") as handle:
        before_lines = sum(1 for _ in handle)
    service = restore_checkpoint_suffix(task, paths)
    checkpointer = Checkpointer(service, paths["checkpoints"])
    started = time.perf_counter()
    _, archive = checkpointer.compact()
    compact_seconds = time.perf_counter() - started
    service.close()
    after_bytes = os.path.getsize(paths["ledger"])
    with open(paths["ledger"], "rb") as handle:
        after_lines = sum(1 for _ in handle)

    # Post-rotation, both restore tiers must still be bitwise-exact.
    check_exact(restore_checkpoint_suffix(task, paths), sids, expected,
                "checkpoint+suffix after compact")
    cold_after = timed(lambda: restore_cold(task, paths), repeats=3)
    check_exact(restore_cold(task, paths), sids, expected,
                "cold resume after compact")
    return {
        "before_lines": before_lines,
        "before_bytes": before_bytes,
        "after_lines": after_lines,
        "after_bytes": after_bytes,
        "bytes_ratio": before_bytes / after_bytes,
        "compact_seconds": compact_seconds,
        "cold_resume_after_seconds": cold_after,
        "archive": os.path.basename(archive),
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as workdir:
        restart, task, paths, sids, expected = restart_latency(sizes,
                                                               workdir)
        compacted = compaction(task, paths, sids, expected)
    return {
        "benchmark": "recovery",
        "mode": "smoke" if smoke else "full",
        "bar": SMOKE_BAR if smoke else FULL_BAR,
        "restart": restart,
        "compaction": compacted,
        "speedups": {
            "restart": restart["speedup"],
            "cold_vs_suffix": restart["cold_vs_suffix"],
        },
        # The nightly gate diffs only the designed-headroom section;
        # cold_vs_suffix is informational (it measures a path this PR
        # did not change).
        "gated_speedups": {
            "restart": restart["speedup"],
        },
    }


def build_report(results):
    report = ExperimentReport(
        "E20 restart latency: checkpoint + ledger-suffix replay")
    restart = results["restart"]
    report.add_table(
        ["sessions", "journal spends", "suffix spends", "journal MiB",
         "full replay s", "ckpt+suffix s", "cold resume s", "speedup"],
        [[restart["sessions"], restart["journal_spends"],
          restart["suffix_spends"],
          restart["journal_bytes"] / 2**20,
          restart["full_replay_seconds"],
          restart["checkpoint_suffix_seconds"],
          restart["cold_resume_seconds"], restart["speedup"]]],
        title="restart from identical on-disk state: stamped checkpoint "
              "+ suffix vs the same snapshot with full-journal replay "
              f"(bar: >= {results['bar']}x); restored spend records are "
              "asserted bitwise-identical on every path",
    )
    compacted = results["compaction"]
    report.add_table(
        ["lines before", "lines after", "KiB before", "KiB after",
         "bytes ratio", "compact s", "cold resume after s"],
        [[compacted["before_lines"], compacted["after_lines"],
          compacted["before_bytes"] / 2**10,
          compacted["after_bytes"] / 2**10, compacted["bytes_ratio"],
          compacted["compact_seconds"],
          compacted["cold_resume_after_seconds"]]],
        title="ledger compaction: rotation into RLE baseline records "
              "(old segment archived; replayed totals bitwise-equal "
              "across the rotation)",
    )
    return report


def write_json(results, json_dir=None):
    """Archive machine-readable results (perf trajectory across PRs).

    Full-mode results default into ``benchmarks/results/``; smoke runs
    default into a scratch directory so the casual CI/developer command
    (``--smoke`` with no ``--json-dir``) can never silently overwrite
    the committed nightly baseline. Re-baseline explicitly with
    ``--smoke --json-dir benchmarks/results``.
    """
    if json_dir is not None:
        directory = pathlib.Path(json_dir)
    elif results["mode"] == "full":
        directory = RESULTS_DIR
    else:
        directory = pathlib.Path(tempfile.gettempdir()) / "repro-bench-smoke"
    directory.mkdir(parents=True, exist_ok=True)
    name = JSON_NAME if results["mode"] == "full" \
        else JSON_NAME.replace(".json", ".smoke.json")
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    restart = results["restart"]
    bar = results["bar"]
    assert restart["speedup"] >= bar, (
        f"restart speedup {restart['speedup']:.2f}x is below the {bar}x "
        f"bar on a {restart['journal_spends']}-spend journal"
    )
    compacted = results["compaction"]
    assert compacted["after_lines"] < compacted["before_lines"], (
        "compaction did not shrink the journal"
    )
    assert compacted["bytes_ratio"] > 1.0


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e20_report(results, save_report):
    text = save_report(build_report(results))
    assert "checkpoint + ledger-suffix replay" in text


def test_e20_restart_at_least_5x(results):
    check_bars(results)


def test_e20_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["speedups"]["restart"] >= FULL_BAR
    assert payload["mode"] == "full"


# -- standalone / CI ----------------------------------------------------------


def main(argv):
    smoke = "--smoke" in argv
    json_dir = None
    if "--json-dir" in argv:
        position = argv.index("--json-dir") + 1
        if position >= len(argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke and json_dir is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e20.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    speedup = outcome["restart"]["speedup"]
    print(f"OK: restart speedup {speedup:.2f}x >= {outcome['bar']}x "
          f"({outcome['mode']} mode)")


if __name__ == "__main__":
    main(sys.argv[1:])
