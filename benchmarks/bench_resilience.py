"""E23 — resilience: priority lanes, deadline shedding, exactly-once retries.

PR 8's tentpole claim: the serving layer stays predictable when it is
overloaded and exact when it is being killed. Sections:

1. **overload + priority lanes** (always gated) — bulk analysts flood a
   two-worker gateway with fresh pmw-convex queries (each a
   multiplicative-weights update), while one reader session re-issues
   already-answered queries. Reads auto-classify onto the ``"fast"``
   lane (their answers are cached) and, with one worker reserved via
   ``fast_workers=1``, never queue behind an MW update. The gate is an
   SLO on the fast lane's queue-wait p99: it must be *finite* (the lane
   actually served under flood) and under ``FAST_P99_SLO_MS``. While
   the flood still holds every worker busy, requests carrying
   already-expired deadlines must shed at enqueue with a typed
   ``DeadlineUnmeetable`` — counted by the ``gateway.shed`` metric
   under ``reason="deadline"``. Tight-but-unexpired deadlines exercise
   the queue-wait-estimate admission path; their sheds are reported
   (informational — the estimate is history-dependent).
2. **kill-storm exactly-once** (always gated) — every shard of a
   deployment carries a ``FaultPlan`` that SIGKILLs it after journaling
   a spend + answer but *before* the reply crosses the pipe: the
   worst-case failure for non-refundable budget, because the client
   cannot tell a lost request from a lost reply. A ``ResilientClient``
   (capped exponential backoff + full jitter, per-shard circuit
   breaker, minted idempotency keys) drives the workload through the
   storm. The gate is oracle-relative: a crash-free single-process
   ``PMWService`` run with identical seeds must produce bitwise-equal
   answers and bitwise-equal accountant records — i.e. zero
   double-spends despite every shard dying mid-reply and every killed
   request being retried.

Results are archived as text (``benchmarks/results/e23.txt``) and JSON
(``benchmarks/results/BENCH_resilience.json``); smoke runs write
``BENCH_resilience.smoke.json`` for the nightly regression gate. The
fast-lane p99 is published under ``gated_latencies_ms`` *bucketed up*
to ``LATENCY_BUCKET_MS`` granularity: raw sub-millisecond queue waits
would make the nightly lower-is-better diff pure scheduler noise,
while a bucketed value only moves when the lane degrades by an
SLO-scale step.

Run standalone (``python benchmarks/bench_resilience.py``), in CI
smoke mode (``--smoke``), or via pytest. ``--json-dir DIR`` redirects
the JSON artifact.
"""

import json
import math
import os
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.exceptions import DeadlineUnmeetable, Shed
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.resilience import Deadline, ResilientClient
from repro.serve.service import PMWService
from repro.serve.shard import (FaultPlan, ShardedService,
                               read_shard_health)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_resilience.json"

#: Fast-lane queue-wait p99 SLO under bulk flood, milliseconds. With a
#: reserved fast worker a cached read waits only behind other cached
#: reads, so the honest number is ~1ms; the SLO guards against the
#: lane silently degrading to MW-update timescales.
FAST_P99_SLO_MS = 250.0
#: Published-latency granularity (see module docstring): the nightly
#: gate diffs bucketed values, so only SLO-scale regressions trip it.
LATENCY_BUCKET_MS = 25.0

FULL_SIZES = dict(bulk_sessions=3, bulk_rounds=8, reads=80,
                  reader_queries=4, doomed=8, shards=3,
                  sessions_per_shard=2, storm_rounds=4,
                  universe_size=12_000, d=6)
SMOKE_SIZES = dict(bulk_sessions=3, bulk_rounds=5, reads=40,
                   reader_queries=4, doomed=6, shards=2,
                   sessions_per_shard=2, storm_rounds=3,
                   universe_size=5_000, d=5)

#: Each shard incarnation dies before replying to its KILL_AT-th
#: request (after journaling it). Sessions are placed so every shard
#: sees at least ``sessions_per_shard * storm_rounds`` requests, so
#: every plan is guaranteed to fire exactly once.
KILL_AT = 3

#: Deterministic mechanism config: explicit integer per-session seeds
#: make the sharded run and the single-process oracle bitwise twins.
SESSION_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=4.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


def session_seed(sid: str) -> int:
    return 10_000 + sum(sid.encode())


def open_session(service, sid):
    service.open_session("pmw-convex", session_id=sid, analyst=sid,
                         rng=session_seed(sid), **SESSION_PARAMS)


def bucket_ms(milliseconds: float) -> float:
    """Round a latency up to the published gating granularity."""
    return max(LATENCY_BUCKET_MS,
               math.ceil(milliseconds / LATENCY_BUCKET_MS)
               * LATENCY_BUCKET_MS)


# -- section 1: overload + priority lanes -------------------------------------


def overload_lanes(dataset, sizes, workdir):
    """Bulk MW flood vs cached reads on a lane-aware gateway."""
    universe = dataset.universe
    bulk_sids = [f"bulk-{index}" for index in range(sizes["bulk_sessions"])]
    reader = "reader"
    read_latencies = []
    flood_errors = []

    with PMWService(dataset, ledger_path=workdir / "lanes.jsonl",
                    ledger_fsync=False) as service:
        for sid in bulk_sids + [reader]:
            open_session(service, sid)
        reader_queries = random_quadratic_family(
            universe, sizes["reader_queries"], rng=session_seed(reader))
        gateway = service.gateway(workers=2, fast_workers=1,
                                  admission_min_samples=8,
                                  default_timeout=120.0)
        try:
            # Warm the cache: the first pass rides the bulk lane and
            # records each answer; every later submit of the same query
            # is a cache hit and auto-classifies fast.
            for query in reader_queries:
                gateway.submit(reader, query)

            release = threading.Event()

            def flood(sid):
                try:
                    for round_index in range(sizes["bulk_rounds"]):
                        query = random_quadratic_family(
                            universe, 1,
                            rng=round_index * 1000 + session_seed(sid))[0]
                        gateway.submit(sid, query)
                        if round_index == 0:
                            release.set()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    release.set()
                    flood_errors.append(exc)

            threads = [threading.Thread(target=flood, args=(sid,))
                       for sid in bulk_sids]
            for thread in threads:
                thread.start()
            release.wait(timeout=30.0)
            for index in range(sizes["reads"]):
                query = reader_queries[index % len(reader_queries)]
                started = time.perf_counter()
                gateway.submit(reader, query)
                read_latencies.append(time.perf_counter() - started)
            for thread in threads:
                thread.join()
            if flood_errors:
                raise flood_errors[0]

            # Shed phase: wedge both workers with fresh bulk queries,
            # then present deadlines the gateway must refuse at
            # enqueue. Pre-minted-and-lapsed deadlines shed
            # deterministically; tight-but-live ones go through the
            # lane's queue-wait estimate.
            wedge = [
                gateway.submit_async(
                    bulk_sids[index % len(bulk_sids)],
                    random_quadratic_family(
                        universe, 1, rng=500_000 + index)[0])
                for index in range(4)
            ]
            expired_shed = doomed_shed = 0
            for index in range(sizes["doomed"]):
                sid = bulk_sids[index % len(bulk_sids)]
                query = random_quadratic_family(
                    universe, 1, rng=600_000 + index)[0]
                if index % 2 == 0:
                    deadline = Deadline.after(1e-4)
                    time.sleep(0.002)  # guaranteed lapsed at enqueue
                else:
                    deadline = Deadline.after(0.002)
                try:
                    gateway.submit(sid, query, deadline=deadline)
                except DeadlineUnmeetable:
                    if index % 2 == 0:
                        expired_shed += 1
                    else:
                        doomed_shed += 1
                except Shed:
                    pass  # timed out in queue instead of at enqueue
            for future in wedge:
                future.result(timeout=120.0)
            snapshot = gateway.metrics.snapshot()
        finally:
            gateway.close()

    fast = snapshot["queue_wait_lanes"]["fast"]
    bulk = snapshot["queue_wait_lanes"]["bulk"]
    ordered = sorted(read_latencies)
    measured_p99 = ordered[min(len(ordered) - 1,
                               int(0.99 * len(ordered)))]
    return {
        "bulk_sessions": sizes["bulk_sessions"],
        "bulk_requests": sizes["bulk_sessions"] * sizes["bulk_rounds"],
        "reads": sizes["reads"],
        "fast_lane_count": fast["count"],
        "fast_p99_ms": fast["p99_seconds"] * 1e3,
        "bulk_lane_count": bulk["count"],
        "bulk_p99_ms": bulk["p99_seconds"] * 1e3,
        "read_p99_ms": measured_p99 * 1e3,
        "expired_submitted": (sizes["doomed"] + 1) // 2,
        "expired_shed": expired_shed,
        "doomed_submitted": sizes["doomed"] // 2,
        "doomed_shed": doomed_shed,
        "shed_deadline_metric": snapshot["shed"].get("deadline", 0),
    }


# -- section 2: kill-storm exactly-once ---------------------------------------


def storm_sessions(service, per_shard):
    """Open sessions until every shard owns ``per_shard`` of them.

    Placement is a pure function of session id + pinned topology, so
    this is deterministic — and it guarantees every shard serves
    enough requests for its kill point to fire.
    """
    counts = dict.fromkeys(service.shard_ids, 0)
    sids, index = [], 0
    while any(count < per_shard for count in counts.values()):
        sid = f"an-{index:02d}"
        index += 1
        owner = service.router.route(sid)
        if counts[owner] >= per_shard:
            continue
        counts[owner] += 1
        open_session(service, sid)
        sids.append(sid)
    return sids


def storm_query(universe, sid, round_index):
    return random_quadratic_family(
        universe, 1, rng=round_index * 1000 + session_seed(sid))[0]


def oracle_run(dataset, sids, rounds, ledger_path):
    """Crash-free ground truth: same seeds, same per-session order."""
    answers = {sid: [] for sid in sids}
    with PMWService(dataset, ledger_path=ledger_path,
                    ledger_fsync=False) as service:
        for sid in sids:
            open_session(service, sid)
        for round_index in range(rounds):
            for sid in sids:
                query = storm_query(dataset.universe, sid, round_index)
                answers[sid].append(
                    service.submit(sid, query, on_halt="hypothesis").value)
        records = {sid: service.session(sid).accountant.to_records()
                   for sid in sids}
    return answers, records


def kill_storm(dataset, sizes, workdir):
    """Every shard dies mid-reply once; the client must stay exact."""
    service = ShardedService(
        dataset, workdir / "storm", shards=sizes["shards"],
        checkpoint_every=1, ledger_fsync=False, rng=0, auto_restore=True,
        fault_plans={f"shard-{index:02d}": FaultPlan(
            exit_before_reply=KILL_AT)
            for index in range(sizes["shards"])})
    try:
        sids = storm_sessions(service, sizes["sessions_per_shard"])
        client = ResilientClient(service, rng=0, max_attempts=10,
                                 base_delay=0.2, max_delay=1.0,
                                 breaker_failures=8, client_id="bench")
        answers = {sid: [] for sid in sids}
        started = time.perf_counter()
        for round_index in range(sizes["storm_rounds"]):
            for sid in sids:
                query = storm_query(dataset.universe, sid, round_index)
                answers[sid].append(
                    client.submit(sid, query, on_halt="hypothesis").value)
        elapsed = time.perf_counter() - started
        records = service.budget_records()
        health = read_shard_health(service.directory)
    finally:
        service.close()

    oracle_answers, oracle_records = oracle_run(
        dataset, sids, sizes["storm_rounds"], workdir / "oracle.jsonl")
    divergence = 0.0
    for sid in sids:
        for got, want in zip(answers[sid], oracle_answers[sid]):
            divergence = max(divergence, float(np.max(np.abs(
                np.asarray(got) - np.asarray(want)))))
    return {
        "shards": sizes["shards"],
        "sessions": len(sids),
        "requests": client.stats["requests"],
        "attempts": client.stats["attempts"],
        "retries": client.stats["retries"],
        "deaths": sum(h.get("deaths", 0) for h in health.values()),
        "restarts": sum(h.get("restarts", 0) for h in health.values()),
        "storm_seconds": elapsed,
        "divergence": divergence,
        "records_exact": records == oracle_records,
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    task = make_classification_dataset(n=8_000, d=sizes["d"],
                                       universe_size=sizes["universe_size"],
                                       rng=1)
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as scratch:
        workdir = pathlib.Path(scratch)
        lanes = overload_lanes(task.dataset, sizes, workdir)
        storm = kill_storm(task.dataset, sizes, workdir)
    return {
        "benchmark": "resilience",
        "mode": "smoke" if smoke else "full",
        "fast_p99_slo_ms": FAST_P99_SLO_MS,
        "latency_bucket_ms": LATENCY_BUCKET_MS,
        "lanes": lanes,
        "storm": storm,
        "speedups": {},
        "gated_speedups": {},
        # Lower-is-better nightly gate; bucketed so scheduler noise on
        # a ~1ms honest value cannot trip a 20% tolerance.
        "gated_latencies_ms": {
            "fast_lane_p99": bucket_ms(lanes["fast_p99_ms"]),
        },
    }


def build_report(results):
    report = ExperimentReport(
        "E23 resilience: lanes, deadlines, exactly-once retries")
    lanes = results["lanes"]
    report.add_table(
        ["bulk reqs", "reads", "fast p99 (ms)", "bulk p99 (ms)",
         "read e2e p99 (ms)", "SLO (ms)"],
        [[lanes["bulk_requests"], lanes["reads"], lanes["fast_p99_ms"],
          lanes["bulk_p99_ms"], lanes["read_p99_ms"],
          results["fast_p99_slo_ms"]]],
        title="priority lanes under MW-update flood: cached reads ride "
              "the fast lane (reserved worker) and keep a finite, "
              "SLO-bounded queue-wait p99",
    )
    report.add_table(
        ["expired submitted", "expired shed", "tight submitted",
         "tight shed", "shed metric (reason=deadline)"],
        [[lanes["expired_submitted"], lanes["expired_shed"],
          lanes["doomed_submitted"], lanes["doomed_shed"],
          lanes["shed_deadline_metric"]]],
        title="deadline-aware admission: unmeetable deadlines shed at "
              "enqueue with typed DeadlineUnmeetable, never queued",
    )
    storm = results["storm"]
    report.add_table(
        ["shards", "sessions", "requests", "attempts", "retries",
         "deaths", "restarts", "max |diff|", "records exact"],
        [[storm["shards"], storm["sessions"], storm["requests"],
          storm["attempts"], storm["retries"], storm["deaths"],
          storm["restarts"], storm["divergence"],
          storm["records_exact"]]],
        title="kill-storm: every shard SIGKILLed after journal, before "
              "reply; retried requests replay bitwise — zero "
              "double-spends vs the single-process oracle",
    )
    return report


def write_json(results, json_dir=None):
    """Archive machine-readable results; smoke runs default to scratch
    so a casual ``--smoke`` can never overwrite the committed nightly
    baseline (re-baseline with ``--smoke --json-dir
    benchmarks/results``)."""
    if json_dir is not None:
        directory = pathlib.Path(json_dir)
    elif results["mode"] == "full":
        directory = RESULTS_DIR
    else:
        directory = pathlib.Path(tempfile.gettempdir()) / "repro-bench-smoke"
    directory.mkdir(parents=True, exist_ok=True)
    name = JSON_NAME if results["mode"] == "full" \
        else JSON_NAME.replace(".json", ".smoke.json")
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    lanes = results["lanes"]
    assert lanes["fast_lane_count"] >= lanes["reads"], (
        f"only {lanes['fast_lane_count']} requests auto-classified onto "
        f"the fast lane — cached reads are not being recognized")
    assert math.isfinite(lanes["fast_p99_ms"]), (
        "fast-lane queue-wait p99 is not finite — the lane never served")
    assert lanes["fast_p99_ms"] <= results["fast_p99_slo_ms"], (
        f"fast-lane p99 {lanes['fast_p99_ms']:.1f}ms blew the "
        f"{results['fast_p99_slo_ms']:.0f}ms SLO — cached reads are "
        "queuing behind MW updates")
    assert lanes["expired_shed"] == lanes["expired_submitted"], (
        f"only {lanes['expired_shed']}/{lanes['expired_submitted']} "
        "expired-deadline requests shed at enqueue")
    assert lanes["shed_deadline_metric"] >= lanes["expired_shed"], (
        "gateway.shed{reason=deadline} undercounts observed sheds")
    storm = results["storm"]
    assert storm["deaths"] == storm["shards"], (
        f"{storm['deaths']} deaths but every one of {storm['shards']} "
        "shards carried a kill point — the storm did not fire")
    assert storm["restarts"] == storm["shards"], (
        "a killed shard was not restored")
    assert storm["retries"] >= storm["deaths"], (
        "fewer client retries than deaths — a killed request was lost")
    assert storm["divergence"] == 0.0, (
        f"retried answers diverged from the crash-free oracle by "
        f"{storm['divergence']:.2e} — replay is not bitwise")
    assert storm["records_exact"], (
        "accountant records diverged from the oracle — a retry "
        "double-spent budget")


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e23_report(results, save_report):
    text = save_report(build_report(results))
    assert "resilience" in text


def test_e23_bars(results):
    check_bars(results)


def test_e23_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["mode"] == "full"
    assert payload["storm"]["records_exact"] is True


# -- standalone / CI ----------------------------------------------------------


def main(argv):
    smoke = "--smoke" in argv
    json_dir = None
    if "--json-dir" in argv:
        position = argv.index("--json-dir") + 1
        if position >= len(argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke and json_dir is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e23.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    lanes, storm = outcome["lanes"], outcome["storm"]
    print(f"OK: fast-lane p99 {lanes['fast_p99_ms']:.2f}ms <= "
          f"{outcome['fast_p99_slo_ms']:.0f}ms SLO, "
          f"{lanes['shed_deadline_metric']} deadline shed(s), "
          f"{storm['deaths']} death(s)/{storm['retries']} retrie(s) with "
          f"zero double-spends ({outcome['mode']} mode)")


if __name__ == "__main__":
    main(sys.argv[1:])
