"""E11 — running time vs |X| (Section 4.3).

Regenerates the poly(|X|) runtime profile and times the three per-round
components individually (sparse-vector query, oracle call, MW update).
"""

import numpy as np
import pytest

from repro.core.accuracy import database_error
from repro.core.update import dual_certificate, mw_step
from repro.data.histogram import Histogram
from repro.data.synthetic import make_classification_dataset
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.runtime import run_runtime_profile
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_runtime_profile(rng=0)


def test_e11_report(report, save_report):
    text = save_report(report)
    assert "per-query time" in text


def test_e11_polynomial_growth(report):
    summary = next(s for s in report.sections if "slope" in s)
    slope = float(summary.split("slope:")[1].split("(")[0])
    # Growth should be polynomial and sub-quadratic in |X|.
    assert 0.0 < slope < 2.0


@pytest.fixture(scope="module")
def round_pieces():
    task = make_classification_dataset(n=20_000, d=3, universe_size=300,
                                       rng=0)
    loss = random_logistic_family(task.universe, 1, rng=1)[0]
    data = task.dataset.histogram()
    hypothesis = Histogram.uniform(task.universe)
    oracle = NoisyGradientDescentOracle(epsilon=0.3, delta=1e-6, steps=30)
    return task, loss, data, hypothesis, oracle


def test_bench_component_error_query(benchmark, round_pieces, report, save_report):
    save_report(report)
    task, loss, data, hypothesis, _ = round_pieces
    benchmark(lambda: database_error(loss, data, hypothesis,
                                     solver_steps=150))


def test_bench_component_oracle(benchmark, round_pieces):
    task, loss, _, _, oracle = round_pieces
    benchmark(lambda: oracle.answer(loss, task.dataset, rng=2))


def test_bench_component_update(benchmark, round_pieces):
    task, loss, data, hypothesis, _ = round_pieces
    rng = np.random.default_rng(3)
    theta = loss.domain.random_point(rng)
    certificate = dual_certificate(loss, hypothesis, theta,
                                   solver_steps=150)
    benchmark(lambda: mw_step(hypothesis, certificate, eta=0.1, scale=2.0))
