"""E16 — serving-layer throughput: cache fast path, sessions, crash resume.

The `repro.serve` subsystem claims that a duplicate-heavy workload (the
production shape: dashboards, retries, many analysts asking the canonical
questions) is served much faster than naive per-query ``answer()`` calls,
because repeats ride the answer cache and halted sessions ride the public
hypothesis — both at zero privacy cost. This benchmark measures:

1. batch throughput, service vs naive, on a duplicate-heavy stream
   (asserted >= 5x in the regression test below);
2. throughput and hit rate across a duplicate-fraction sweep;
3. queries/sec as the number of concurrent sessions grows;
4. killed-and-restarted budget exactness: a service rebuilt from its
   ledger resumes with bit-identical privacy totals;
5. the vectorized ``Histogram.sample_indices`` (cached-CDF inverse
   sampling) against the previous ``Generator.choice(p=...)`` hot path.

Run standalone (``python benchmarks/bench_serve_throughput.py``) or via
pytest (``pytest benchmarks/bench_serve_throughput.py -s``).
"""

import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.data.histogram import Histogram
from repro.data.synthetic import make_classification_dataset
from repro.erm.oracle import NonPrivateOracle
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_logistic_family
from repro.serve.service import PMWService
from repro.utils.rng import as_generator

MECHANISM_PARAMS = dict(
    scale=2.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
    schedule="calibrated", max_updates=10, solver_steps=60,
)
DISTINCT_LOSSES = 8
REPEATS = 40  # duplicate-heavy: each distinct query asked 40 times


def _task():
    return make_classification_dataset(n=2_000, d=3, universe_size=60, rng=7)


def _stream(universe, distinct=DISTINCT_LOSSES, repeats=REPEATS, rng=0):
    losses = random_logistic_family(universe, distinct, rng=1)
    generator = as_generator(rng)
    stream = losses * repeats
    generator.shuffle(stream)
    return losses, stream


def _naive_time(task, stream):
    """Per-query answer() on a bare mechanism (hypothesis fallback on halt).

    Pinned to the legacy immutable path (``versioned_core=False``): this
    baseline represents the pre-serving-layer behaviour E16's bar was
    recorded against. The versioned core's own round cache makes even the
    bare mechanism replay duplicates (that gain is measured by E18,
    ``bench_hot_loop.py``); leaving it on here would fold E18's win into
    the baseline and understate the serving layer's contribution.
    """
    mechanism = PrivateMWConvex(
        task.dataset, NonPrivateOracle(solver_steps=60), rng=3,
        versioned_core=False, **MECHANISM_PARAMS,
    )
    start = time.perf_counter()
    mechanism.answer_all(stream, on_halt="hypothesis")
    return time.perf_counter() - start


def _service_time(task, stream, sessions=1, max_workers=None):
    service = PMWService(task.dataset, rng=3)
    sids = [
        service.open_session("pmw-convex", oracle="non-private",
                             **MECHANISM_PARAMS)
        for _ in range(sessions)
    ]
    batches = {sid: stream for sid in sids}
    start = time.perf_counter()
    service.answer_batch(batches, max_workers=max_workers)
    return time.perf_counter() - start, service


def duplicate_heavy_speedup():
    """Section 1: the headline service-vs-naive comparison."""
    task = _task()
    _, stream = _stream(task.universe)
    naive = _naive_time(task, stream)
    served, service = _service_time(task, stream)
    stats = service.cache.stats()
    return {
        "queries": len(stream),
        "naive_seconds": naive,
        "service_seconds": served,
        "speedup": naive / served,
        "naive_qps": len(stream) / naive,
        "service_qps": len(stream) / served,
        "hit_rate": stats.hit_rate,
    }


def hit_rate_sweep():
    """Section 2: throughput as the duplicate fraction grows."""
    task = _task()
    rows = []
    for distinct, repeats in ((200, 1), (40, 5), (20, 10), (8, 25), (4, 50)):
        _, stream = _stream(task.universe, distinct=distinct, repeats=repeats)
        seconds, service = _service_time(task, stream)
        stats = service.cache.stats()
        rows.append([
            distinct, repeats, len(stream),
            1.0 - distinct / len(stream),
            stats.hit_rate, len(stream) / seconds,
        ])
    return rows


def session_scaling():
    """Section 3: queries/sec with concurrent independent sessions."""
    task = _task()
    _, stream = _stream(task.universe, distinct=6, repeats=10)
    rows = []
    for sessions in (1, 2, 4, 8):
        seconds, _ = _service_time(task, stream, sessions=sessions,
                                   max_workers=sessions)
        total = len(stream) * sessions
        rows.append([sessions, total, seconds, total / seconds])
    return rows


def crash_resume_exactness():
    """Section 4: ledger-resumed totals are bit-identical to pre-crash."""
    task = _task()
    _, stream = _stream(task.universe, distinct=6, repeats=4)
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "budget.jsonl")
        service = PMWService(task.dataset, ledger_path=ledger_path, rng=3)
        sid = service.open_session("pmw-convex", oracle="non-private",
                                   **MECHANISM_PARAMS)
        service.answer_batch((sid, stream))
        before_basic = service.session(sid).accountant.total_basic()
        before_advanced = service.session(sid).accountant.total_advanced(1e-7)
        del service  # the crash: nothing survives but the journal

        resumed = PMWService.restore(task.dataset, ledger_path=ledger_path)
        after_basic = resumed.session(sid).accountant.total_basic()
        after_advanced = resumed.session(sid).accountant.total_advanced(1e-7)
    return {
        "before": before_basic, "after": after_basic,
        "before_advanced": before_advanced, "after_advanced": after_advanced,
        "basic_exact": before_basic == after_basic,
        "advanced_exact": before_advanced == after_advanced,
    }


def histogram_sampling_comparison(universe_size=4096, draws=500,
                                  calls=600):
    """Section 5: cached-CDF inverse sampling vs Generator.choice(p=...).

    ``Generator.choice`` was the implementation before the serving PR; it
    revalidates and re-accumulates the probability vector on every call,
    which the serving layer's repeated ``synthetic_dataset`` calls hit
    hard. The replacement builds the CDF once per (immutable) histogram.
    """
    from repro.data.universe import Universe

    rng = np.random.default_rng(0)
    points = rng.standard_normal((universe_size, 3))
    universe = Universe(points, name="bench-sampling")
    weights = rng.dirichlet(np.full(universe_size, 0.5))
    histogram = Histogram(universe, weights)

    legacy_rng = np.random.default_rng(1)
    start = time.perf_counter()
    for _ in range(calls):
        legacy_rng.choice(universe_size, size=draws, p=histogram.weights)
    legacy = time.perf_counter() - start

    new_rng = np.random.default_rng(1)
    start = time.perf_counter()
    for _ in range(calls):
        histogram.sample_indices(draws, rng=new_rng)
    vectorized = time.perf_counter() - start

    # correctness spot check: the empirical law matches the weights (the
    # expected L1 gap of an iid sample of this size is ~ sum_i
    # sqrt(p_i / n) ~ 0.09 for these parameters; we assert well above it)
    sample = histogram.sample_indices(200_000, rng=2)
    empirical = np.bincount(sample, minlength=universe_size) / sample.size
    l1_gap = float(np.abs(empirical - histogram.weights).sum())

    return {
        "universe_size": universe_size, "draws": draws, "calls": calls,
        "legacy_seconds": legacy, "vectorized_seconds": vectorized,
        "speedup": legacy / vectorized, "l1_gap": l1_gap,
    }


def build_report():
    report = ExperimentReport("E16 serving-layer throughput")

    headline = duplicate_heavy_speedup()
    report.add_table(
        ["queries", "naive s", "service s", "speedup", "naive q/s",
         "service q/s", "hit rate"],
        [[headline["queries"], headline["naive_seconds"],
          headline["service_seconds"], headline["speedup"],
          headline["naive_qps"], headline["service_qps"],
          headline["hit_rate"]]],
        title=f"duplicate-heavy stream ({DISTINCT_LOSSES} distinct x "
              f"{REPEATS} repeats), PMWService vs naive answer()",
    )

    report.add_table(
        ["distinct", "repeats", "queries", "dup fraction", "hit rate",
         "queries/s"],
        hit_rate_sweep(),
        title="cache hit-rate sweep",
    )

    report.add_table(
        ["sessions", "total queries", "seconds", "queries/s"],
        session_scaling(),
        title="concurrent independent sessions (thread pool)",
    )

    resume = crash_resume_exactness()
    report.add(
        f"crash resume from ledger: basic totals "
        f"(eps={resume['before'].epsilon:g}, delta={resume['before'].delta:g})"
        f" -> exact={resume['basic_exact']}, "
        f"advanced exact={resume['advanced_exact']}"
    )

    sampling = histogram_sampling_comparison()
    report.add_table(
        ["|X|", "draws/call", "calls", "choice(p=...) s", "cached-CDF s",
         "speedup", "empirical L1 gap"],
        [[sampling["universe_size"], sampling["draws"], sampling["calls"],
          sampling["legacy_seconds"], sampling["vectorized_seconds"],
          sampling["speedup"], sampling["l1_gap"]]],
        title="Histogram.sample_indices: before (Generator.choice) vs "
              "after (cached-CDF searchsorted)",
    )
    return report, headline, resume, sampling


# -- pytest entry points ------------------------------------------------------

@pytest.fixture(scope="module")
def results():
    return build_report()


def test_e16_report(results, save_report):
    report, _, _, _ = results
    text = save_report(report)
    assert "serving-layer" in text


def test_e16_duplicate_heavy_speedup_at_least_5x(results):
    _, headline, _, _ = results
    assert headline["speedup"] >= 5.0, (
        f"expected >= 5x over naive per-query answer(), got "
        f"{headline['speedup']:.2f}x"
    )
    assert headline["hit_rate"] > 0.5


def test_e16_crash_resume_exact(results):
    _, _, resume, _ = results
    assert resume["basic_exact"] and resume["advanced_exact"]


def test_e16_sampling_not_slower(results):
    _, _, _, sampling = results
    # the cached-CDF path must at minimum not regress, and stay correct
    assert sampling["speedup"] >= 1.0
    assert sampling["l1_gap"] < 0.2


if __name__ == "__main__":
    report, headline, resume, sampling = build_report()
    print(report.render())
    ok = (headline["speedup"] >= 5.0 and resume["basic_exact"]
          and resume["advanced_exact"])
    print(f"acceptance: speedup={headline['speedup']:.1f}x (need >= 5), "
          f"ledger exact={resume['basic_exact'] and resume['advanced_exact']}"
          f" -> {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)
