"""E22 — multi-process session sharding: overhead, interning, scaling,
failover.

PR 7 introduced `ShardedService`; this revision measures its zero-copy
wire stack: binary frames over the shard pipe, fingerprint-interned
repeat queries, and shared-memory dataset views (PR 9). Sections:

1. **pipe-RPC efficiency** (always gated) — one serial driver runs the
   workload against a 1-shard deployment while the worker keeps a
   cumulative clock of time spent *inside* service calls (reported via
   ``ping``). ``pipe_efficiency = worker_serve_seconds /
   supervisor_wall_seconds`` must be ``>= 0.8``: everything wall
   includes beyond serving — frame encode/decode on both ends,
   fingerprinting, pipe syscalls, wakeups — may eat at most ~20%.
   Measuring the protocol against the worker's own clock is deliberate:
   on 1-vCPU CI hosts the *same* numpy workload times 1.3-1.7x apart
   between two alternating processes (cache/TLB interference plus
   host-side noise), so a cross-process wall-vs-wall ratio measures the
   host, not the pipe — that ratio is still reported, informationally,
   against a serial in-process ``PMWService`` twin, and the twin's
   answers must be bitwise identical to the sharded ones. A throwaway
   warm-up session keeps worker cold-start out of every timed region.
   The same query stream is then replayed (``REPEAT_PASSES`` passes) so
   every query crosses as a 16-byte interned fingerprint and replays
   from the answer cache — reported as per-call boundary cost and an
   interned-replay speedup.
2. **shard scaling** (gated on hosts with >= 4 cores only) — N
   concurrent analysts flood pmw-convex batches at an N-shard
   deployment vs the same workload at a 1-shard deployment. Sessions
   carry explicit integer rng seeds, so the two topologies are
   deterministic twins: every released answer must be bitwise
   identical. The >= 2.5x bar (4 shards, 64 analysts, full mode) is
   asserted only when ``os.cpu_count() >= 4`` — on smaller hosts the
   section is informational (shards serialize onto too few cores).
3. **failover under load** (always asserted) — SIGKILL one shard while
   every analyst floods, let the supervisor auto-restore it, and
   demand (a) every request either completed or shed a typed
   ``ShardUnavailable``, and (b) every session's accountant is bitwise
   what replaying its shard's write-ahead journal produces. The killed
   worker's intern table and shared-memory attachment die with it;
   post-restore answers exercise the InternMiss resend path.

Results are archived as text (``benchmarks/results/e22.txt``) and JSON
(``benchmarks/results/BENCH_sharding.json``); smoke runs write
``BENCH_sharding.smoke.json`` — the nightly regression workflow diffs
fresh smoke numbers against the committed baseline. The committed
smoke baseline was generated on a 1-core host, so its
``gated_speedups`` carry only ``pipe_efficiency``; re-baseline on a
>= 4-core host (``--smoke --json-dir benchmarks/results``) to start
gating ``shard_scaling`` too.

Run standalone (``python benchmarks/bench_sharding.py``), in CI smoke
mode (``--smoke``), or via pytest (``pytest benchmarks/bench_sharding.py
-s``). ``--json-dir DIR`` redirects the JSON artifact.
"""

import json
import os
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.exceptions import ShardUnavailable
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.ledger import replay_ledger
from repro.serve.service import PMWService
from repro.serve.shard import ShardedService
from repro.serve.shard.worker import LEDGER_NAME

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_sharding.json"

#: Scaling bars, asserted only on hosts with >= MULTICORE_MIN cores —
#: process sharding cannot beat serialization on too few cores.
FULL_BAR = 2.5
SMOKE_BAR = 1.3
MULTICORE_MIN = 4
#: The pipe-RPC efficiency floor: in-worker serve seconds over
#: supervisor-observed wall seconds for the same serial stream of fresh
#: queries. Binary frames + interning + shared-memory dataset views
#: leave well under a millisecond of boundary cost per batch, so the
#: protocol may eat at most ~20% of serving wall-clock.
OVERHEAD_FLOOR = 0.8

FULL_SIZES = dict(shards=4, analysts=64, rounds=3, batch_size=2,
                  universe_size=20_000, d=8)
SMOKE_SIZES = dict(shards=2, analysts=16, rounds=3, batch_size=2,
                   universe_size=8_000, d=6)

#: Best-of-N over fresh deployments AND fresh query objects, the same
#: noise control the gateway benchmark uses. Each repeat pays the full
#: process spawn, so N stays small.
TIMING_REPEATS = 2

#: Fresh 1-shard deployments for the pipe section; the run with the
#: least measured boundary time wins (host-side scheduler noise can
#: only *inflate* wall-minus-serve, never shrink it, so min is the
#: cleanest sample of the protocol's fixed cost).
PIPE_REPEATS = 3

#: Interned-replay passes per deployment: the repeat pass is tiny
#: (cache hits + 16-byte query refs), so several passes are averaged
#: for a stable per-call number.
REPEAT_PASSES = 3

#: A throwaway session served before timing starts, so worker-process
#: cold-start (allocator warm-up, first-touch code paths) lands outside
#: the measurement on both sides of the comparison. Its stream never
#: touches the measured sessions' mechanisms.
WARMUP_SID = "warm-00"
WARMUP_ROUNDS = 2

#: Deterministic mechanism config: explicit integer per-session seeds
#: make every topology (N-shard, 1-shard, in-process) a bitwise twin.
SESSION_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=4.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


def session_seed(sid: str) -> int:
    return 10_000 + sum(sid.encode())


def session_ids(count):
    return [f"an-{index:02d}" for index in range(count)]


def open_sessions(service, sids):
    for sid in sids:
        service.open_session("pmw-convex", session_id=sid, analyst=sid,
                             rng=session_seed(sid), **SESSION_PARAMS)


def build_batches(universe, sid, rounds, batch_size):
    """The per-session query stream — identical in every topology."""
    return [
        random_quadratic_family(universe, batch_size,
                                rng=round_index * 1000 + session_seed(sid))
        for round_index in range(rounds)
    ]


# -- the serving modes --------------------------------------------------------


def warm_service(service, universe, sizes):
    """Serve a throwaway session so cold-start stays untimed."""
    service.open_session("pmw-convex", session_id=WARMUP_SID,
                         analyst=WARMUP_SID, rng=session_seed(WARMUP_SID),
                         **SESSION_PARAMS)
    for queries in build_batches(universe, WARMUP_SID, WARMUP_ROUNDS,
                                 sizes["batch_size"]):
        service.serve_session_batch(WARMUP_SID, queries)


def serve_serial(service, universe, sids, sizes):
    """One serial pass over every session's stream; ``(seconds,
    answers)`` with answers in deterministic per-session order."""
    answers = {sid: [] for sid in sids}
    started = time.perf_counter()
    for sid in sids:
        for queries in build_batches(universe, sid, sizes["rounds"],
                                     sizes["batch_size"]):
            results = service.serve_session_batch(sid, queries)
            answers[sid].extend(r.value for r in results)
    return time.perf_counter() - started, answers


def serial_profile(service, universe, sids, sizes, serve_clock=None):
    """Fresh pass + ``REPEAT_PASSES`` interned/cached replays.

    The repeat passes re-serve the *same* query stream, so across the
    shard pipe every query crosses as an interned fingerprint and
    replays from the answer cache. ``serve_clock`` (sharded runs only)
    reads the worker's cumulative in-call seconds; the returned
    ``*_serve`` entries are per-pass deltas of that clock — wall minus
    serve is the protocol's boundary cost.
    """
    warm_service(service, universe, sizes)
    open_sessions(service, sids)
    clock = serve_clock if serve_clock is not None else (lambda: 0.0)
    mark = clock()
    fresh_wall, fresh_answers = serve_serial(service, universe, sids,
                                             sizes)
    fresh_serve = clock() - mark
    repeat_wall = 0.0
    mark = clock()
    repeat_answers = fresh_answers
    for _ in range(REPEAT_PASSES):
        elapsed, repeat_answers = serve_serial(service, universe, sids,
                                               sizes)
        repeat_wall += elapsed
    repeat_serve = clock() - mark
    return {
        "fresh_wall": fresh_wall,
        "fresh_serve": fresh_serve,
        "repeat_wall": repeat_wall / REPEAT_PASSES,
        "repeat_serve": repeat_serve / REPEAT_PASSES,
        "fresh_answers": fresh_answers,
        "repeat_answers": repeat_answers,
    }


def flood_sharded(service, universe, sids, sizes):
    """Every analyst floods its own session from its own thread.

    Returns ``(elapsed_seconds, answers)`` where ``answers[sid]`` lists
    the released values in the session's own (deterministic) order.
    """
    answers = {sid: [] for sid in sids}
    errors = []

    def run(sid):
        try:
            for queries in build_batches(universe, sid, sizes["rounds"],
                                         sizes["batch_size"]):
                results = service.serve_session_batch(sid, queries)
                answers[sid].extend(r.value for r in results)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(sid,)) for sid in sids]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed, answers


def run_sharded(dataset, sizes, *, shards, directory):
    sids = session_ids(sizes["analysts"])
    with ShardedService(dataset, directory, shards=shards,
                        ledger_fsync=False, rng=0) as service:
        open_sessions(service, sids)
        elapsed, answers = flood_sharded(service, dataset.universe, sids,
                                         sizes)
    return elapsed, answers


def max_divergence(left, right):
    worst = 0.0
    for sid in left:
        for a, b in zip(left[sid], right[sid]):
            worst = max(worst, float(np.max(np.abs(
                np.asarray(a) - np.asarray(b)))))
    return worst


# -- sections -----------------------------------------------------------------


def pipe_overhead(dataset, sizes, workdir):
    """Section 1: serial 1-shard stream priced against the worker's own
    serve clock, with an in-process twin as bitwise oracle."""
    sids = session_ids(sizes["analysts"])
    total = sizes["analysts"] * sizes["rounds"] * sizes["batch_size"]
    batches = sizes["analysts"] * sizes["rounds"]

    best = None
    for repeat in range(PIPE_REPEATS):
        with ShardedService(dataset, workdir / f"pipe-{repeat}", shards=1,
                            ledger_fsync=False, rng=0) as service:
            shard_id = service.shard_ids[0]
            profile = serial_profile(
                service, dataset.universe, sids, sizes,
                serve_clock=lambda: service.ping(shard_id)["serve_seconds"])
        boundary = profile["fresh_wall"] - profile["fresh_serve"]
        if best is None or boundary < best["fresh_wall"] - best["fresh_serve"]:
            best = profile

    with PMWService(dataset, ledger_path=workdir / "pipe-direct.jsonl",
                    ledger_fsync=False) as service:
        direct = serial_profile(service, dataset.universe, sids, sizes)

    fresh_boundary = best["fresh_wall"] - best["fresh_serve"]
    repeat_boundary = best["repeat_wall"] - best["repeat_serve"]
    return {
        "analysts": sizes["analysts"],
        "requests": total,
        "repeat_passes": REPEAT_PASSES,
        "sharded_fresh_seconds": best["fresh_wall"],
        "worker_serve_seconds": best["fresh_serve"],
        "boundary_seconds": fresh_boundary,
        "boundary_us_per_batch": fresh_boundary / batches * 1e6,
        "sharded_fresh_rps": total / best["fresh_wall"],
        "sharded_repeat_rps": total / best["repeat_wall"],
        "direct_fresh_seconds": direct["fresh_wall"],
        "direct_fresh_rps": total / direct["fresh_wall"],
        "pipe_efficiency": best["fresh_serve"] / best["fresh_wall"],
        # Wall-vs-wall against the in-process twin: informational only —
        # on 1-vCPU hosts it is dominated by cross-process compute
        # noise, not protocol cost (see module docstring).
        "wall_ratio_vs_direct": (direct["fresh_wall"]
                                 / best["fresh_wall"]),
        "interned_boundary_us_per_batch": repeat_boundary / batches * 1e6,
        "interned_speedup": best["fresh_wall"] / best["repeat_wall"],
        "divergence_process_boundary": max_divergence(
            best["fresh_answers"], direct["fresh_answers"]),
        "divergence_interned_replay": max_divergence(
            best["fresh_answers"], best["repeat_answers"]),
        "divergence_direct_replay": max_divergence(
            direct["fresh_answers"], direct["repeat_answers"]),
    }


def shard_scaling(dataset, sizes, workdir):
    """Section 2: N-shard vs 1-shard flood, bitwise twins."""
    total = sizes["analysts"] * sizes["rounds"] * sizes["batch_size"]
    runs = {}
    for label, runner in (
        ("sharded_n", lambda rep: run_sharded(
            dataset, sizes, shards=sizes["shards"],
            directory=workdir / f"dep-n-{rep}")),
        ("sharded_1", lambda rep: run_sharded(
            dataset, sizes, shards=1,
            directory=workdir / f"dep-1-{rep}")),
    ):
        best_seconds, answers = float("inf"), None
        for repeat in range(TIMING_REPEATS):
            elapsed, run_answers = runner(repeat)
            if elapsed < best_seconds:
                best_seconds, answers = elapsed, run_answers
        runs[label] = (best_seconds, answers)

    n_seconds, n_answers = runs["sharded_n"]
    one_seconds, one_answers = runs["sharded_1"]
    return {
        "shards": sizes["shards"],
        "analysts": sizes["analysts"],
        "requests": total,
        "universe": sizes["universe_size"],
        "cpu_count": os.cpu_count(),
        "sharded_n_seconds": n_seconds,
        "sharded_1_seconds": one_seconds,
        "sharded_n_rps": total / n_seconds,
        "sharded_1_rps": total / one_seconds,
        "scaling_speedup": one_seconds / n_seconds,
        "divergence_topology": max_divergence(n_answers, one_answers),
    }


def failover_under_load(dataset, workdir):
    """Section 3: SIGKILL + auto-restore mid-flood, exactness demanded."""
    sids = session_ids(6)
    completed = {sid: 0 for sid in sids}
    sheds = []
    unexpected = []
    stop = threading.Event()

    service = ShardedService(dataset, workdir / "failover", shards=2,
                             checkpoint_every=1, ledger_fsync=False,
                             rng=0, auto_restore=True)
    try:
        open_sessions(service, sids)
        victim = service.shard_of(sids[0])

        def run(sid):
            round_index = 0
            while not stop.is_set():
                queries = random_quadratic_family(
                    dataset.universe, 2,
                    rng=round_index * 1000 + session_seed(sid))
                round_index += 1
                try:
                    service.serve_session_batch(sid, queries)
                    completed[sid] += 1
                except ShardUnavailable as exc:
                    sheds.append(exc)
                    stop.wait(0.05)
                except BaseException as exc:  # noqa: BLE001
                    unexpected.append(exc)
                    return

        threads = [threading.Thread(target=run, args=(sid,))
                   for sid in sids]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 15.0
        while (min(completed.values()) < 1
               and time.monotonic() < deadline):
            time.sleep(0.02)

        kill_started = time.perf_counter()
        service.kill_shard(victim)
        service.wait_alive(victim, timeout=60)
        restore_seconds = time.perf_counter() - kill_started
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()

        exact = True
        records = service.budget_records()
        for shard_id in service.shard_ids:
            ledger_path = os.path.join(service.shard_dir(shard_id),
                                       LEDGER_NAME)
            state = replay_ledger(ledger_path)
            for sid in state.session_ids:
                if state.accountant_for(sid).to_records() != records[sid]:
                    exact = False
    finally:
        stop.set()
        service.close()

    return {
        "analysts": len(sids),
        "victim": victim,
        "completed": sum(completed.values()),
        "shed_typed": len(sheds),
        "shed_all_from_victim": (
            {exc.shard_id for exc in sheds} <= {victim}),
        "unexpected": len(unexpected),
        "restore_ms": restore_seconds * 1e3,
        "ledger_exact": exact,
    }


# -- assembly -----------------------------------------------------------------


def build_results(*, smoke=False):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    task = make_classification_dataset(n=10_000, d=sizes["d"],
                                       universe_size=sizes["universe_size"],
                                       rng=1)
    with tempfile.TemporaryDirectory(prefix="bench-sharding-") as scratch:
        workdir = pathlib.Path(scratch)
        pipe = pipe_overhead(task.dataset, sizes, workdir)
        scaling = shard_scaling(task.dataset, sizes, workdir)
        failover = failover_under_load(task.dataset, workdir)
    multicore = (os.cpu_count() or 1) >= MULTICORE_MIN
    gated = {"pipe_efficiency": pipe["pipe_efficiency"]}
    if multicore:
        gated["shard_scaling"] = scaling["scaling_speedup"]
    return {
        "benchmark": "sharding",
        "mode": "smoke" if smoke else "full",
        "bar": SMOKE_BAR if smoke else FULL_BAR,
        "bar_gated": multicore,
        "pipe": pipe,
        "shard_scaling": scaling,
        "failover": failover,
        "speedups": {
            "shard_scaling": scaling["scaling_speedup"],
            "pipe_efficiency": pipe["pipe_efficiency"],
            "interned_speedup": pipe["interned_speedup"],
        },
        # The nightly gate diffs this subset. shard_scaling joins it
        # only when measured on a host with >= MULTICORE_MIN cores — a
        # 1-core "scaling" number is scheduler noise, not a baseline.
        "gated_speedups": gated,
    }


def build_report(results):
    report = ExperimentReport("E22 multi-process session sharding")
    pipe = results["pipe"]
    report.add_table(
        ["1-shard req/s", "efficiency", "boundary us/batch",
         "interned us/batch", "in-process req/s", "wall ratio",
         "max |diff|"],
        [[pipe["sharded_fresh_rps"], pipe["pipe_efficiency"],
          pipe["boundary_us_per_batch"],
          pipe["interned_boundary_us_per_batch"],
          pipe["direct_fresh_rps"], pipe["wall_ratio_vs_direct"],
          pipe["divergence_process_boundary"]]],
        title="pipe-RPC efficiency: in-worker serve seconds / wall "
              f"seconds, serial fresh stream (floor: >= {OVERHEAD_FLOOR}"
              "); boundary = frames + fingerprints + pipe; interned "
              "column replays the stream as 16-byte query refs; wall "
              "ratio vs the in-process twin is informational (host "
              "noise), its answers are the bitwise oracle",
    )
    scaling = results["shard_scaling"]
    report.add_table(
        ["shards", "analysts", "requests", "cpus", f"{scaling['shards']}-shard"
         " req/s", "1-shard req/s", "scaling", "max |diff|"],
        [[scaling["shards"], scaling["analysts"], scaling["requests"],
          scaling["cpu_count"], scaling["sharded_n_rps"],
          scaling["sharded_1_rps"], scaling["scaling_speedup"],
          scaling["divergence_topology"]]],
        title=f"shard scaling, pmw-convex sessions (bar: >= "
              f"{results['bar']}x, gated only on >= "
              f"{MULTICORE_MIN}-core hosts; topologies are "
              "deterministic twins)",
    )
    failover = results["failover"]
    report.add_table(
        ["analysts", "victim", "completed", "shed typed", "unexpected",
         "restore (ms)", "ledger exact"],
        [[failover["analysts"], failover["victim"], failover["completed"],
          failover["shed_typed"], failover["unexpected"],
          failover["restore_ms"], failover["ledger_exact"]]],
        title="SIGKILL + auto-restore under load: typed shedding only, "
              "accountants bitwise-equal to journal replay",
    )
    return report


def write_json(results, json_dir=None):
    """Archive machine-readable results; smoke runs default to scratch
    so a casual ``--smoke`` can never overwrite the committed nightly
    baseline (re-baseline with ``--smoke --json-dir
    benchmarks/results``)."""
    if json_dir is not None:
        directory = pathlib.Path(json_dir)
    elif results["mode"] == "full":
        directory = RESULTS_DIR
    else:
        directory = pathlib.Path(tempfile.gettempdir()) / "repro-bench-smoke"
    directory.mkdir(parents=True, exist_ok=True)
    name = JSON_NAME if results["mode"] == "full" \
        else JSON_NAME.replace(".json", ".smoke.json")
    path = directory / name
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


def check_bars(results):
    """The assertions both pytest and the CI smoke job enforce."""
    pipe = results["pipe"]
    assert pipe["divergence_process_boundary"] == 0.0, (
        "crossing the process boundary changed released answers")
    assert pipe["divergence_interned_replay"] == 0.0, (
        "interned/cached replay diverged from the fresh answers")
    assert pipe["divergence_direct_replay"] == 0.0, (
        "in-process cached replay diverged from the fresh answers")
    assert pipe["pipe_efficiency"] >= OVERHEAD_FLOOR, (
        f"pipe-RPC efficiency {pipe['pipe_efficiency']:.2f} fell "
        f"below the {OVERHEAD_FLOOR} floor — the frame protocol is "
        f"eating {pipe['boundary_us_per_batch']:.0f} us per batch")
    scaling = results["shard_scaling"]
    assert scaling["divergence_topology"] == 0.0, (
        f"N-shard and 1-shard answers diverged by "
        f"{scaling['divergence_topology']:.2e} — topologies must be "
        "bitwise twins")
    if results["bar_gated"]:
        assert scaling["scaling_speedup"] >= results["bar"], (
            f"{scaling['shards']}-shard speedup "
            f"{scaling['scaling_speedup']:.2f}x is below the "
            f"{results['bar']}x bar on a {scaling['cpu_count']}-core host")
    failover = results["failover"]
    assert failover["unexpected"] == 0, (
        "a request failed with something other than ShardUnavailable")
    assert failover["shed_all_from_victim"], (
        "a shard that was never killed shed requests")
    assert failover["ledger_exact"], (
        "post-restore accountants diverged from journal replay")
    assert failover["completed"] > 0


# -- pytest entry points ------------------------------------------------------


@pytest.fixture(scope="module")
def results():
    return build_results()


def test_e22_report(results, save_report):
    text = save_report(build_report(results))
    assert "multi-process session sharding" in text


def test_e22_bars(results):
    check_bars(results)


def test_e22_json_artifact(results):
    path = write_json(results)
    payload = json.loads(pathlib.Path(path).read_text())
    assert payload["mode"] == "full"
    assert payload["failover"]["ledger_exact"] is True


# -- standalone / CI ----------------------------------------------------------


def main(argv):
    smoke = "--smoke" in argv
    json_dir = None
    if "--json-dir" in argv:
        position = argv.index("--json-dir") + 1
        if position >= len(argv):
            raise SystemExit("--json-dir requires a directory argument")
        json_dir = argv[position]
    outcome = build_results(smoke=smoke)
    print(build_report(outcome).render())
    json_path = write_json(outcome, json_dir=json_dir)
    print(f"machine-readable results -> {json_path}")
    if not smoke and json_dir is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "e22.txt").write_text(build_report(outcome).render())
    check_bars(outcome)
    pipe = outcome["pipe"]
    scaling = outcome["shard_scaling"]
    gate = (f"{scaling['scaling_speedup']:.2f}x >= {outcome['bar']}x"
            if outcome["bar_gated"]
            else f"{scaling['scaling_speedup']:.2f}x (informational on a "
                 f"{scaling['cpu_count']}-core host)")
    print(f"OK: pipe efficiency {pipe['pipe_efficiency']:.2f} "
          f"(boundary {pipe['boundary_us_per_batch']:.0f} us/batch, "
          f"interned {pipe['interned_boundary_us_per_batch']:.0f}), "
          f"{scaling['shards']}-shard scaling {gate}, restore "
          f"{outcome['failover']['restore_ms']:.0f} ms "
          f"({outcome['mode']} mode)")


if __name__ == "__main__":
    main(sys.argv[1:])
