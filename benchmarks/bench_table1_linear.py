"""E1 — Table 1 row "Linear Queries".

Regenerates the linear-queries comparison: PMW's max error grows only
polylogarithmically in k while per-query Laplace under advanced composition
degrades like sqrt(k). Also times one PMW-linear round.
"""

import numpy as np
import pytest

from repro.core.pmw_linear import PrivateMWLinear
from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.experiments.table1 import run_linear_row
from repro.losses.families import random_halfspace_queries


@pytest.fixture(scope="module")
def report():
    return run_linear_row(trials=3, rng=0)


def test_e1_report(report, save_report):
    text = save_report(report)
    # The regenerated row must show the paper's two shapes.
    assert "pmw error vs k" in text
    assert text.count("OK") >= 1


def test_e1_pmw_beats_composition_at_large_k(report):
    rows = report.sections[0].splitlines()[3:]
    last = rows[-1].split("|")
    pmw = float(last[1].split("±")[0])
    laplace = float(last[2].split("±")[0])
    assert pmw < laplace, "PMW must win at the largest k"


def test_bench_pmw_linear_round(benchmark, report, save_report):
    save_report(report)
    universe = signed_cube(6)
    rng = np.random.default_rng(0)
    skew = rng.dirichlet(np.full(universe.size, 0.4))
    dataset = Dataset(universe, rng.choice(universe.size, size=20_000,
                                           p=skew))
    queries = random_halfspace_queries(universe, 200, rng=1)
    mechanism = PrivateMWLinear(dataset, alpha=0.1, epsilon=1.0, delta=1e-6,
                                schedule="calibrated", max_updates=24, rng=2)
    stream = iter(queries * 500)

    def one_round():
        query = next(stream)
        if mechanism.halted:  # past the budget: serve from the hypothesis
            return mechanism.hypothesis.dot(query.table)
        return mechanism.answer(query)

    benchmark(one_round)
