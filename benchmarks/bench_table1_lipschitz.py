"""E2 — Table 1 row "Lipschitz, d-Bounded".

Regenerates the sqrt(d) single-query oracle shape (BST14 stand-in) and the
achievable-alpha-vs-n decay of the k-query mechanism (Theorem 4.2). Also
times one full PMW-CM round on the logistic workload.
"""

import pytest

from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.table1 import run_lipschitz_row
from repro.experiments.workloads import classification_workload
from repro.core.pmw_cm import PrivateMWConvex
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_lipschitz_row(trials=2, rng=0)


def test_e2_report(report, save_report):
    text = save_report(report)
    assert "oracle error vs d" in text


def test_e2_alpha_improves_with_n(report):
    """The last table column: achieved alpha at the largest n must be at
    least as good as at the smallest n."""
    table = next(s for s in report.sections if "smallest achieved" in s)
    rows = [line.split("|") for line in table.splitlines()[3:]]
    first_alpha = float(rows[0][1].split("±")[0])
    last_alpha = float(rows[-1][1].split("±")[0])
    assert last_alpha <= first_alpha


def test_bench_pmw_cm_round(benchmark, report, save_report):
    save_report(report)
    workload = classification_workload(
        n=30_000, d=4, k=200, family_builder=random_logistic_family,
        universe_size=150, rng=0,
    )
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)
    mechanism = PrivateMWConvex(
        workload.dataset, oracle, scale=workload.scale, alpha=0.25,
        epsilon=1.0, delta=1e-6, schedule="calibrated", max_updates=100,
        solver_steps=200, rng=1,
    )
    stream = iter(workload.losses * 200)

    def one_round():
        loss = next(stream)
        if mechanism.halted:
            return mechanism.answer_from_hypothesis(loss)
        return mechanism.answer(loss)

    benchmark(one_round)
