"""E4 — Table 1 row "Strongly Convex" (Theorem 4.6).

Regenerates the sigma- and n-scaling of the strongly convex oracle and the
k-query mechanism on a ridge family. Also times one output-perturbation
call (dominated by the exact trust-region solve).
"""

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.experiments.table1 import run_strongly_convex_row
from repro.losses.families import random_ridge_family


@pytest.fixture(scope="module")
def report():
    return run_strongly_convex_row(trials=2, rng=0)


def test_e4_report(report, save_report):
    text = save_report(report)
    assert "sigma" in text


def test_e4_error_improves_with_sigma(report):
    summary = next(s for s in report.sections if "error-vs-sigma" in s)
    slope = float(summary.split("slope:")[1].split("(")[0])
    assert slope < 0.0, "error must decrease as strong convexity grows"


def test_e4_fast_n_decay(report):
    summary = next(s for s in report.sections if "error-vs-n" in s)
    slope = float(summary.split("slope:")[1].split("(")[0])
    assert slope < -1.0, ("strongly convex oracle must decay faster than "
                          "the Lipschitz row's ~n^-1")


def test_bench_output_perturbation_call(benchmark, report, save_report):
    save_report(report)
    task = make_classification_dataset(n=20_000, d=4, universe_size=150,
                                       rng=0)
    loss = random_ridge_family(task.universe, 1, lam=1.0, rng=1)[0]
    oracle = OutputPerturbationOracle(epsilon=0.3, delta=1e-6)

    benchmark(lambda: oracle.answer(loss, task.dataset, rng=2))
