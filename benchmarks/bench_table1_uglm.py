"""E3 — Table 1 row "UGLM" (Theorem 4.4).

Regenerates the dimension-independence contrast: the generic Lipschitz
oracle's error grows ~sqrt(d) while the JT14-style GLM-projection oracle
stays flat. Also times one GLM-oracle call.
"""

import pytest

from repro.data.synthetic import make_classification_dataset
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.experiments.table1 import run_uglm_row
from repro.losses.families import random_logistic_family


@pytest.fixture(scope="module")
def report():
    return run_uglm_row(trials=2, rng=0)


def test_e3_report(report, save_report):
    text = save_report(report)
    assert "dimension-independent" in text


def test_e3_glm_flat_generic_grows(report):
    summary = next(s for s in report.sections if "slopes" in s)
    generic_slope = float(summary.split("generic")[1].split("(")[0])
    glm_slope = float(summary.split("GLM")[1].split("(")[0])
    assert generic_slope > 0.15, "generic oracle must degrade with d"
    # The row's claim is relative: the UGLM oracle must not inherit the
    # generic oracle's growth in d.
    assert glm_slope < generic_slope - 0.2
    assert glm_slope < 0.25, "GLM oracle must stay ~flat in d"


def test_bench_glm_oracle_call(benchmark, report, save_report):
    save_report(report)
    task = make_classification_dataset(n=20_000, d=16, universe_size=150,
                                       rng=0)
    loss = random_logistic_family(task.universe, 1, rng=1)[0]
    oracle = GLMProjectionOracle(epsilon=0.3, delta=1e-6, projection_dim=6,
                                 steps=40)

    benchmark(lambda: oracle.answer(loss, task.dataset, rng=2))
