"""E6 — update count vs Figure 3's budget T = 64 S^2 log|X| / alpha^2.

Counts realized MW updates under a long adversarial stream and checks they
stay within the paper's worst-case budget. Also times the MW update step
itself (the O(|X|) component of the round).
"""

import numpy as np
import pytest

from repro.core.update import dual_certificate, mw_step
from repro.data.builders import signed_cube
from repro.data.histogram import Histogram
from repro.experiments.diagnostics import run_update_count
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def report():
    return run_update_count(rng=0)


def test_e6_report(report, save_report):
    text = save_report(report)
    assert "within the paper budget: True" in text


def test_e6_measured_below_paper_budget(report):
    table = report.sections[0]
    for line in table.splitlines()[3:]:
        cells = [c.strip() for c in line.split("|")]
        measured, paper = int(cells[1]), int(cells[3])
        assert measured <= paper


def test_bench_mw_update_step(benchmark, report, save_report):
    save_report(report)
    universe = signed_cube(10)  # |X| = 1024
    loss = QuadraticLoss(L2Ball(10))
    rng = np.random.default_rng(0)
    hypothesis = Histogram(universe,
                           rng.dirichlet(np.full(universe.size, 0.5)))
    theta = loss.domain.random_point(rng)
    certificate = dual_certificate(loss, hypothesis, theta)

    benchmark(lambda: mw_step(hypothesis, certificate, eta=0.1,
                              scale=loss.scale_bound()))
