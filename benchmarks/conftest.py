"""Shared helpers for the benchmark suite.

Each bench file regenerates one experiment from DESIGN.md's per-experiment
index (the paper's Table 1 plus the theorem-level claims), prints its
paper-vs-measured report, and archives it under ``benchmarks/results/``.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see reports inline;
the archived text files are written either way.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    """Persist an ExperimentReport to benchmarks/results/ and print it.

    Idempotent per report name, so both the report-assertion tests and the
    timing tests can request a save without duplicating output.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    saved: dict[str, str] = {}

    def _save(report) -> str:
        safe_name = report.name.split()[0].lower().replace("/", "-")
        if safe_name in saved:
            return saved[safe_name]
        text = report.render()
        (RESULTS_DIR / f"{safe_name}.txt").write_text(text)
        print("\n" + text)
        saved[safe_name] = text
        return text

    return _save
