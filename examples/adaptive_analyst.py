"""An adaptive adversary plays the sample-accuracy game (Figure 1).

Definition 2.4 requires accuracy against analysts whose next query may
depend on all previous answers. This example runs the strongest inspection
adversary in the library — one that always submits the pool query the
current public hypothesis answers worst — and shows that (a) accuracy holds
anyway, and (b) the answers generalize to the population the data was
sampled from (the Section 1.3 transfer phenomenon).

Run:  python examples/adaptive_analyst.py
"""

import numpy as np

from repro import PrivateMWConvex, NoisyGradientDescentOracle
from repro.adaptive import WorstCaseAnalyst, play_accuracy_game
from repro.adaptive.generalization import population_error
from repro.data import Dataset, Histogram
from repro.data.builders import labeled_universe, random_ball_net
from repro.losses import family_scale_bound, random_logistic_family
from repro.optimize import minimize_loss


def main() -> None:
    # A known population over a labeled universe; the dataset is an iid
    # sample from it.
    rng = np.random.default_rng(0)
    base = random_ball_net(3, 150, rng=rng)
    universe = labeled_universe(base, (-1.0, 1.0))
    population = Histogram(universe,
                           rng.dirichlet(np.full(universe.size, 0.3)))
    dataset = Dataset(universe, rng.choice(
        universe.size, size=40_000, p=population.weights))
    sample = dataset.histogram()

    pool = random_logistic_family(universe, 12, rng=1)
    scale = family_scale_bound(pool)

    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)
    mechanism = PrivateMWConvex(
        dataset, oracle, scale=scale, alpha=0.25, epsilon=1.0, delta=1e-6,
        schedule="calibrated", max_updates=20, rng=2,
    )

    # The adversary inspects the public hypothesis each round and submits
    # the pool query it currently answers worst.
    analyst = WorstCaseAnalyst(pool, sample)
    result = play_accuracy_game(mechanism, analyst, k=24)

    print(f"adaptive game: {result.queries_played} rounds, "
          f"{result.updates_performed} MW updates, "
          f"halted early: {result.halted_early}")
    print(f"max sample excess risk:  {result.max_error:.4f} "
          f"(target alpha = 0.25)")

    # Generalization: score the final hypothesis' answers on the POPULATION.
    pop_errors = []
    for loss in pool:
        theta = minimize_loss(loss, mechanism.hypothesis).theta
        pop_errors.append(population_error(loss, population, theta))
    print(f"max population excess risk: {max(pop_errors):.4f} "
          f"(Sec 1.3: DP answers transfer to the population)")

    print("\nper-round log (round, query, error, triggered update):")
    for record in result.records:
        flag = "update" if record.from_update else "  -   "
        print(f"  {record.query_index:3d}  {record.loss_name:14s} "
              f"{record.error:.4f}  {flag}")


if __name__ == "__main__":
    main()
