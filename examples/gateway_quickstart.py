"""Concurrent serving through the request gateway, end to end.

Four analysts flood bursts of CM queries at their own sessions while a
`ServiceGateway` coalesces each backlog into engine-batched rounds,
admission control sheds an over-deep queue, and the metrics registry
reports what happened. Run:

    PYTHONPATH=src python examples/gateway_quickstart.py
"""

import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import PMWService, make_classification_dataset
from repro import random_squared_family
from repro.exceptions import Overloaded

ANALYSTS = 4
QUERIES_PER_ANALYST = 8


def main():
    task = make_classification_dataset(n=2_000, d=4, universe_size=500,
                                       rng=0)
    service = PMWService(task.dataset, rng=1)
    losses = random_squared_family(task.universe, QUERIES_PER_ANALYST,
                                   rng=2)
    scale = 2.0 * max(loss.scale_bound() for loss in losses)
    sessions = [
        service.open_session(
            "pmw-convex", analyst=f"analyst-{index}", oracle="non-private",
            scale=scale, alpha=0.4, epsilon=2.0, delta=1e-6, max_updates=4,
            solver_steps=40)
        for index in range(ANALYSTS)
    ]

    # The gateway: 2 workers over per-session FIFO queues. Requests to
    # different sessions run in parallel; within a session they stay
    # strictly ordered, and queued backlogs coalesce into single
    # engine-prewarmed batches.
    with service.gateway(workers=2, max_queue_depth=QUERIES_PER_ANALYST,
                         max_coalesce=QUERIES_PER_ANALYST) as gateway:
        futures = []
        lock = threading.Lock()

        def flood(sid):
            mine = [gateway.submit_async(sid, loss) for loss in losses]
            with lock:
                futures.extend((sid, future) for future in mine)

        threads = [threading.Thread(target=flood, args=(sid,))
                   for sid in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [(sid, future.result(timeout=120))
                   for sid, future in futures]

        # Overload one queue past its depth bound: admission control
        # sheds with a typed error before touching any mechanism state.
        shed = 0
        for _ in range(3 * QUERIES_PER_ANALYST):
            try:
                gateway.submit_async(sessions[0], losses[0])
            except Overloaded:
                shed += 1
        gateway.drain()

        print(f"served {len(results)} answers across {ANALYSTS} sessions")
        paid = sum(1 for _, r in results if not r.free)
        print(f"paid mechanism rounds: {paid}; "
              f"free (cache/hypothesis/no-update): {len(results) - paid}")
        print(f"admission control shed {shed} burst submissions "
              f"(zero privacy cost: they never reached a mechanism)")
        print()
        print(gateway.metrics.describe())

    print()
    print(service.budget_report())


if __name__ == "__main__":
    main()
