"""Scaling to hundreds of queries: the log(k) phenomenon, live.

The paper's point is that the data requirement grows with log(k), not
sqrt(k): a fixed dataset and budget can absorb an enormous query stream.
This example streams 500 distinct logistic-regression queries (Theorem 4.4's
UGLM family, answered with the JT14-style dimension-independent oracle)
through one mechanism and tracks how the error and the update rate evolve —
updates concentrate early, then the hypothesis answers nearly everything.

Run:  python examples/many_logistic_queries.py
"""

import numpy as np

from repro import (
    GLMProjectionOracle,
    PrivateMWConvex,
    answer_error,
    family_scale_bound,
    make_classification_dataset,
    random_logistic_family,
)


def main() -> None:
    task = make_classification_dataset(n=80_000, d=4, universe_size=200,
                                       rng=0)
    k = 500
    losses = random_logistic_family(task.universe, k, rng=1)
    scale = family_scale_bound(losses)

    oracle = GLMProjectionOracle(epsilon=1.0, delta=1e-6, projection_dim=4,
                                 steps=40)
    mechanism = PrivateMWConvex(
        task.dataset, oracle, scale=scale, alpha=0.25, epsilon=1.0,
        delta=1e-6, schedule="calibrated", max_updates=30, rng=2,
    )

    data = task.dataset.histogram()
    block = 100
    print(f"streaming {k} logistic queries "
          f"(block-wise report every {block}):\n")
    print(f"{'queries':>8s} {'updates':>8s} {'block max err':>14s} "
          f"{'block mean err':>15s}")
    block_errors = []
    for j, loss in enumerate(losses):
        if mechanism.halted:
            answer = mechanism.answer_from_hypothesis(loss)
        else:
            answer = mechanism.answer(loss)
        block_errors.append(answer_error(loss, data, answer.theta,
                                         solver_steps=250))
        if (j + 1) % block == 0:
            errors = np.array(block_errors)
            print(f"{j + 1:8d} {mechanism.updates_performed:8d} "
                  f"{errors.max():14.4f} {errors.mean():15.4f}")
            block_errors = []

    print(f"\ntotal MW updates: {mechanism.updates_performed} / {k} "
          f"queries — the budget is spent on a vanishing fraction of the "
          f"stream, which is why error grows only ~log(k).")
    print(f"privacy guarantee: {mechanism.privacy_guarantee()}")


if __name__ == "__main__":
    main()
