"""Offline release: every 2-way marginal AND a CM workload, one budget.

The offline variant (Section 1.2) knows the whole workload upfront and
spends each round on the globally worst-answered query via the exponential
mechanism. This example releases, from one dataset and one privacy budget:

1. all 2-way marginal queries of a binary-cube dataset — via MWEM (the
   [HLM12] linear-query baseline);
2. a family of convex-minimization queries — via the offline PMW-CM
   variant (this paper);
3. a synthetic dataset sampled from the CM hypothesis, scored on held-out
   queries.

Run:  python examples/offline_marginal_release.py
"""

import numpy as np

from repro import MWEM, OfflineMWConvex, NoisyGradientDescentOracle
from repro.core.accuracy import answer_error
from repro.data import Dataset
from repro.data.builders import signed_cube
from repro.losses import (
    family_scale_bound,
    marginal_queries,
    random_quadratic_family,
)
from repro.optimize import minimize_loss


def main() -> None:
    universe = signed_cube(6)  # |X| = 64, unit-norm points
    rng = np.random.default_rng(0)
    skew = rng.dirichlet(np.full(universe.size, 0.15))
    dataset = Dataset(universe, rng.choice(universe.size, size=80_000,
                                           p=skew))
    data = dataset.histogram()
    print(f"dataset: n={dataset.n} over {universe.name}")

    # --- 1. all 2-way marginals via MWEM ----------------------------------
    marginals = marginal_queries(universe, width=2)
    print(f"\nreleasing {len(marginals)} two-way marginals via MWEM ...")
    mwem = MWEM(dataset, marginals, rounds=15, epsilon=0.5, rng=1)
    result = mwem.run()
    print(f"  max marginal error: {mwem.max_error(result):.4f} "
          f"(pure eps = 0.5)")

    # --- 2. a CM workload via offline PMW-CM -------------------------------
    cm_losses = random_quadratic_family(universe, 20, rng=2)
    scale = family_scale_bound(cm_losses)
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)
    print(f"\nreleasing {len(cm_losses)} quadratic CM queries via offline "
          f"PMW-CM (S={scale:g}) ...")
    offline = OfflineMWConvex(
        dataset, cm_losses, oracle, scale=scale, rounds=10,
        epsilon=0.5, delta=1e-6, rng=3,
    )
    cm_result = offline.run()
    errors = [
        answer_error(loss, data, theta)
        for loss, theta in zip(cm_losses, cm_result.thetas)
    ]
    print(f"  max CM excess risk: {max(errors):.4f}")
    print(f"  rounds selected queries: "
          f"{[cm_losses[i].name for i in cm_result.selected[:5]]} ...")

    # --- 3. synthetic data from the CM hypothesis --------------------------
    synthetic = Dataset(universe,
                        cm_result.hypothesis.sample_indices(20_000, rng=4))
    holdout = random_quadratic_family(universe, 5, rng=99)
    # Note: for rotation-family quadratics the excess risk is
    # (1/2)||P_j (mean_synth - mean_data)||^2-shaped, and orthogonal P_j
    # preserve norms — so held-out errors coincide whenever the ball
    # constraint is slack. That equality is correct, not a bug.
    print(f"\nscoring a 20k-row synthetic dataset on {len(holdout)} "
          f"held-out CM queries:")
    for loss in holdout:
        theta = minimize_loss(loss, synthetic.histogram()).theta
        print(f"  {loss.name:14s} excess risk "
              f"{answer_error(loss, data, theta):.4f}")

    total_epsilon = 0.5 + 0.5
    print(f"\ntotal budget spent across both releases: eps = {total_epsilon}"
          f" (basic composition of the two mechanisms), delta = 1e-6")


if __name__ == "__main__":
    main()
