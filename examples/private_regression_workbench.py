"""A private regression workbench: many analysts, one dataset, one budget.

Scenario from the paper's introduction: a sensitive dataset is analyzed
repeatedly — different analysts fit different regressions (squared loss,
Huber, ridge) in different feature bases. The workbench answers all of them
under one privacy budget and compares against the straightforward
alternative (independent oracle calls with the budget split by advanced
composition), reproducing the paper's headline comparison on a realistic
mixed workload.

Run:  python examples/private_regression_workbench.py
"""

import numpy as np

from repro import (
    CompositionBaseline,
    NoisyGradientDescentOracle,
    PrivateMWConvex,
    answer_error,
    family_scale_bound,
    make_regression_dataset,
    random_ridge_family,
    random_squared_family,
)
from repro.losses.hinge import HuberLoss
from repro.optimize.projections import L2Ball


def build_workload(universe, rng):
    """A mixed regression workload: squared + Huber + ridge queries."""
    losses = []
    losses += random_squared_family(universe, 15, rng=rng)
    losses += [HuberLoss(L2Ball(universe.dim), delta=0.5,
                         name=f"huber-{i}") for i in range(5)]
    losses += random_ridge_family(universe, 10, lam=0.5, rng=rng)
    return losses


def main() -> None:
    task = make_regression_dataset(n=60_000, d=4, universe_size=200,
                                   label_levels=9, noise=0.1, rng=0)
    print(task.universe.describe())
    losses = build_workload(task.universe, rng=1)
    scale = family_scale_bound(losses)
    k = len(losses)
    print(f"workload: {k} regression queries "
          f"(squared / Huber / ridge), S = {scale:g}\n")

    data = task.dataset.histogram()
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)

    # --- the paper's mechanism -------------------------------------------
    mechanism = PrivateMWConvex(
        task.dataset, oracle, scale=scale, alpha=0.25, epsilon=1.0,
        delta=1e-6, schedule="calibrated", max_updates=25, rng=2,
    )
    pmw_answers = mechanism.answer_all(losses, on_halt="hypothesis")
    pmw_errors = np.array([
        answer_error(loss, data, a.theta)
        for loss, a in zip(losses, pmw_answers)
    ])

    # --- the composition baseline -----------------------------------------
    baseline = CompositionBaseline(task.dataset, oracle, planned_queries=k,
                                   epsilon=1.0, delta=1e-6, rng=3)
    comp_answers = baseline.answer_all(losses)
    comp_errors = np.array([
        answer_error(loss, data, a.theta)
        for loss, a in zip(losses, comp_answers)
    ])

    print(f"{'mechanism':24s} {'max err':>9s} {'mean err':>9s} "
          f"{'oracle calls':>13s}")
    print(f"{'PMW (this paper)':24s} {pmw_errors.max():9.4f} "
          f"{pmw_errors.mean():9.4f} {mechanism.updates_performed:13d}")
    print(f"{'composition baseline':24s} {comp_errors.max():9.4f} "
          f"{comp_errors.mean():9.4f} {k:13d}")
    print("\nPMW pays oracle noise only on its updates; the rest of the "
          "workload is served from the public hypothesis for free.")

    # The hypothesis doubles as a releasable synthetic dataset (Sec 4.3).
    synthetic = mechanism.synthetic_dataset(10_000, rng=4)
    sample_loss = losses[0]
    theta_synth = sample_loss.exact_minimizer(synthetic.histogram())
    if theta_synth is None:
        from repro import minimize_loss
        theta_synth = minimize_loss(sample_loss, synthetic.histogram()).theta
    print(f"\nsynthetic-data answer to query {sample_loss.name!r}: "
          f"excess risk {answer_error(sample_loss, data, theta_synth):.4f}")


if __name__ == "__main__":
    main()
