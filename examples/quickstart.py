"""Quickstart: answer many convex-minimization queries privately.

Builds a synthetic classification dataset, constructs a family of logistic
regression queries (each in its own rotated feature basis), and answers all
of them with the paper's mechanism under a single (epsilon, delta) budget —
then shows that every answer's excess empirical risk is within the target.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    NoisyGradientDescentOracle,
    PrivateMWConvex,
    answer_error,
    family_scale_bound,
    make_classification_dataset,
    random_logistic_family,
)


def main() -> None:
    # 1. A sensitive dataset: 50,000 labeled points in the unit ball,
    #    snapped onto a finite universe (the paper's data model).
    task = make_classification_dataset(n=50_000, d=4, universe_size=200,
                                       rng=0)
    print(task.universe.describe())

    # 2. A family of k distinct CM queries: logistic regression in k
    #    random feature bases.
    k = 40
    losses = random_logistic_family(task.universe, k, rng=1)
    scale = family_scale_bound(losses)
    print(f"{k} logistic queries, family scale S = {scale:g}")

    # 3. The mechanism: Figure 3 with a BST14-style noisy-GD oracle,
    #    total budget (epsilon, delta) = (1, 1e-6).
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=40)
    mechanism = PrivateMWConvex(
        task.dataset, oracle, scale=scale, alpha=0.25,
        epsilon=1.0, delta=1e-6, schedule="calibrated", max_updates=25,
        rng=2,
    )
    print(mechanism.config.describe())

    # 4. Answer the whole stream.
    answers = mechanism.answer_all(losses, on_halt="hypothesis")

    # 5. Score every answer (excess empirical risk, Definition 2.2).
    data = task.dataset.histogram()
    errors = np.array([
        answer_error(loss, data, answer.theta)
        for loss, answer in zip(losses, answers)
    ])
    updates = mechanism.updates_performed
    print(f"\nanswered {k} queries with {updates} MW updates "
          f"({k - updates} came free from the public hypothesis)")
    print(f"max excess risk:  {errors.max():.4f}  (target alpha = 0.25)")
    print(f"mean excess risk: {errors.mean():.4f}")
    print(f"privacy guarantee: {mechanism.privacy_guarantee()}")


if __name__ == "__main__":
    main()
