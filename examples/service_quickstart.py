"""Serving-layer quickstart: sessions, budget ledger, and answer cache.

Stands up a :class:`PMWService` over one private dataset, opens sessions
for two analysts (a CM-query session and a linear-query session), serves a
duplicate-heavy batch through the planner, then simulates a crash and
rebuilds the service from its budget ledger — showing that the resumed
privacy totals are bit-identical to the pre-crash ones.

Run:  python examples/service_quickstart.py
"""

import os
import tempfile

from repro import PMWService, make_classification_dataset
from repro.losses.families import (
    random_linear_queries,
    random_logistic_family,
)


def main() -> None:
    # 1. One private dataset behind the service; the ledger journals every
    #    budget spend durably before any answer is released.
    task = make_classification_dataset(n=20_000, d=3, universe_size=120,
                                       rng=0)
    workdir = tempfile.mkdtemp(prefix="repro-serve-")
    ledger_path = os.path.join(workdir, "budget.jsonl")
    service = PMWService(task.dataset, ledger_path=ledger_path, rng=1)

    # 2. Two tenants: alice asks convex-minimization queries, bob asks
    #    linear (counting) queries. Each session has its own mechanism,
    #    budget, and stream.
    alice = service.open_session(
        "pmw-convex", analyst="alice", oracle="noisy-sgd",
        scale=2.0, alpha=0.25, epsilon=1.0, delta=1e-6,
        schedule="calibrated", max_updates=15, solver_steps=120,
    )
    bob = service.open_session(
        "pmw-linear", analyst="bob", alpha=0.1, epsilon=0.5, delta=1e-6,
        max_updates=10,
    )
    print(f"sessions open: {service.session_ids}")

    # 3. A duplicate-heavy workload: 6 distinct logistic queries asked 5
    #    times each (dashboards do this), plus bob's counting queries.
    losses = random_logistic_family(task.universe, 6, rng=2)
    queries = random_linear_queries(task.universe, 8, rng=3)
    results = service.answer_batch({
        alice: losses * 5,
        bob: queries + queries[:4],
    })
    by_source: dict[str, int] = {}
    for result in results[alice] + results[bob]:
        by_source[result.source] = by_source.get(result.source, 0) + 1
    print(f"answers by source: {by_source}")
    print(service.budget_report())

    # 4. The crash. Nothing survives but the journal on disk.
    pre_crash = {
        sid: service.session(sid).accountant.total_basic()
        for sid in service.session_ids
    }
    del service

    # 5. Restart: rebuild from the ledger; budget totals are exact.
    resumed = PMWService.restore(task.dataset, ledger_path=ledger_path)
    print("\nafter restart from ledger:")
    for sid, before in pre_crash.items():
        after = resumed.session(sid).accountant.total_basic()
        match = "exact" if after == before else "MISMATCH"
        print(f"  {sid}: eps={after.epsilon:g} delta={after.delta:g} "
              f"({match})")

    # 6. The resumed service keeps serving — and keeps journaling. A
    #    ledger-only resume restarts the sparse-vector interaction, so the
    #    first mechanism round also charges (and journals) that restarted
    #    interaction's lifetime budget — honest accounting, not a leak.
    follow_up = resumed.submit(alice, losses[0])
    print(f"follow-up answer source={follow_up.source} "
          f"eps_spent={follow_up.epsilon_spent:g} "
          f"(includes the restarted sparse vector's budget)")
    print(f"ledger at {ledger_path}")


if __name__ == "__main__":
    main()
