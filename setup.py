"""Legacy setup shim for environments without PEP 517 wheel support.

All project metadata lives in ``pyproject.toml``; this file only exists so
``python setup.py``-era tooling can still install the package.
"""
from setuptools import setup

setup()
