"""repro — reproduction of "Private Multiplicative Weights Beyond Linear
Queries" (Jonathan Ullman, PODS 2015).

The library implements the paper's mechanism — online private
multiplicative weights for convex-minimization (CM) queries — together
with every substrate it depends on: finite-universe data handling, basic DP
mechanisms and composition, the online sparse-vector algorithm, a convex
loss library, single-query DP-ERM oracles, and the linear-query baselines
it extends (PMW, MWEM).

Quickstart::

    from repro import (
        PrivateMWConvex, NoisyGradientDescentOracle,
        make_classification_dataset, random_logistic_family,
    )

    task = make_classification_dataset(n=50_000, d=4, rng=0)
    losses = random_logistic_family(task.universe, k=100, rng=1)
    oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6)
    mechanism = PrivateMWConvex(
        task.dataset, oracle, scale=2.0, alpha=0.2,
        epsilon=1.0, delta=1e-6, rng=2,
    )
    answers = mechanism.answer_all(losses)

Or through the serving layer (sessions, budget ledger, answer cache)::

    from repro import PMWService

    service = PMWService(task.dataset, ledger_path="budget.jsonl")
    sid = service.open_session("pmw-convex", scale=2.0, alpha=0.2,
                               epsilon=1.0, delta=1e-6)
    results = service.answer_batch((sid, losses))

See README.md for the subsystem map and installation; the benchmark suite
under ``benchmarks/`` regenerates the paper-vs-measured record.
"""

from repro.core import (
    MWEM,
    CompositionBaseline,
    OfflineMWConvex,
    PMWConfig,
    PrivateMWConvex,
    PrivateMWLinear,
    answer_error,
    database_error,
    dual_certificate,
    theory,
)
from repro.data import (
    Dataset,
    Histogram,
    LogHistogram,
    ShardedHistogram,
    Universe,
    binary_cube,
    labeled_universe,
    make_classification_dataset,
    make_regression_dataset,
    random_ball_net,
    signed_cube,
)
from repro.dp import (
    PrivacyAccountant,
    SparseVector,
    advanced_composition,
    basic_composition,
    exponential_mechanism,
    gaussian_mechanism,
    laplace_mechanism,
)
from repro.erm import (
    ExponentialMechanismOracle,
    GLMProjectionOracle,
    NoisyGradientDescentOracle,
    NonPrivateOracle,
    ObjectivePerturbationOracle,
    OutputPerturbationOracle,
)
from repro.losses import (
    HingeLoss,
    HuberLoss,
    LinearQuery,
    LinearQueryAsCM,
    LogisticLoss,
    LossFunction,
    QuadraticLoss,
    RidgeRegularized,
    SquaredLoss,
    family_scale_bound,
    random_halfspace_queries,
    random_linear_queries,
    random_logistic_family,
    random_quadratic_family,
    random_ridge_family,
    random_squared_family,
)
from repro.engine import (
    batch_answers,
    batch_data_minima,
    batch_loss_on,
    compile_batch,
)
from repro.optimize import L2Ball, minimize_loss
from repro.serve import (
    AnswerCache,
    BudgetLedger,
    Checkpointer,
    GatewayMetrics,
    MechanismRegistry,
    PMWService,
    ServeResult,
    ServiceGateway,
    Session,
    default_registry,
)

__version__ = "1.2.0"

__all__ = [
    # core
    "PrivateMWConvex", "OfflineMWConvex", "PrivateMWLinear", "MWEM",
    "CompositionBaseline",
    "PMWConfig", "answer_error", "database_error", "dual_certificate",
    "theory",
    # data
    "Universe", "Histogram", "LogHistogram", "ShardedHistogram", "Dataset",
    "binary_cube",
    "signed_cube",
    "random_ball_net", "labeled_universe", "make_regression_dataset",
    "make_classification_dataset",
    # dp
    "SparseVector", "PrivacyAccountant", "laplace_mechanism",
    "gaussian_mechanism", "exponential_mechanism", "basic_composition",
    "advanced_composition",
    # erm
    "NonPrivateOracle", "NoisyGradientDescentOracle",
    "OutputPerturbationOracle", "ObjectivePerturbationOracle",
    "GLMProjectionOracle", "ExponentialMechanismOracle",
    # losses
    "LossFunction", "LinearQuery", "LinearQueryAsCM", "SquaredLoss",
    "LogisticLoss", "HingeLoss", "HuberLoss", "QuadraticLoss",
    "RidgeRegularized", "family_scale_bound", "random_linear_queries",
    "random_halfspace_queries", "random_logistic_family",
    "random_squared_family", "random_quadratic_family",
    "random_ridge_family",
    # engine
    "compile_batch", "batch_answers", "batch_loss_on", "batch_data_minima",
    # optimize
    "L2Ball", "minimize_loss",
    # serve
    "PMWService", "ServiceGateway", "GatewayMetrics", "Session",
    "ServeResult", "MechanismRegistry", "default_registry", "BudgetLedger",
    "AnswerCache", "Checkpointer",
]
