"""Adaptive data analysis: analysts, the accuracy game, generalization.

The paper defines accuracy via a game against an adaptive adversary
(Figure 1 / Definition 2.4) and connects DP to generalization error in
adaptive data analysis (Section 1.3, the [DFH+15]/[BSSU15] line). This
package provides analyst strategies (static, adaptive worst-case), a
runner for the sample-accuracy game, and population-vs-sample error
measurement for the generalization experiments.
"""

from repro.adaptive.analysts import (
    Analyst,
    AnswerDrivenAnalyst,
    StaticAnalyst,
    WorstCaseAnalyst,
    CyclingAnalyst,
)
from repro.adaptive.game import GameRecord, GameResult, play_accuracy_game
from repro.adaptive.generalization import (
    generalization_gap,
    population_error,
)

__all__ = [
    "Analyst",
    "AnswerDrivenAnalyst",
    "StaticAnalyst",
    "WorstCaseAnalyst",
    "CyclingAnalyst",
    "play_accuracy_game",
    "GameResult",
    "GameRecord",
    "population_error",
    "generalization_gap",
]
