"""Analyst (adversary) strategies for the sample-accuracy game.

Definition 2.4 quantifies over *every* adversary ``B`` that adaptively
chooses the loss stream. Three concrete strategies:

- :class:`StaticAnalyst` — a fixed, pre-committed query sequence (the
  offline case of Section 1.2).
- :class:`CyclingAnalyst` — cycles a pool forever (stress-tests repeated
  queries, which must stay cheap: repeats of a well-answered query must
  come back ``bottom``).
- :class:`WorstCaseAnalyst` — adaptively submits, from a candidate pool,
  the loss on which the *current public hypothesis* errs most against the
  analyst's own (public-information) estimate of the data. This is the
  update-maximizing adversary used by the E6 update-count experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.accuracy import database_error
from repro.data.histogram import Histogram
from repro.exceptions import ValidationError
from repro.losses.base import LossFunction


class Analyst(ABC):
    """A (possibly adaptive) loss-stream strategy."""

    @abstractmethod
    def next_loss(self, hypothesis: Histogram | None) -> LossFunction:
        """Choose the next query, possibly from the public hypothesis."""

    def observe(self, loss: LossFunction, theta: np.ndarray) -> None:
        """Receive the mechanism's answer (default: ignore it)."""


class StaticAnalyst(Analyst):
    """Submits a fixed sequence of losses in order."""

    def __init__(self, losses) -> None:
        self._losses = list(losses)
        if not self._losses:
            raise ValidationError("losses must be non-empty")
        self._cursor = 0

    def next_loss(self, hypothesis: Histogram | None) -> LossFunction:
        if self._cursor >= len(self._losses):
            raise ValidationError("static analyst has no queries left")
        loss = self._losses[self._cursor]
        self._cursor += 1
        return loss

    @property
    def remaining(self) -> int:
        """Queries not yet submitted."""
        return len(self._losses) - self._cursor


class CyclingAnalyst(Analyst):
    """Cycles a pool of losses indefinitely."""

    def __init__(self, losses) -> None:
        self._losses = list(losses)
        if not self._losses:
            raise ValidationError("losses must be non-empty")
        self._cursor = 0

    def next_loss(self, hypothesis: Histogram | None) -> LossFunction:
        loss = self._losses[self._cursor % len(self._losses)]
        self._cursor += 1
        return loss


class AnswerDrivenAnalyst(Analyst):
    """Constructs brand-new queries from the mechanism's released answers.

    The strongest form of Figure 1 adaptivity: rather than selecting from
    a fixed pool, the analyst *builds* its next loss as a function of the
    previous answer — here, a logistic query in a feature basis whose
    first axis is rotated toward the last released ``theta`` (so each
    query probes the direction the mechanism just revealed). Queries stay
    inside the declared family (1-Lipschitz GLMs over the unit ball), so
    the mechanism's ``S`` calibration remains valid.
    """

    def __init__(self, dim: int, rng=None) -> None:
        from repro.losses.logistic import LogisticLoss
        from repro.optimize.projections import L2Ball
        from repro.utils.rng import as_generator

        self._dim = dim
        self._rng = as_generator(rng)
        self._loss_cls = LogisticLoss
        self._domain = L2Ball(dim)
        self._last_theta: np.ndarray | None = None
        self._count = 0
        self._issued: list = []

    def next_loss(self, hypothesis: Histogram | None) -> LossFunction:
        rotation = self._build_rotation()
        loss = self._loss_cls(self._domain, rotation=rotation,
                              name=f"adaptive-{self._count}")
        self._count += 1
        self._issued.append(loss)
        return loss

    def observe(self, loss: LossFunction, theta: np.ndarray) -> None:
        self._last_theta = np.asarray(theta, dtype=float)

    @property
    def issued(self) -> list:
        """Losses constructed so far (kept alive for scoring)."""
        return list(self._issued)

    def _build_rotation(self) -> np.ndarray:
        """An orthogonal matrix whose first row follows the last answer."""
        gaussian = self._rng.standard_normal((self._dim, self._dim))
        if self._last_theta is not None:
            norm = float(np.linalg.norm(self._last_theta))
            if norm > 1e-9:
                gaussian[0] = self._last_theta / norm * self._dim
        q_matrix, r_matrix = np.linalg.qr(gaussian.T)
        signs = np.sign(np.diag(r_matrix))
        signs[signs == 0.0] = 1.0
        return (q_matrix * signs[None, :]).T


class WorstCaseAnalyst(Analyst):
    """Adaptively picks the pool loss the hypothesis currently answers worst.

    The analyst holds a *reference histogram* standing for its side
    information about the data (in experiments: the true data histogram,
    making this the strongest inspection-based adversary — legitimate in
    the accuracy game, since ``B`` chooses ``D`` itself in Figure 1). Each
    round it scores every pool loss by ``err_l(reference, hypothesis)``
    (Definition 2.3) and submits the argmax, maximizing update pressure.
    """

    def __init__(self, losses, reference: Histogram, *,
                 solver_steps: int = 200) -> None:
        self._losses = list(losses)
        if not self._losses:
            raise ValidationError("losses must be non-empty")
        self._reference = reference
        self._solver_steps = solver_steps

    def next_loss(self, hypothesis: Histogram | None) -> LossFunction:
        if hypothesis is None:
            return self._losses[0]
        errors = [
            database_error(loss, self._reference, hypothesis,
                           solver_steps=self._solver_steps).error
            for loss in self._losses
        ]
        return self._losses[int(np.argmax(errors))]
