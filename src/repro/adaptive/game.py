"""The sample-accuracy game (Figure 1 / Definition 2.4).

``play_accuracy_game`` runs the interaction: the analyst adaptively submits
losses, the mechanism answers, and the referee scores every answer's excess
empirical risk ``err_{l_j}(D, theta_j)`` against the true data. The result
is the realized ``max_j err`` that Definition 2.4 bounds by ``alpha`` with
probability ``1 - beta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adaptive.analysts import Analyst
from repro.core.accuracy import answer_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.histogram import Histogram
from repro.exceptions import MechanismHalted, ValidationError


@dataclass(frozen=True)
class GameRecord:
    """One round of the game."""

    query_index: int
    loss_name: str
    error: float
    from_update: bool


@dataclass(frozen=True)
class GameResult:
    """Outcome of a full game."""

    records: list[GameRecord] = field(default_factory=list)
    halted_early: bool = False
    updates_performed: int = 0

    @property
    def max_error(self) -> float:
        """The quantity Definition 2.4 bounds: ``max_j err_{l_j}(D, theta_j)``."""
        if not self.records:
            return 0.0
        return max(record.error for record in self.records)

    @property
    def mean_error(self) -> float:
        """Average per-query excess risk."""
        if not self.records:
            return 0.0
        return float(np.mean([record.error for record in self.records]))

    @property
    def queries_played(self) -> int:
        """Rounds completed before any early halt."""
        return len(self.records)


def play_accuracy_game(mechanism: PrivateMWConvex, analyst: Analyst, k: int,
                       *, solver_steps: int = 400) -> GameResult:
    """Run ``k`` rounds of Figure 1 between ``mechanism`` and ``analyst``.

    Scoring uses the mechanism's *private* data histogram — the referee is
    omniscient; this is measurement, not release. If the mechanism
    exhausts its update budget the game stops early and the result is
    flagged (``halted_early``), matching Figure 3's halt semantics.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    data: Histogram = mechanism._data_histogram
    records: list[GameRecord] = []
    halted = False
    for j in range(k):
        loss = analyst.next_loss(mechanism.hypothesis)
        try:
            answer = mechanism.answer(loss)
        except MechanismHalted:
            halted = True
            break
        error = answer_error(loss, data, answer.theta,
                             solver_steps=solver_steps)
        records.append(GameRecord(
            query_index=j, loss_name=loss.name, error=error,
            from_update=answer.from_update,
        ))
        analyst.observe(loss, answer.theta)
    return GameResult(records=records, halted_early=halted,
                      updates_performed=mechanism.updates_performed)
