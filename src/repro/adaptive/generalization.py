"""Population generalization error (Section 1.3).

[DFH+15]/[BSSU15]: answers produced by a differentially private mechanism
that are accurate on the *sample* are automatically accurate on the
*population* the sample was drawn from, even under adaptive questioning.
These helpers measure both sides so the E10 benchmark can contrast the DP
mechanism's generalization gap with naive empirical reuse.
"""

from __future__ import annotations

import numpy as np

from repro.core.accuracy import answer_error
from repro.data.histogram import Histogram
from repro.losses.base import LossFunction


def population_error(loss: LossFunction, population: Histogram,
                     theta: np.ndarray, *, solver_steps: int = 400) -> float:
    """Excess *population* risk of an answer.

    ``l_P(theta) - min l_P`` where ``P`` is the population histogram; the
    quantity the transfer theorems bound.
    """
    return answer_error(loss, population, theta, solver_steps=solver_steps)


def generalization_gap(loss: LossFunction, population: Histogram,
                       sample: Histogram, theta: np.ndarray, *,
                       solver_steps: int = 400) -> float:
    """``|excess population risk - excess sample risk|`` for one answer.

    Small for DP-produced answers (the transfer theorem); can be large for
    answers produced by non-private adaptive reuse of the sample — the
    contrast E10 demonstrates.
    """
    sample_error = answer_error(loss, sample, theta, solver_steps=solver_steps)
    pop_error = answer_error(loss, population, theta, solver_steps=solver_steps)
    return abs(pop_error - sample_error)
