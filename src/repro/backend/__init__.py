"""Pluggable numeric backends for the MW hot path.

``repro.backend`` abstracts every universe-sized numeric operation the
PMW reproduction performs — fused log-weight accumulation, deferred
normalization, the engine's linear/GLM/moment kernels, and cached-CDF
inverse sampling — behind the :class:`ArrayBackend` protocol:

- :class:`NumpyBackend` (``"numpy"``): the ``float64`` default,
  bitwise-identical to the historical inline code;
- :class:`Float32Backend` (``"float32"``): SIMD-friendly ``float32``
  arithmetic with ``float64``-accumulated normalizers and CDFs;
- ``JaxBackend`` (``"jax"``): fused jitted whole-vector kernels,
  available only when the optional ``jax`` dependency is installed.

Select per mechanism (``PrivateMWConvex(..., backend="float32")``), per
service (``PMWService(..., backend=...)``), per shard fleet
(``ShardedService(..., backend=...)``), or process-wide via the
``REPRO_BACKEND`` environment variable. Durable formats (snapshots,
checkpoints, shared-memory segments) stay NumPy ``float64`` regardless
of backend; see :mod:`repro.backend.base` for the full contract.
"""

from repro.backend.base import ArrayBackend
from repro.backend.jax_backend import jax_available
from repro.backend.numpy_backend import Float32Backend, NumpyBackend
from repro.backend.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    backend_of,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "Float32Backend",
    "NumpyBackend",
    "available_backends",
    "backend_of",
    "get_backend",
    "jax_available",
    "register_backend",
    "resolve_backend",
]
