"""The ``ArrayBackend`` protocol: the numeric surface of the MW hot path.

Every operation the PMW hot loop performs on universe-sized vectors —
the fused log-weight accumulation behind ``mw_step_inplace``, the
deferred max-shift/exp/normalize materialization, the engine's
``linear_answers``/``glm_margin_matrix``/moment kernels, and the
cached-CDF inverse-sampling tables — goes through one of the methods
below. Swapping the backend swaps the arithmetic (dtype, fusion,
device) without touching the mechanism logic above it.

Contract
--------

- :class:`~repro.backend.numpy_backend.NumpyBackend` is the default and
  is **bitwise-identical** to the pre-protocol code: its methods are the
  exact expressions the data/engine layers used to inline, so every
  oracle, chaos suite, and golden file keeps passing unmodified.
- Every other registered backend must agree with ``NumpyBackend`` to
  ``<= 1e-6`` on MW steps, margins, moments, and sampling tables (pinned
  by ``tests/property/test_backend_agreement.py``).
- **Durable formats are backend-independent**: snapshots, checkpoints,
  and shared-memory segments always hold NumPy ``float64``. Backends
  convert at that boundary via :meth:`ArrayBackend.to_float64` /
  :meth:`ArrayBackend.from_float64`; widening an accelerated dtype to
  ``float64`` is exact, so a hypothesis trained on any backend restores
  bitwise into any other.

Shard-pass methods take a ``shard`` slice so the existing
``map_shards`` dispatch (sequential or thread-pool) keeps working:
backends supply the per-shard arithmetic, the histogram classes keep
the topology. Backends with ``fused = True`` additionally provide
whole-vector :meth:`ArrayBackend.fused_update` /
:meth:`ArrayBackend.fused_normalize` used by
:class:`~repro.data.log_histogram.LogHistogram` in place of the
shard-pass decomposition (one jitted kernel instead of four passes).

Mass annihilation (an update that zeroes every weight) is signalled by
returning a sentinel (``None`` from :meth:`multiplicative_update`, a
non-finite shift from the max passes); the histogram layer owns the
typed ``ValidationError`` so backends stay dependency-free.
"""

from __future__ import annotations

import numpy as np


def _restore_backend(name: str):
    """Unpickle hook: re-resolve a backend by name on the receiving side.

    Backends are stateless singletons, but some hold unpicklable state
    (jitted JAX closures); shipping the *name* keeps shard specs and
    dataset pickles working for every backend and preserves the
    one-instance-per-name invariant across process boundaries.
    """
    from repro.backend.registry import get_backend

    return get_backend(name)


class ArrayBackend:
    """Abstract numeric backend. See the module docstring for the contract.

    Implementations are stateless and cached as singletons by the
    registry; all methods must be thread-safe (shard passes run on a
    shared pool).
    """

    #: Registry name (``"numpy"``, ``"float32"``, ``"jax"``, ...).
    name: str = "abstract"

    #: Native dtype of hot-path arrays this backend produces.
    dtype = np.float64

    #: Whether :meth:`fused_update`/:meth:`fused_normalize` replace the
    #: shard-pass decomposition in ``LogHistogram``.
    fused: bool = False

    # -- conversion / allocation -------------------------------------------

    def asarray(self, values):
        """``values`` as a native-dtype array (no copy when already native)."""
        raise NotImplementedError

    def to_float64(self, values) -> np.ndarray:
        """Durable-format boundary: ``values`` as NumPy ``float64``."""
        raise NotImplementedError

    def from_float64(self, values):
        """Native representation of durable ``float64`` state."""
        raise NotImplementedError

    def empty_like(self, values):
        """Uninitialized native array with ``values``' shape."""
        raise NotImplementedError

    def log_uniform(self, size: int):
        """Log-weights of the uniform distribution: ``-log(size)`` each."""
        raise NotImplementedError

    # -- MW hot loop: shard passes -----------------------------------------

    def accumulate(self, log_weights, direction, eta: float, scratch,
                   shard: slice) -> None:
        """``log_weights[shard] += eta * direction[shard]`` via ``scratch``."""
        raise NotImplementedError

    def max_finite(self, values, shard: slice) -> float:
        """Max finite entry of ``values[shard]`` (``-inf`` when none)."""
        raise NotImplementedError

    def log_axpy_max(self, weights, direction, eta: float, out,
                     shard: slice) -> float:
        """``out[shard] = log(weights[shard]) + eta * direction[shard]``;
        returns the shard's max finite entry (``-inf`` when none)."""
        raise NotImplementedError

    def exp_shifted(self, values, shift: float, out, shard: slice) -> None:
        """``out[shard] = exp(values[shard] - shift)`` (in place when
        ``values is out``)."""
        raise NotImplementedError

    def total_mass(self, values) -> float:
        """Full-vector sum, accumulated at ``float64`` fidelity."""
        raise NotImplementedError

    def normalize(self, values, total: float) -> None:
        """``values /= total`` in place."""
        raise NotImplementedError

    # -- MW hot loop: fused whole-vector (``fused = True`` backends) -------

    def fused_update(self, log_weights, direction, eta: float):
        """Whole-vector ``log_weights + eta * direction`` as one kernel."""
        raise NotImplementedError

    def fused_normalize(self, log_weights):
        """One kernel for max-shift + exp + sum: returns
        ``(weights, shift, total)`` with ``weights`` a normalized native
        NumPy array, ``shift`` the max finite log-weight (non-finite on
        mass annihilation) and ``total`` the pre-division mass."""
        raise NotImplementedError

    # -- dense immutable MW step -------------------------------------------

    def multiplicative_update(self, weights, direction, eta: float):
        """Unnormalized ``w * exp(eta * direction)`` with max-shift, or
        ``None`` when the update annihilated all mass."""
        raise NotImplementedError

    # -- engine kernels -----------------------------------------------------

    def dot(self, values, weights) -> float:
        """Scalar ``<values, weights>``."""
        raise NotImplementedError

    def matvec(self, tables, weights):
        """``tables @ weights`` (query-table rows against a hypothesis)."""
        raise NotImplementedError

    def matmul(self, points, parameters):
        """``points @ parameters`` — the blocked GLM margin kernel."""
        raise NotImplementedError

    def second_moment(self, features, weights):
        """``E[x xᵀ] = Xᵀ diag(w) X`` under the distribution ``weights``."""
        raise NotImplementedError

    def cross_moment(self, features, weights, labels):
        """``E[y x] = Xᵀ (w ⊙ y)`` under the distribution ``weights``."""
        raise NotImplementedError

    # -- cached-CDF inverse sampling ---------------------------------------

    def build_cdf(self, weights) -> np.ndarray:
        """Read-only monotone CDF over ``weights``, closed to exactly 1.0
        at the last nonzero entry; always ``float64`` so ``searchsorted``
        against uniform ``float64`` draws never aliases bins."""
        raise NotImplementedError

    def cumsum(self, values) -> np.ndarray:
        """Shard-local cumulative masses for two-level sampling tables."""
        raise NotImplementedError

    def __reduce__(self):
        return (_restore_backend, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["ArrayBackend"]
