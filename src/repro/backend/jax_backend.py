"""Optional JAX backend: fused, jitted whole-vector MW kernels.

Auto-skipped when ``jax`` is not installed — constructing
:class:`JaxBackend` raises a typed ``ValidationError`` and the registry
simply reports it unavailable; nothing else in the package imports
``jax``. The exemplar repos (``giusevtr__private_genetic_algorithm``)
run their MWEM cores exactly this way: the whole
``log w += eta·u → max-shift → exp → normalize`` round is one jitted
kernel instead of four universe-sized passes.

Host-visible arrays are ``float32`` (JAX's default real dtype), so the
class inherits :class:`~repro.backend.numpy_backend.Float32Backend`'s
shard-pass arithmetic for the code paths that stay on the host (the
sharded histogram's per-shard kernels); the fused whole-vector paths —
``fused_update``/``fused_normalize``, the margin ``matmul`` and the
hypothesis ``matvec`` — run on the JAX device. Durable state still
crosses the snapshot boundary as exact NumPy ``float64``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import Float32Backend
from repro.exceptions import ValidationError

try:  # pragma: no cover - exercised only where jax is installed
    import jax
    import jax.numpy as jnp
except ImportError:  # pragma: no cover - the common (CPU-only CI) case
    jax = None
    jnp = None


def jax_available() -> bool:
    """Whether the optional ``jax`` dependency imported successfully."""
    return jax is not None


class JaxBackend(Float32Backend):
    """Fused jitted MW kernels on the JAX device (requires ``jax``)."""

    name = "jax"
    fused = True

    def __init__(self) -> None:  # pragma: no cover - requires jax
        if jax is None:
            raise ValidationError(
                "the 'jax' backend requires the optional jax dependency "
                "(pip install 'jax[cpu]'); registered alternatives: "
                "numpy, float32"
            )

        def update(log_weights, direction, eta):
            return log_weights + eta * direction

        def normalize(log_weights):
            finite = jnp.isfinite(log_weights)
            shift = jnp.max(jnp.where(finite, log_weights, -jnp.inf))
            weights = jnp.exp(log_weights - shift)
            weights = jnp.where(jnp.isfinite(weights), weights, 0.0)
            total = jnp.sum(weights)
            return weights / total, shift, total

        self._jit_update = jax.jit(update)
        self._jit_normalize = jax.jit(normalize)
        self._jit_matmul = jax.jit(jnp.matmul)

    # -- fused whole-vector MW loop ----------------------------------------

    def fused_update(self, log_weights, direction,
                     eta: float):  # pragma: no cover - requires jax
        return self._jit_update(jnp.asarray(log_weights, dtype=jnp.float32),
                                jnp.asarray(direction, dtype=jnp.float32),
                                float(eta))

    def fused_normalize(self, log_weights):  # pragma: no cover - requires jax
        weights, shift, total = self._jit_normalize(
            jnp.asarray(log_weights, dtype=jnp.float32))
        return np.asarray(weights), float(shift), float(total)

    # -- device matmuls ------------------------------------------------------

    def matvec(self, tables, weights):  # pragma: no cover - requires jax
        return np.asarray(self._jit_matmul(
            jnp.asarray(tables, dtype=jnp.float32),
            jnp.asarray(weights, dtype=jnp.float32)))

    def matmul(self, points, parameters):  # pragma: no cover - requires jax
        return np.asarray(self._jit_matmul(
            jnp.asarray(points, dtype=jnp.float32),
            jnp.asarray(parameters, dtype=jnp.float32)))

    # -- conversion ----------------------------------------------------------

    def from_float64(self, values):  # pragma: no cover - requires jax
        # Land durable float64 state on the device once; subsequent fused
        # updates keep it there.
        return jnp.asarray(values, dtype=jnp.float32)

    def to_float64(self, values) -> np.ndarray:
        # np.asarray pulls device arrays back to the host when needed.
        return np.asarray(values, dtype=np.float64)


__all__ = ["JaxBackend", "jax_available"]
