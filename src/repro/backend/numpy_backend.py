"""NumPy backends: the bitwise-default ``float64`` path and a ``float32``
SIMD-friendly variant.

:class:`NumpyBackend` is a pure extraction — every method body is the
exact expression the data/engine layers inlined before the protocol
existed, so running it is bitwise-identical to the pre-refactor code
(the acceptance bar for the default backend).

:class:`Float32Backend` reuses the same expressions at ``float32``:
half the memory traffic on every universe-sized pass and twice the SIMD
lane width, which is where the speedup on large ``|X|`` comes from.
Reductions that feed normalizers and sampling tables (:meth:`total_mass`,
:meth:`build_cdf`, :meth:`cumsum`) accumulate in ``float64`` — a
``float32`` cumsum over ``|X| = 10^6`` entries drifts to ``~1e-4``,
well past the ``1e-6`` agreement contract, while per-element arithmetic
stays comfortably inside it.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend


class NumpyBackend(ArrayBackend):
    """The default ``float64`` backend (bitwise the historical code path).

    The class is written dtype-generically — every expression reads its
    working dtype from the arrays themselves — so :class:`Float32Backend`
    only overrides allocation dtype and the ``float64``-accumulated
    reductions.
    """

    name = "numpy"
    dtype = np.float64

    # -- conversion / allocation -------------------------------------------

    def asarray(self, values):
        return np.asarray(values, dtype=self.dtype)

    def to_float64(self, values) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def from_float64(self, values):
        return self.asarray(values)

    def empty_like(self, values):
        return np.empty_like(values)

    def log_uniform(self, size: int):
        return np.full(size, -np.log(size), dtype=self.dtype)

    # -- MW hot loop: shard passes -----------------------------------------

    def accumulate(self, log_weights, direction, eta: float, scratch,
                   shard: slice) -> None:
        np.multiply(direction[shard], eta, out=scratch[shard])
        log_weights[shard] += scratch[shard]

    def max_finite(self, values, shard: slice) -> float:
        chunk = values[shard]
        finite = chunk[np.isfinite(chunk)]
        return float(np.max(finite)) if finite.size else float("-inf")

    def log_axpy_max(self, weights, direction, eta: float, out,
                     shard: slice) -> float:
        chunk = out[shard]  # a view: shards are disjoint, writes race-free
        with np.errstate(divide="ignore"):
            np.log(weights[shard], out=chunk)
        chunk += eta * direction[shard]
        finite = chunk[np.isfinite(chunk)]
        return float(np.max(finite)) if finite.size else float("-inf")

    def exp_shifted(self, values, shift: float, out, shard: slice) -> None:
        chunk = out[shard]
        np.subtract(values[shard], shift, out=chunk)
        np.exp(chunk, out=chunk)

    def total_mass(self, values) -> float:
        # Full-vector pairwise sum — the normalizer every histogram
        # constructor computes, keeping dense/sharded/log paths aligned.
        return float(values.sum())

    def normalize(self, values, total: float) -> None:
        values /= total

    # -- dense immutable MW step -------------------------------------------

    def multiplicative_update(self, weights, direction, eta: float):
        weights = self.asarray(weights)
        direction = self.asarray(direction)
        with np.errstate(divide="ignore"):
            log_weights = np.log(weights)
        log_weights = log_weights + float(eta) * direction
        finite = log_weights[np.isfinite(log_weights)]
        if finite.size == 0:
            return None
        log_weights -= np.max(finite)
        new_weights = np.exp(log_weights)
        new_weights[~np.isfinite(new_weights)] = 0.0
        return new_weights

    # -- engine kernels -----------------------------------------------------

    def dot(self, values, weights) -> float:
        return float(self.asarray(values) @ self.asarray(weights))

    def matvec(self, tables, weights):
        return self.asarray(tables) @ self.asarray(weights)

    def matmul(self, points, parameters):
        return self.asarray(points) @ self.asarray(parameters)

    def second_moment(self, features, weights):
        # Lazy import: repro.losses sits above the data layer, which
        # imports this package at module load.
        from repro.losses.squared import weighted_second_moment

        return weighted_second_moment(self.asarray(features),
                                      self.asarray(weights))

    def cross_moment(self, features, weights, labels):
        from repro.losses.squared import weighted_cross_moment

        return weighted_cross_moment(self.asarray(features),
                                     self.asarray(weights),
                                     self.asarray(labels))

    # -- cached-CDF inverse sampling ---------------------------------------

    def build_cdf(self, weights) -> np.ndarray:
        cdf = np.cumsum(weights)
        # Close the floating-point cumsum gap at the last *nonzero*
        # weight, so trailing zero-weight elements stay impossible.
        last_support = int(np.nonzero(weights)[0][-1])
        cdf[last_support:] = 1.0
        cdf.setflags(write=False)
        return cdf

    def cumsum(self, values) -> np.ndarray:
        return np.cumsum(values)


class Float32Backend(NumpyBackend):
    """``float32`` storage and arithmetic, ``float64`` accumulation.

    See the module docstring for which reductions stay ``float64`` and
    why. Durable state still crosses the snapshot boundary as exact
    ``float64`` (widening a ``float32`` is lossless), so a hypothesis
    trained here restores bitwise into :class:`NumpyBackend`.
    """

    name = "float32"
    dtype = np.float32

    def total_mass(self, values) -> float:
        return float(values.sum(dtype=np.float64))

    def build_cdf(self, weights) -> np.ndarray:
        cdf = np.cumsum(weights, dtype=np.float64)
        last_support = int(np.nonzero(weights)[0][-1])
        cdf[last_support:] = 1.0
        cdf.setflags(write=False)
        return cdf

    def cumsum(self, values) -> np.ndarray:
        return np.cumsum(values, dtype=np.float64)


__all__ = ["Float32Backend", "NumpyBackend"]
