"""Backend registry: name-keyed construction plus ``REPRO_BACKEND``.

Backends are stateless, so the registry caches one instance per name.
Selection precedence, everywhere a ``backend=`` knob exists (mechanism
constructors, ``PMWService``, shard specs, the CLI):

1. an explicit :class:`~repro.backend.base.ArrayBackend` instance;
2. an explicit name (``"numpy"``, ``"float32"``, ``"jax"``);
3. ``None`` → the ``REPRO_BACKEND`` environment variable, read at
   resolution time so ``repro-experiments --backend`` and CI matrices
   can steer whole processes;
4. the ``"numpy"`` default.

Unknown names and unavailable optional backends (``"jax"`` without jax
installed) raise a typed ``ValidationError`` at resolution time — a
sharded service spawning accelerated workers fails at spawn, not after
the first query.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import Float32Backend, NumpyBackend
from repro.exceptions import ValidationError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"

#: The always-available default backend name.
DEFAULT_BACKEND = "numpy"


def _make_jax() -> ArrayBackend:
    # Deferred import: repro.backend must stay importable (and fast)
    # when jax is absent.
    from repro.backend.jax_backend import JaxBackend

    return JaxBackend()


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "float32": Float32Backend,
    "jax": _make_jax,
}
_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(name: str,
                     factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The extension point for out-of-tree backends; the factory may raise
    ``ValidationError`` to report itself unavailable on this host.
    """
    _FACTORIES[str(name)] = factory
    _INSTANCES.pop(str(name), None)


def get_backend(name: str) -> ArrayBackend:
    """The cached backend instance registered under ``name``."""
    name = str(name)
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValidationError(
            f"unknown backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def resolve_backend(spec=None) -> ArrayBackend:
    """Resolve a backend spec: an instance, a name, or ``None``.

    ``None`` consults ``REPRO_BACKEND`` and falls back to ``"numpy"``
    (see the module docstring for the full precedence).
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if not isinstance(spec, str):
        raise ValidationError(
            f"backend must be an ArrayBackend instance, a name, or None; "
            f"got {type(spec).__name__}"
        )
    return get_backend(spec)


def available_backends() -> list[str]:
    """Names of registered backends that construct on this host."""
    names = []
    for name in sorted(_FACTORIES):
        try:
            get_backend(name)
        except ValidationError:
            continue
        names.append(name)
    return names


def backend_of(histogram) -> ArrayBackend:
    """The backend carried by a histogram-like object (NumPy default).

    Engine kernels use this to follow whatever arithmetic produced the
    hypothesis they are evaluating against; plain objects without a
    ``backend`` attribute get the bitwise default.
    """
    backend = getattr(histogram, "backend", None)
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(DEFAULT_BACKEND)


__all__ = [
    "DEFAULT_BACKEND", "ENV_VAR", "available_backends", "backend_of",
    "get_backend", "register_backend", "resolve_backend",
]
