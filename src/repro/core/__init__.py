"""The paper's primary contribution and its baselines.

- :class:`PrivateMWConvex` — Figure 3: online private multiplicative
  weights for convex-minimization queries.
- :class:`PrivateMWLinear` — the [HR10] special case for linear queries.
- :class:`MWEM` — the offline [HLM12] baseline.
- :class:`CompositionBaseline` — k independent oracle calls (the foil).
- :mod:`repro.core.update` — the Claim 3.5 dual-certificate update.
- :mod:`repro.core.config` — the Figure 3 parameter schedule.
- :mod:`repro.core.accuracy` — Definitions 2.2 / 2.3.
- :mod:`repro.core.theory` — Table 1 and the theorem bounds as formulas.
"""

from repro.core.accuracy import (
    DatabaseErrorBreakdown,
    answer_error,
    database_error,
    empirical_error_query_sensitivity,
)
from repro.core.config import PMWConfig
from repro.core.update import (
    UpdateCertificate,
    certificate_inner_gap,
    claim_3_5_slack,
    dual_certificate,
    mw_step,
    mw_step_inplace,
)
from repro.core.pmw_cm import PMWAnswer, PrivateMWConvex
from repro.core.offline import OfflineMWConvex, OfflineResult
from repro.core.pmw_linear import LinearAnswer, PrivateMWLinear
from repro.core.mwem import MWEM, MWEMResult
from repro.core.composition_baseline import CompositionAnswer, CompositionBaseline
from repro.core import theory

__all__ = [
    "PrivateMWConvex",
    "PMWAnswer",
    "OfflineMWConvex",
    "OfflineResult",
    "PrivateMWLinear",
    "LinearAnswer",
    "MWEM",
    "MWEMResult",
    "CompositionBaseline",
    "CompositionAnswer",
    "PMWConfig",
    "UpdateCertificate",
    "dual_certificate",
    "mw_step",
    "mw_step_inplace",
    "claim_3_5_slack",
    "certificate_inner_gap",
    "answer_error",
    "database_error",
    "DatabaseErrorBreakdown",
    "empirical_error_query_sensitivity",
    "theory",
]
