"""Error definitions of Section 2.2 (Definitions 2.2 and 2.3).

Two notions of error drive the whole mechanism:

- **error of an answer** ``err_l(D, theta) = l_D(theta) - min l_D`` —
  the excess empirical risk of a proposed parameter (Definition 2.2);
- **error of a database** ``err_l(D, D') = l_D(argmin l_{D'}) - min l_D``
  — how badly the minimizer computed on a *hypothesis* ``D'`` performs on
  the *true* data ``D`` (Definition 2.3). This is the sparse-vector query
  ``q_j`` of Figure 3, with sensitivity at most ``3S/n``
  (Section 3.4.2's lemma, reproduced empirically in the E8 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.histogram import Histogram
from repro.losses.base import LossFunction
from repro.optimize.minimize import MinimizeResult, minimize_loss


@dataclass(frozen=True)
class DatabaseErrorBreakdown:
    """The pieces of one ``err_l(D, D')`` evaluation (for diagnostics)."""

    error: float
    hypothesis_minimizer: np.ndarray
    hypothesis_loss_on_data: float
    optimal_loss_on_data: float
    data_minimizer: np.ndarray


def answer_error(loss: LossFunction, data: Histogram, theta: np.ndarray,
                 *, solver_steps: int = 400,
                 data_optimum: float | None = None) -> float:
    """Definition 2.2: ``err_l(D, theta) = l_D(theta) - min_theta l_D``.

    ``data_optimum`` can be supplied to avoid re-solving ``min l_D`` when
    evaluating many answers against the same data (as the experiment
    harness does). Clamped at zero: tiny negatives only arise from solver
    slack on the optimum.
    """
    if data_optimum is None:
        data_optimum = minimize_loss(loss, data, steps=solver_steps).value
    value = float(loss.loss_on(np.asarray(theta, dtype=float), data))
    return max(0.0, value - float(data_optimum))


def database_error(loss: LossFunction, data: Histogram, hypothesis: Histogram,
                   *, solver_steps: int = 400,
                   data_result: MinimizeResult | None = None,
                   hypothesis_result: MinimizeResult | None = None,
                   ) -> DatabaseErrorBreakdown:
    """Definition 2.3: ``err_l(D, D')`` with its intermediate quantities.

    Returns the full breakdown because the PMW round needs the hypothesis
    minimizer ``theta_hat`` again for the dual-certificate update, and
    tests assert relationships between the parts. ``data_result`` lets
    callers reuse the data-side minimization (it only depends on
    ``(loss, data)``, both fixed across a mechanism's lifetime);
    ``hypothesis_result`` likewise supplies an already-computed
    ``theta_hat`` — e.g. from a ``(fingerprint, hypothesis version)``
    cache, or a warm-started solve the caller ran itself (see
    ``PrivateMWConvex._minimize_on_hypothesis``).
    """
    if hypothesis_result is None:
        hypothesis_result = minimize_loss(loss, hypothesis,
                                          steps=solver_steps)
    if data_result is None:
        data_result = minimize_loss(loss, data, steps=solver_steps)
    loss_on_data = float(loss.loss_on(hypothesis_result.theta, data))
    error = max(0.0, loss_on_data - data_result.value)
    return DatabaseErrorBreakdown(
        error=error,
        hypothesis_minimizer=hypothesis_result.theta,
        hypothesis_loss_on_data=loss_on_data,
        optimal_loss_on_data=float(data_result.value),
        data_minimizer=data_result.theta,
    )


def empirical_error_query_sensitivity(loss: LossFunction, data: Histogram,
                                      neighbor: Histogram,
                                      hypothesis: Histogram,
                                      *, solver_steps: int = 400) -> float:
    """Realized ``|err_l(D, D'') - err_l(D', D'')|`` for adjacent ``D ~ D'``.

    Section 3.4.2 proves this is at most ``3S/n``; the privacy benchmark
    (E8) samples adjacent pairs and checks the bound empirically.
    """
    error_d = database_error(loss, data, hypothesis,
                             solver_steps=solver_steps).error
    error_d_prime = database_error(loss, neighbor, hypothesis,
                                   solver_steps=solver_steps).error
    return abs(error_d - error_d_prime)
