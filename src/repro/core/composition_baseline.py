"""Answering k CM queries by independent composition (the paper's foil).

The straightforward approach the introduction argues against: split the
privacy budget over the ``k`` planned queries with advanced composition and
answer each with an independent single-query oracle call. Error then grows
like ``k^{1/4}``–``k^{1/2}`` (each call's budget shrinks as
``eps/sqrt(k)``), versus PMW's ``polylog(k)`` — the E5 crossover benchmark
measures exactly this race.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.accountant import PrivacyAccountant
from repro.dp.composition import PrivacyParameters, per_round_budget
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import ValidationError
from repro.losses.base import LossFunction
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_unit_interval


@dataclass(frozen=True)
class CompositionAnswer:
    """One answer produced by the composition baseline."""

    theta: np.ndarray
    query_index: int


class CompositionBaseline:
    """Independent oracle calls under an advanced-composition budget split.

    Parameters
    ----------
    dataset:
        The private dataset.
    oracle:
        The single-query oracle to call per query (re-budgeted).
    planned_queries:
        ``k``: how many queries the budget is split across. Asking more
        than ``k`` queries raises — the split is what makes the total
        ``(epsilon, delta)`` valid.
    epsilon, delta:
        Total budget across all ``k`` calls.
    """

    def __init__(self, dataset: Dataset, oracle: SingleQueryOracle, *,
                 planned_queries: int, epsilon: float = 1.0,
                 delta: float = 1e-6, rng=None) -> None:
        if planned_queries < 1:
            raise ValidationError(
                f"planned_queries must be >= 1, got {planned_queries}"
            )
        self._dataset = dataset
        self.planned_queries = int(planned_queries)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_unit_interval(delta, "delta")
        if self.planned_queries == 1:
            per_call = PrivacyParameters(self.epsilon, self.delta)
        else:
            per_call = per_round_budget(self.epsilon, self.delta,
                                        self.planned_queries)
        self.per_call = per_call
        self._oracle = oracle.with_budget(per_call.epsilon,
                                          max(per_call.delta, 1e-15))
        self._rng = as_generator(rng)
        self.accountant = PrivacyAccountant()
        self._queries = 0

    @property
    def queries_answered(self) -> int:
        """Number of queries answered so far."""
        return self._queries

    def answer(self, loss: LossFunction) -> CompositionAnswer:
        """Answer one query with an independent oracle call."""
        if self._queries >= self.planned_queries:
            raise ValidationError(
                f"budget was split across {self.planned_queries} queries; "
                f"answering more would exceed (epsilon, delta)"
            )
        index = self._queries
        self._queries += 1
        theta = self._oracle.answer(loss, self._dataset, rng=self._rng)
        self.accountant.spend(self.per_call.epsilon,
                              max(self.per_call.delta, 1e-300),
                              label=f"composition:{loss.name}")
        return CompositionAnswer(
            theta=np.asarray(theta, dtype=float), query_index=index
        )

    def answer_all(self, losses) -> list[CompositionAnswer]:
        """Answer a sequence of queries (must fit the planned budget)."""
        return [self.answer(loss) for loss in losses]
