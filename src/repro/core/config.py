"""The Figure 3 parameter schedule.

Figure 3 fixes, from the target accuracy ``alpha``, failure probability
``beta``, privacy budget ``(eps, delta)``, family scale ``S``, and universe
size ``|X|``:

    T      = 64 S^2 log|X| / alpha^2        (update budget)
    eta    = sqrt(log|X| / T)               (MW step size)
    eps0   = eps / sqrt(8 T log(4/delta))   (per-oracle-call epsilon)
    delta0 = delta / (4 T)                  (per-oracle-call delta)
    alpha0 = alpha / 4                      (oracle accuracy target)
    beta0  = beta / (2 T)                   (oracle failure target)

and gives the sparse vector half the budget: ``SV(T, k, alpha, eps/2,
delta/2)``.

:class:`PMWConfig` computes these exactly in ``schedule="paper"`` mode, and
in ``schedule="calibrated"`` mode keeps the same functional forms with the
leading constant of ``T`` reduced (the paper's 64 is a worst-case analysis
constant; laptop-scale experiments converge with far fewer updates). Both
schedules are fully differentially private — they differ only in how
conservative the *accuracy* bookkeeping is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dp.composition import sparse_vector_sample_bound
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_unit_interval

#: Figure 3's constant in ``T = 64 S^2 log|X| / alpha^2``.
PAPER_UPDATE_CONSTANT = 64.0
#: Calibrated-mode constant: same functional form, practical magnitude.
CALIBRATED_UPDATE_CONSTANT = 1.0


@dataclass(frozen=True)
class PMWConfig:
    """Derived parameters for one run of the Figure 3 mechanism.

    Build with :meth:`from_targets`; all fields are then consistent with
    the chosen schedule.
    """

    alpha: float
    beta: float
    epsilon: float
    delta: float
    scale: float
    universe_size: int
    schedule: str
    max_updates: int          # T
    eta: float                # MW step size
    oracle_epsilon: float     # eps0
    oracle_delta: float       # delta0
    oracle_alpha: float       # alpha0
    oracle_beta: float        # beta0
    sv_epsilon: float         # eps/2
    sv_delta: float           # delta/2
    extras: dict = field(default_factory=dict)

    @classmethod
    def from_targets(cls, *, alpha: float, beta: float, epsilon: float,
                     delta: float, scale: float, universe_size: int,
                     schedule: str = "paper",
                     max_updates: int | None = None) -> "PMWConfig":
        """Derive the full schedule from the user-level targets.

        Parameters
        ----------
        alpha, beta:
            Accuracy target ``(alpha, beta)`` of Definition 2.4.
        epsilon, delta:
            Total privacy budget of the mechanism.
        scale:
            Family scale ``S`` (see
            :func:`repro.losses.scaling.family_scale_bound`).
        universe_size:
            ``|X|``.
        schedule:
            ``"paper"`` for Figure 3's exact constants, ``"calibrated"``
            for the practical constant.
        max_updates:
            Optional explicit override for ``T`` (used by ablations); the
            derived ``eta`` and per-round budgets always follow the chosen
            ``T`` so privacy is preserved under any override.
        """
        alpha = check_unit_interval(alpha, "alpha")
        beta = check_unit_interval(beta, "beta")
        epsilon = check_positive(epsilon, "epsilon")
        delta = check_unit_interval(delta, "delta")
        scale = check_positive(scale, "scale")
        if universe_size < 2:
            raise ValidationError(
                f"universe_size must be >= 2 (log|X| > 0), got {universe_size}"
            )
        if schedule not in ("paper", "calibrated"):
            raise ValidationError(
                f"schedule must be 'paper' or 'calibrated', got {schedule!r}"
            )

        log_size = math.log(universe_size)
        constant = (PAPER_UPDATE_CONSTANT if schedule == "paper"
                    else CALIBRATED_UPDATE_CONSTANT)
        derived_updates = max(
            1, math.ceil(constant * scale * scale * log_size / (alpha * alpha))
        )
        updates = derived_updates if max_updates is None else int(max_updates)
        if updates < 1:
            raise ValidationError(f"max_updates must be >= 1, got {max_updates}")

        eta = math.sqrt(log_size / updates)
        oracle_epsilon = epsilon / math.sqrt(8.0 * updates * math.log(4.0 / delta))
        oracle_delta = delta / (4.0 * updates)
        return cls(
            alpha=alpha, beta=beta, epsilon=epsilon, delta=delta,
            scale=scale, universe_size=universe_size, schedule=schedule,
            max_updates=updates, eta=eta,
            oracle_epsilon=oracle_epsilon, oracle_delta=oracle_delta,
            oracle_alpha=alpha / 4.0,
            oracle_beta=beta / (2.0 * updates),
            sv_epsilon=epsilon / 2.0, sv_delta=delta / 2.0,
            extras={"derived_max_updates": derived_updates},
        )

    # -- sample-size requirements -------------------------------------------

    def sensitivity(self, n: int) -> float:
        """The error-query sensitivity ``3S/n`` fed to sparse vector."""
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        return 3.0 * self.scale / n

    def sparse_vector_sample_size(self, total_queries: int) -> float:
        """Theorem 3.1's ``n`` requirement for the embedded sparse vector."""
        return sparse_vector_sample_bound(
            3.0 * self.scale, self.max_updates, total_queries,
            self.alpha, self.sv_epsilon, self.sv_delta, self.beta / 2.0,
        )

    def claim_3_2_sample_size(self, total_queries: int,
                              oracle_sample_size: float = 0.0) -> float:
        """Claim 3.2: the ``n`` making events (1) and (2) hold w.h.p.

        ``n >= max(n', 512 * sqrt(T log(4/delta)) * log(8k/beta) /
        (eps alpha))`` — implemented by instantiating Theorem 3.1 at the
        mechanism's halved budgets ``(eps/2, delta/2, beta/2)`` with the
        error queries' ``3S`` sensitivity scale (the paper's printed
        constant absorbs ``S``; we keep it explicit).
        """
        return max(float(oracle_sample_size),
                   self.sparse_vector_sample_size(total_queries))

    def theorem_3_8_sample_size(self, total_queries: int,
                                oracle_sample_size: float = 0.0) -> float:
        """Theorem 3.8's requirement: ``max(n', 4096 S^2 sqrt(log|X| ...))``.

        ``oracle_sample_size`` is the ``n'`` the chosen oracle needs at the
        per-round budget.
        """
        if total_queries < 1:
            raise ValidationError(
                f"total_queries must be >= 1, got {total_queries}"
            )
        log_size = math.log(self.universe_size)
        mechanism_term = (
            4096.0 * self.scale * self.scale
            * math.sqrt(log_size * math.log(4.0 / self.delta))
            * math.log(8.0 * total_queries / self.beta)
            / (self.epsilon * self.alpha * self.alpha)
        )
        return max(float(oracle_sample_size), mechanism_term)

    def describe(self) -> str:
        """Multi-line human-readable summary of the derived schedule."""
        return (
            f"PMWConfig[{self.schedule}]\n"
            f"  targets: alpha={self.alpha:g} beta={self.beta:g} "
            f"eps={self.epsilon:g} delta={self.delta:g}\n"
            f"  family:  S={self.scale:g} |X|={self.universe_size}\n"
            f"  derived: T={self.max_updates} eta={self.eta:.4g} "
            f"eps0={self.oracle_epsilon:.4g} delta0={self.oracle_delta:.3g} "
            f"alpha0={self.oracle_alpha:g} beta0={self.oracle_beta:.3g}\n"
            f"  sparse vector: eps={self.sv_epsilon:g} delta={self.sv_delta:g}"
        )
