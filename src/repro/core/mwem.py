"""Offline MWEM (Hardt–Ligett–McSherry [HLM12]).

The offline variant of private multiplicative weights the paper's
techniques section sketches: all ``k`` linear queries are known in advance;
each round privately selects the worst-answered query with the exponential
mechanism, measures it with Laplace noise, and updates the hypothesis.
Included as the practical baseline PMW is usually compared against, and as
the offline counterpart for the E1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.dp.accountant import PrivacyAccountant
from repro.dp.mechanisms import exponential_mechanism
from repro.exceptions import ValidationError
from repro.losses.linear import LinearQuery
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MWEMResult:
    """Outcome of one MWEM run."""

    hypothesis: Histogram
    answers: np.ndarray          # per-query answers from the hypothesis
    selected: list[int]          # query index chosen in each round
    measurements: list[float]    # the noisy measurements driving updates


class MWEM:
    """Offline multiplicative weights + exponential mechanism.

    Parameters
    ----------
    dataset:
        The private dataset.
    queries:
        The full (public) query workload.
    rounds:
        Number of select/measure/update rounds ``T``.
    epsilon:
        Total pure-DP budget, split evenly across rounds and, within a
        round, evenly between selection and measurement (the [HLM12]
        split).
    average_hypotheses:
        [HLM12]'s practical improvement: answer from the average of the
        per-round hypotheses rather than the last one.
    """

    def __init__(self, dataset: Dataset, queries: list[LinearQuery], *,
                 rounds: int, epsilon: float, average_hypotheses: bool = True,
                 rng=None) -> None:
        if rounds < 1:
            raise ValidationError(f"rounds must be >= 1, got {rounds}")
        if not queries:
            raise ValidationError("queries must be non-empty")
        for query in queries:
            if query.table.size != dataset.universe.size:
                raise ValidationError(
                    f"query {query.name!r} does not match the universe size"
                )
        self._dataset = dataset
        self._queries = list(queries)
        self.rounds = int(rounds)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.average_hypotheses = bool(average_hypotheses)
        self._select_rng, self._measure_rng = spawn_generators(rng, 2)
        self.accountant = PrivacyAccountant()

    def run(self) -> MWEMResult:
        """Execute the MWEM rounds and return the hypothesis + answers."""
        data_histogram = self._dataset.histogram()
        n = self._dataset.n
        epsilon_round = self.epsilon / self.rounds
        epsilon_select = epsilon_round / 2.0
        epsilon_measure = epsilon_round / 2.0

        query_tables = np.stack([q.table for q in self._queries])
        true_answers = query_tables @ data_histogram.weights

        hypothesis = Histogram.uniform(self._dataset.universe)
        weight_sum = np.zeros(self._dataset.universe.size)
        selected: list[int] = []
        measurements: list[float] = []

        for _ in range(self.rounds):
            hypothesis_answers = query_tables @ hypothesis.weights
            scores = np.abs(true_answers - hypothesis_answers)
            choice = exponential_mechanism(
                scores, sensitivity=1.0 / n, epsilon=epsilon_select,
                rng=self._select_rng,
            )
            self.accountant.spend(epsilon_select, 0.0, label="mwem-select")

            measurement = float(true_answers[choice] + self._measure_rng.laplace(
                0.0, 1.0 / (n * epsilon_measure)
            ))
            self.accountant.spend(epsilon_measure, 0.0, label="mwem-measure")
            measurement = float(np.clip(measurement, 0.0, 1.0))

            # HLM12 update: scale the step by half the measured discrepancy.
            step = (measurement - float(hypothesis_answers[choice])) / 2.0
            hypothesis = hypothesis.multiplicative_update(
                self._queries[choice].table, step
            )
            weight_sum += hypothesis.weights
            selected.append(choice)
            measurements.append(measurement)

        if self.average_hypotheses:
            final = Histogram(self._dataset.universe, weight_sum / self.rounds)
        else:
            final = hypothesis
        answers = query_tables @ final.weights
        return MWEMResult(hypothesis=final, answers=answers,
                          selected=selected, measurements=measurements)

    def max_error(self, result: MWEMResult) -> float:
        """Worst-case answer error of a run against the true data."""
        data_histogram = self._dataset.histogram()
        true_answers = np.stack(
            [q.table for q in self._queries]
        ) @ data_histogram.weights
        return float(np.max(np.abs(true_answers - result.answers)))
