"""Offline private multiplicative weights for CM queries (Section 1.2).

The paper presents its algorithm in the online model but notes the offline
variant — all ``k`` losses known in advance, in the style of
[GHRU11, GRU12, HLM12] — "contains the main novel ideas": each round
privately selects the loss on which the hypothesis errs most using the
**exponential mechanism** [MT07] (instead of sparse vector), obtains a
private minimizer from the oracle, and applies the same dual-certificate
update. :class:`OfflineMWConvex` implements that variant:

Round ``t = 1..T``:

1. score every loss: ``s_j = err_{l_j}(D, Dhat_t)`` (Definition 2.3, each
   ``3S/n``-sensitive);
2. pick ``j* ~ ExpMech(s, 3S/n, eps_select)``;
3. ``theta_t <- A'(D, l_{j*})`` at ``(eps_o, delta_o)``;
4. MW-update ``Dhat`` with the Claim 3.5 certificate.

After ``T`` rounds every query is answered as ``argmin_theta
l_j(theta; Dhat_T)`` — pure post-processing. Budget: half to the ``T``
selections (pure DP, advanced composition), half to the ``T`` oracle calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.update import dual_certificate, mw_step
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.dp.accountant import PrivacyAccountant
from repro.dp.composition import per_round_budget
from repro.dp.mechanisms import exponential_mechanism
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import ValidationError
from repro.optimize.minimize import minimize_loss
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive, check_unit_interval


@dataclass(frozen=True)
class OfflineResult:
    """Outcome of one offline run."""

    hypothesis: Histogram
    thetas: list                   # per-loss answers from the hypothesis
    selected: list[int] = field(default_factory=list)
    history: list[dict] = field(default_factory=list)


class OfflineMWConvex:
    """Offline PMW for CM queries (exponential-mechanism selection).

    Parameters
    ----------
    dataset:
        The private dataset ``D``.
    losses:
        The full (public) query workload ``L``.
    oracle:
        Single-query DP-ERM oracle ``A'`` (re-budgeted per round).
    scale:
        The family scale ``S`` (used for selection sensitivity ``3S/n``
        and the MW normalization). Must dominate every loss's
        ``scale_bound()``.
    rounds:
        Number of select/solve/update rounds ``T``.
    epsilon, delta:
        Total privacy budget, split half/half between selections and
        oracle calls, each side spread over ``T`` rounds by advanced
        composition.
    eta:
        MW step size; defaults to ``sqrt(log|X| / T)`` (Figure 3's form).
    """

    def __init__(self, dataset: Dataset, losses, oracle: SingleQueryOracle, *,
                 scale: float, rounds: int, epsilon: float = 1.0,
                 delta: float = 1e-6, eta: float | None = None,
                 solver_steps: int = 300, rng=None) -> None:
        self._dataset = dataset
        self._losses = list(losses)
        if not self._losses:
            raise ValidationError("losses must be non-empty")
        if rounds < 1:
            raise ValidationError(f"rounds must be >= 1, got {rounds}")
        self.scale = check_positive(scale, "scale")
        for loss in self._losses:
            try:
                bound = loss.scale_bound()
            except Exception:
                continue
            if bound > self.scale * (1.0 + 1e-6):
                raise ValidationError(
                    f"{loss.name}: scale bound {bound:.6g} exceeds the "
                    f"family scale S={self.scale:.6g}"
                )
        self.rounds = int(rounds)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_unit_interval(delta, "delta")
        self.solver_steps = int(solver_steps)
        log_size = np.log(dataset.universe.size)
        self.eta = float(eta) if eta is not None else float(
            np.sqrt(log_size / self.rounds)
        )

        select_budget = per_round_budget(self.epsilon / 2.0, self.delta / 2.0,
                                         self.rounds)
        oracle_budget = per_round_budget(self.epsilon / 2.0, self.delta / 2.0,
                                         self.rounds)
        self._select_epsilon = select_budget.epsilon
        self._oracle = oracle.with_budget(oracle_budget.epsilon,
                                          max(oracle_budget.delta, 1e-15))
        self._oracle_epsilon = oracle_budget.epsilon
        self._oracle_delta = oracle_budget.delta
        self._select_rng, self._oracle_rng = spawn_generators(rng, 2)
        self.accountant = PrivacyAccountant()

    def run(self) -> OfflineResult:
        """Execute the T rounds and answer every query from the hypothesis."""
        data = self._dataset.histogram()
        sensitivity = 3.0 * self.scale / self._dataset.n
        hypothesis = Histogram.uniform(self._dataset.universe)

        # min_theta l_j(theta; D) is round-independent: compute once.
        data_optima = [
            minimize_loss(loss, data, steps=self.solver_steps).value
            for loss in self._losses
        ]

        selected: list[int] = []
        history: list[dict] = []
        for round_index in range(self.rounds):
            # Score every loss on the current hypothesis (Definition 2.3).
            hypothesis_thetas = [
                minimize_loss(loss, hypothesis, steps=self.solver_steps).theta
                for loss in self._losses
            ]
            scores = np.array([
                max(0.0, float(loss.loss_on(theta, data)) - optimum)
                for loss, theta, optimum in zip(self._losses,
                                                hypothesis_thetas,
                                                data_optima)
            ])
            choice = exponential_mechanism(scores, sensitivity,
                                           self._select_epsilon,
                                           rng=self._select_rng)
            self.accountant.spend(self._select_epsilon, 0.0,
                                  label=f"select:{round_index}")

            loss = self._losses[choice]
            theta_oracle = self._oracle.answer(loss, self._dataset,
                                               rng=self._oracle_rng)
            theta_oracle = loss.domain.project(
                np.asarray(theta_oracle, dtype=float)
            )
            self.accountant.spend(self._oracle_epsilon,
                                  max(self._oracle_delta, 1e-300),
                                  label=f"oracle:{loss.name}")

            certificate = dual_certificate(
                loss, hypothesis, theta_oracle,
                theta_hat=hypothesis_thetas[choice],
                solver_steps=self.solver_steps,
            )
            hypothesis = mw_step(hypothesis, certificate, self.eta,
                                 self.scale)
            selected.append(choice)
            history.append({
                "round": round_index,
                "selected": choice,
                "loss": loss.name,
                "selected_score": float(scores[choice]),
                "max_score": float(scores.max()),
            })

        thetas = [
            minimize_loss(loss, hypothesis, steps=self.solver_steps).theta
            for loss in self._losses
        ]
        return OfflineResult(hypothesis=hypothesis, thetas=thetas,
                             selected=selected, history=history)

    def max_error(self, result: OfflineResult) -> float:
        """Worst excess risk of a run's answers on the true data."""
        data = self._dataset.histogram()
        worst = 0.0
        for loss, theta, in zip(self._losses, result.thetas):
            optimum = minimize_loss(loss, data, steps=self.solver_steps).value
            worst = max(worst, max(0.0, float(loss.loss_on(theta, data))
                                   - optimum))
        return worst
