"""Online Private Multiplicative Weights for CM queries (Figure 3).

:class:`PrivateMWConvex` is the paper's mechanism. It answers an adaptively
chosen stream of convex-minimization queries on a private dataset:

1. Maintain a public hypothesis histogram ``Dhat`` (initially uniform).
2. For each incoming loss ``l_j``, compute the error query
   ``q_j(D) = err_{l_j}(D, Dhat)`` (Definition 2.3; sensitivity ``3S/n``)
   and feed it to the online sparse-vector algorithm.
3. On ``bottom``: the hypothesis already answers well — return
   ``argmin_theta l_j(theta; Dhat)``, at zero privacy cost.
4. On ``top``: call the single-query oracle ``A'`` at the per-round budget
   ``(eps0, delta0)`` to obtain ``theta_t``, return it, extract the
   dual-certificate vector ``u_t`` (Claim 3.5), and apply the MW update.
5. The bounded-regret argument caps updates at ``T``; privacy is the
   composition of the sparse vector (``eps/2, delta/2``) with the ``T``
   oracle calls (``eps/2, delta/2`` via Theorem 3.10) — Theorem 3.9.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.accuracy import database_error
from repro.core.config import PMWConfig
from repro.core.update import dual_certificate, mw_step
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.sharded import hypothesis_histogram
from repro.dp.accountant import PrivacyAccountant, restore_accountant
from repro.dp.composition import PrivacyParameters, advanced_composition
from repro.dp.sparse_vector import SparseVector
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import (
    LossSpecificationError,
    MechanismHalted,
    PrivacyBudgetExhausted,
    ValidationError,
)
from repro.losses.base import LossFunction
from repro.optimize.minimize import MinimizeResult, minimize_loss
from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class PMWAnswer:
    """One answered CM query.

    Attributes
    ----------
    theta:
        The released parameter ``theta_hat_j``.
    from_update:
        ``True`` if this query triggered an oracle call and MW update
        (sparse vector said ``top``); ``False`` if it was answered from
        the public hypothesis.
    query_index:
        0-based position in the query stream.
    update_index:
        The update round ``t`` (0-based) if ``from_update``, else ``None``.
    """

    theta: np.ndarray
    from_update: bool
    query_index: int
    update_index: int | None = None


class PrivateMWConvex:
    """The Figure 3 mechanism.

    Class attributes
    ----------------
    DATA_MINIMA_LIMIT:
        LRU bound on the per-mechanism cache of data-side minimizations
        (one entry per distinct loss fingerprint). Eviction only costs a
        recomputation; correctness is unaffected.

    Parameters
    ----------
    dataset:
        The private dataset ``D``.
    oracle:
        A :class:`SingleQueryOracle`; it is re-budgeted to the per-round
        ``(eps0, delta0)`` derived by the schedule.
    scale:
        The family scale bound ``S`` (every submitted loss must satisfy
        ``loss.scale_bound() <= scale``; violations raise).
    alpha, beta:
        Accuracy target of Definition 2.4.
    epsilon, delta:
        Total privacy budget (Theorem 3.9's guarantee).
    schedule:
        ``"paper"`` or ``"calibrated"`` — see :class:`PMWConfig`.
    max_updates:
        Optional override of the update budget ``T``.
    solver_steps:
        Iteration budget for inner (non-private) minimizations.
    noise_multiplier:
        Forwarded to the sparse vector; values below 1 void the formal
        privacy guarantee (ablations only).
    rng:
        Seed or generator; split into independent streams for the sparse
        vector and the oracle.
    """

    DATA_MINIMA_LIMIT = 1024

    def __init__(self, dataset: Dataset, oracle: SingleQueryOracle, *,
                 scale: float, alpha: float, beta: float = 0.05,
                 epsilon: float = 1.0, delta: float = 1e-6,
                 schedule: str = "calibrated", max_updates: int | None = None,
                 solver_steps: int = 400, noise_multiplier: float = 1.0,
                 shards: int | None = None,
                 histogram_workers: int | None = None, rng=None) -> None:
        self._dataset = dataset
        self._data_histogram = dataset.histogram()  # private: never released
        self.config = PMWConfig.from_targets(
            alpha=alpha, beta=beta, epsilon=epsilon, delta=delta,
            scale=scale, universe_size=dataset.universe.size,
            schedule=schedule, max_updates=max_updates,
        )
        self.solver_steps = int(solver_steps)
        if self.solver_steps < 1:
            raise ValidationError("solver_steps must be >= 1")

        sv_rng, oracle_rng = spawn_generators(rng, 2)
        self._oracle_rng = oracle_rng
        self.accountant = PrivacyAccountant()
        self._sparse_vector = SparseVector(
            alpha=self.config.alpha,
            sensitivity=self.config.sensitivity(dataset.n),
            epsilon=self.config.sv_epsilon,
            delta=self.config.sv_delta,
            max_above=self.config.max_updates,
            rng=sv_rng,
            noise_multiplier=noise_multiplier,
            accountant=self.accountant,
        )
        self._oracle = oracle.with_budget(self.config.oracle_epsilon,
                                          self.config.oracle_delta)
        self.shards = shards
        self.histogram_workers = histogram_workers
        self._hypothesis = hypothesis_histogram(
            dataset.universe, shards=shards, workers=histogram_workers)
        self._answers: list[PMWAnswer] = []
        self._updates = 0
        self._history: list[dict] = []
        # min_theta l(theta; D) depends only on (loss, D): cache it per
        # loss *fingerprint* so repeated queries (cycling/adaptive analysts,
        # or a serving layer rebuilding equal loss objects) pay one
        # data-side minimization, not one per round. Fingerprint keys also
        # survive snapshot/restore, unlike object identity; the LRU bound
        # keeps long-lived serving sessions from growing without limit.
        self._data_minima: OrderedDict[str, MinimizeResult] = OrderedDict()
        # Fallback for losses whose state cannot be fingerprinted (e.g.
        # stored callables): identity-keyed, GC-bound, never serialized.
        self._data_minima_by_identity = weakref.WeakKeyDictionary()

    # -- public state ---------------------------------------------------------

    @property
    def hypothesis(self) -> Histogram:
        """The current public hypothesis ``Dhat_t`` (safe to release)."""
        return self._hypothesis

    @property
    def queries_answered(self) -> int:
        """How many queries have been answered so far."""
        return len(self._answers)

    @property
    def updates_performed(self) -> int:
        """How many MW updates (``top`` rounds) have occurred."""
        return self._updates

    @property
    def halted(self) -> bool:
        """Whether the update budget ``T`` is exhausted (Figure 3 halts)."""
        return self._sparse_vector.halted

    @property
    def history(self) -> list[dict]:
        """Per-update diagnostics (update index, loss name, error query)."""
        return list(self._history)

    def privacy_guarantee(self) -> PrivacyParameters:
        """Theorem 3.9's total: SV ``(eps/2, delta/2)`` + T-fold oracle calls.

        Computed from the *actual* schedule: the sparse vector's budget plus
        the advanced composition of up to ``T`` oracle calls at
        ``(eps0, delta0)``. The first-order term of the composition is
        exactly ``eps/2``; the second-order term ``2 T eps0^2 =
        eps^2 / (4 log(4/delta))`` makes the reported total exceed ``eps``
        by a factor ``1 + O(eps / log(1/delta))`` — the same constant-level
        slack present in the paper's own invocation of Theorem 3.10.
        """
        oracle_part = advanced_composition(
            self.config.oracle_epsilon, self.config.oracle_delta,
            self.config.max_updates, self.config.delta / 4.0,
        )
        return PrivacyParameters(
            epsilon=self.config.sv_epsilon + oracle_part.epsilon,
            delta=self.config.sv_delta + oracle_part.delta,
        )

    # -- answering ---------------------------------------------------------------

    def answer(self, loss: LossFunction) -> PMWAnswer:
        """Answer one CM query (one iteration of Figure 3's loop)."""
        if self.halted:
            raise MechanismHalted(
                f"PMW exhausted its update budget T={self.config.max_updates}; "
                f"remaining queries can be served from .hypothesis via "
                f"answer_from_hypothesis()"
            )
        self._check_loss(loss)
        # Pre-flight the armed budget before any private work: if this
        # round came back `top` we could not afford the oracle call, and
        # raising after the fact would burn an update slot per retry and
        # corrupt the round. Refusing here also skips the two inner
        # minimizations a doomed round would otherwise pay for
        # (hypothesis answers remain available).
        self.accountant.preflight(self.config.oracle_epsilon,
                                  self.config.oracle_delta,
                                  label=f"oracle:{loss.name}")
        index = len(self._answers)

        try:
            key = loss.fingerprint()
        except LossSpecificationError:
            # Custom losses with unfingerprintable state (e.g. stored
            # callables) still answer fine — they fall back to the
            # identity-keyed cache, like the pre-fingerprint behaviour.
            key = None
        cached = (self._data_minima.get(key) if key is not None
                  else self._data_minima_by_identity.get(loss))
        breakdown = database_error(loss, self._data_histogram,
                                   self._hypothesis,
                                   solver_steps=self.solver_steps,
                                   data_result=cached)
        if cached is not None:
            if key is not None:
                self._data_minima.move_to_end(key)
        elif key is not None:
            self._data_minima[key] = MinimizeResult(
                breakdown.data_minimizer, breakdown.optimal_loss_on_data,
                exact=False,
            )
            while len(self._data_minima) > self.DATA_MINIMA_LIMIT:
                self._data_minima.popitem(last=False)
        else:
            self._data_minima_by_identity[loss] = MinimizeResult(
                breakdown.data_minimizer, breakdown.optimal_loss_on_data,
                exact=False,
            )
        sv_answer = self._sparse_vector.process(breakdown.error)

        if not sv_answer.above:
            answer = PMWAnswer(theta=breakdown.hypothesis_minimizer,
                               from_update=False, query_index=index)
            self._answers.append(answer)
            return answer

        theta_oracle = self._oracle.answer(loss, self._dataset,
                                           rng=self._oracle_rng)
        theta_oracle = loss.domain.project(np.asarray(theta_oracle, dtype=float))
        self.accountant.spend(self.config.oracle_epsilon,
                              self.config.oracle_delta,
                              label=f"oracle:{loss.name}")
        certificate = dual_certificate(
            loss, self._hypothesis, theta_oracle,
            theta_hat=breakdown.hypothesis_minimizer,
            solver_steps=self.solver_steps,
        )
        self._hypothesis = mw_step(self._hypothesis, certificate,
                                   self.config.eta, self.config.scale)
        update_index = self._updates
        self._updates += 1
        self._history.append({
            "update_index": update_index,
            "query_index": index,
            "loss": loss.name,
            "error_query": breakdown.error,
            "certificate_hypothesis_inner": certificate.hypothesis_inner,
        })
        answer = PMWAnswer(theta=theta_oracle, from_update=True,
                           query_index=index, update_index=update_index)
        self._answers.append(answer)
        return answer

    def prewarm(self, losses) -> int:
        """Batch-populate the data-side minimization cache via the engine.

        ``min_theta l(theta; D)`` depends only on ``(loss, D)``, so a whole
        batch of pending queries can pay for it up front in one vectorized
        pass (:func:`repro.engine.batch_data_minima`): closed-form families
        collapse into shared moment computations instead of one
        universe-sized solve per query. Purely an evaluation-order change —
        no privacy event happens here, the cached values are exactly what
        :meth:`answer` would have computed lazily, and unfingerprintable or
        non-loss queries are skipped (they keep their scalar path).

        Returns the number of cache entries added.
        """
        from repro.engine import batch_data_minima

        fresh: list[LossFunction] = []
        seen: set[str] = set()
        cached_needed = 0
        for loss in losses:
            if not isinstance(loss, LossFunction):
                continue
            try:
                key = loss.fingerprint()
            except LossSpecificationError:
                continue
            if key in seen:
                continue
            seen.add(key)
            if key in self._data_minima:
                # Mark the entry hot: this stream is about to use it, and
                # the eviction below must drop genuinely cold keys, not
                # ones the incoming lane still needs.
                self._data_minima.move_to_end(key)
                cached_needed += 1
                continue
            fresh.append(loss)
        # Never compute more than the cache can hold alongside the lane's
        # already-cached entries: anything past the LRU bound would be
        # evicted before the stream reaches it and solved again lazily —
        # keeping the stream prefix means the first queries to run are
        # exactly the ones warmed.
        fresh = fresh[:max(0, self.DATA_MINIMA_LIMIT - cached_needed)]
        if not fresh:
            return 0
        results = batch_data_minima(fresh, self._data_histogram,
                                    solver_steps=self.solver_steps)
        for loss, result in zip(fresh, results):
            # Stored exactly as answer() stores its lazy computation
            # (exact=False: cache entries round-trip through snapshots,
            # which do not persist the exactness of the original dispatch).
            self._data_minima[loss.fingerprint()] = MinimizeResult(
                result.theta, result.value, exact=False,
            )
        while len(self._data_minima) > self.DATA_MINIMA_LIMIT:
            self._data_minima.popitem(last=False)
        return len(fresh)

    def answer_all(self, losses, *, on_halt: str = "raise",
                   prewarm: bool = True) -> list[PMWAnswer]:
        """Answer a sequence of CM queries.

        ``on_halt`` controls behaviour if the update budget — or an armed
        accountant budget — runs out mid-stream: ``"raise"`` propagates
        :class:`MechanismHalted` / :class:`PrivacyBudgetExhausted`
        (Figure 3's behaviour); ``"hypothesis"`` serves the remaining
        queries from the final public hypothesis (pure post-processing,
        still ``(eps, delta)``-DP, but without the per-query accuracy
        certificate).

        ``prewarm`` (default on) runs the batch through
        :meth:`prewarm` first, so data-side minimizations are computed in
        one vectorized engine pass instead of lazily per round.
        """
        if on_halt not in ("raise", "hypothesis"):
            raise ValidationError(
                f"on_halt must be 'raise' or 'hypothesis', got {on_halt!r}"
            )
        losses = list(losses)
        # Pre-warming is dead work when no paid round can run: a halted
        # mechanism serves everything from the hypothesis (or raises
        # immediately), and an exhausted armed budget makes every round
        # refuse at preflight before reading the data-side minima.
        if prewarm and not self.halted:
            try:
                self.accountant.preflight(self.config.oracle_epsilon,
                                          self.config.oracle_delta,
                                          label="prewarm")
            except PrivacyBudgetExhausted:
                pass
            else:
                self.prewarm(losses)
        answers = []
        for loss in losses:
            if self.halted:
                if on_halt == "raise":
                    raise MechanismHalted(
                        "update budget exhausted before the query stream ended"
                    )
                answers.append(self.answer_from_hypothesis(loss))
                continue
            try:
                answers.append(self.answer(loss))
            except PrivacyBudgetExhausted:
                if on_halt == "raise":
                    raise
                answers.append(self.answer_from_hypothesis(loss))
        return answers

    def answer_from_hypothesis(self, loss: LossFunction) -> PMWAnswer:
        """Answer from the public hypothesis only (no privacy cost)."""
        self._check_loss(loss)
        index = len(self._answers)
        theta = minimize_loss(loss, self._hypothesis,
                              steps=self.solver_steps).theta
        answer = PMWAnswer(theta=theta, from_update=False, query_index=index)
        self._answers.append(answer)
        return answer

    def synthetic_dataset(self, n: int, rng=None) -> Dataset:
        """Sample a synthetic dataset from the final hypothesis.

        Section 4.3 notes the mechanism "can be modified to output a
        synthetic dataset (namely, the final histogram)". Sampling from
        the public hypothesis is post-processing, hence free of privacy
        cost.
        """
        indices = self._hypothesis.sample_indices(n, rng=rng)
        return Dataset(self._dataset.universe, indices)

    # -- snapshot / restore ------------------------------------------------------

    SNAPSHOT_FORMAT = "repro.pmw_cm/v1"

    def snapshot(self) -> dict:
        """Full mechanism state as a JSON-serializable dict.

        Contains everything *except* the private dataset and the oracle:
        the schedule targets, the public hypothesis, answers, history, the
        sparse-vector interaction state, rng states, the accountant's spend
        journal, and the data-side minimization cache. Restoring via
        :meth:`restore` with the same dataset and oracle continues the run
        bit-for-bit. Snapshots include internal noise state and data-side
        minima, so they are server-side artifacts, not public releases.
        """
        config = self.config
        return {
            "format": self.SNAPSHOT_FORMAT,
            "config": {
                "alpha": config.alpha, "beta": config.beta,
                "epsilon": config.epsilon, "delta": config.delta,
                "scale": config.scale, "universe_size": config.universe_size,
                "schedule": config.schedule,
                "max_updates": config.max_updates,
            },
            "solver_steps": self.solver_steps,
            "noise_multiplier": self._sparse_vector.noise_multiplier,
            "shards": self.shards,
            "histogram_workers": self.histogram_workers,
            "hypothesis_weights": self._hypothesis.weights.tolist(),
            "updates": self._updates,
            "history": [dict(entry) for entry in self._history],
            "answers": [
                {
                    "theta": answer.theta.tolist(),
                    "from_update": answer.from_update,
                    "query_index": answer.query_index,
                    "update_index": answer.update_index,
                }
                for answer in self._answers
            ],
            "sparse_vector": self._sparse_vector.state_dict(),
            "oracle_rng_state": self._oracle_rng.bit_generator.state,
            "accountant": {
                "records": self.accountant.to_records(),
                "epsilon_budget": self.accountant.epsilon_budget,
                "delta_budget": self.accountant.delta_budget,
            },
            "data_minima": {
                key: {
                    "theta": result.theta.tolist(),
                    "value": result.value,
                    "exact": result.exact,
                }
                for key, result in self._data_minima.items()
            },
        }

    @classmethod
    def restore(cls, snapshot: dict, dataset: Dataset,
                oracle: SingleQueryOracle, *, rng=None) -> "PrivateMWConvex":
        """Rebuild a mechanism from :meth:`snapshot` output.

        The private dataset and the oracle are supplied by the caller (they
        are never serialized); the snapshot must have been taken against a
        dataset over the same universe.
        """
        if snapshot.get("format") != cls.SNAPSHOT_FORMAT:
            raise ValidationError(
                f"unrecognized snapshot format {snapshot.get('format')!r}; "
                f"expected {cls.SNAPSHOT_FORMAT!r}"
            )
        config = snapshot["config"]
        if dataset.universe.size != config["universe_size"]:
            raise ValidationError(
                f"snapshot was taken over a universe of size "
                f"{config['universe_size']}, dataset has "
                f"{dataset.universe.size}"
            )
        mechanism = cls(
            dataset, oracle,
            scale=config["scale"], alpha=config["alpha"],
            beta=config["beta"], epsilon=config["epsilon"],
            delta=config["delta"], schedule=config["schedule"],
            max_updates=config["max_updates"],
            solver_steps=snapshot["solver_steps"],
            noise_multiplier=snapshot["noise_multiplier"],
            shards=snapshot.get("shards"),
            histogram_workers=snapshot.get("histogram_workers"),
            rng=rng,
        )
        mechanism._hypothesis = hypothesis_histogram(
            dataset.universe,
            np.asarray(snapshot["hypothesis_weights"], dtype=float),
            shards=snapshot.get("shards"),
            workers=snapshot.get("histogram_workers"),
        )
        mechanism._updates = int(snapshot["updates"])
        mechanism._history = [dict(entry) for entry in snapshot["history"]]
        mechanism._answers = [
            PMWAnswer(
                theta=np.asarray(record["theta"], dtype=float),
                from_update=bool(record["from_update"]),
                query_index=int(record["query_index"]),
                update_index=record["update_index"],
            )
            for record in snapshot["answers"]
        ]
        mechanism._sparse_vector.load_state_dict(snapshot["sparse_vector"])
        mechanism._oracle_rng.bit_generator.state = snapshot["oracle_rng_state"]
        # The fresh __init__ registered the sparse-vector spend; the journal
        # already contains it, so replace rather than append.
        mechanism.accountant = restore_accountant(snapshot["accountant"])
        mechanism._data_minima = OrderedDict(
            (key, MinimizeResult(
                np.asarray(record["theta"], dtype=float),
                float(record["value"]), bool(record["exact"]),
            ))
            for key, record in snapshot["data_minima"].items()
        )
        return mechanism

    # -- internals -------------------------------------------------------------

    def _check_loss(self, loss: LossFunction) -> None:
        if loss.domain.dim < 1:
            raise LossSpecificationError(f"{loss.name}: invalid domain")
        try:
            bound = loss.scale_bound()
        except LossSpecificationError:
            return  # no declared bound: trust the caller's family scale
        if bound > self.config.scale * (1.0 + 1e-6):
            raise LossSpecificationError(
                f"{loss.name}: scale bound {bound:.6g} exceeds the family "
                f"scale S={self.config.scale:.6g} this mechanism was "
                f"calibrated for; privacy calibration would be invalid"
            )
