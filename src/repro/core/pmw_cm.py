"""Online Private Multiplicative Weights for CM queries (Figure 3).

:class:`PrivateMWConvex` is the paper's mechanism. It answers an adaptively
chosen stream of convex-minimization queries on a private dataset:

1. Maintain a public hypothesis histogram ``Dhat`` (initially uniform).
2. For each incoming loss ``l_j``, compute the error query
   ``q_j(D) = err_{l_j}(D, Dhat)`` (Definition 2.3; sensitivity ``3S/n``)
   and feed it to the online sparse-vector algorithm.
3. On ``bottom``: the hypothesis already answers well — return
   ``argmin_theta l_j(theta; Dhat)``, at zero privacy cost.
4. On ``top``: call the single-query oracle ``A'`` at the per-round budget
   ``(eps0, delta0)`` to obtain ``theta_t``, return it, extract the
   dual-certificate vector ``u_t`` (Claim 3.5), and apply the MW update.
5. The bounded-regret argument caps updates at ``T``; privacy is the
   composition of the sparse vector (``eps/2, delta/2``) with the ``T``
   oracle calls (``eps/2, delta/2`` via Theorem 3.10) — Theorem 3.9.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.core.accuracy import DatabaseErrorBreakdown, database_error
from repro.core.config import PMWConfig
from repro.core.update import dual_certificate, mw_step, mw_step_inplace
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram, hypothesis_core
from repro.data.sharded import hypothesis_histogram
from repro.dp.accountant import PrivacyAccountant, restore_accountant
from repro.dp.composition import PrivacyParameters, advanced_composition
from repro.dp.sparse_vector import SparseVector
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import (
    LossSpecificationError,
    MechanismHalted,
    PrivacyBudgetExhausted,
    ValidationError,
)
from repro.losses.base import LossFunction
from repro.obs import trace
from repro.optimize.minimize import MinimizeResult, minimize_loss
from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class PMWAnswer:
    """One answered CM query.

    Attributes
    ----------
    theta:
        The released parameter ``theta_hat_j``.
    from_update:
        ``True`` if this query triggered an oracle call and MW update
        (sparse vector said ``top``); ``False`` if it was answered from
        the public hypothesis.
    query_index:
        0-based position in the query stream.
    update_index:
        The update round ``t`` (0-based) if ``from_update``, else ``None``.
    """

    theta: np.ndarray
    from_update: bool
    query_index: int
    update_index: int | None = None


class PrivateMWConvex:
    """The Figure 3 mechanism.

    Class attributes
    ----------------
    DATA_MINIMA_LIMIT:
        LRU bound on the per-mechanism cache of data-side minimizations
        (one entry per distinct loss fingerprint). Eviction only costs a
        recomputation; correctness is unaffected.
    ROUND_CACHE_LIMIT:
        LRU bound on the per-round breakdown cache, keyed by
        ``(loss fingerprint, hypothesis version)``. A repeated query at
        an unchanged hypothesis replays the whole round evaluation —
        solver, loss-on-data pass, error query — from this cache. The
        cache is cleared on every MW update (all entries are for a stale
        version by construction).

    Parameters
    ----------
    dataset:
        The private dataset ``D``.
    oracle:
        A :class:`SingleQueryOracle`; it is re-budgeted to the per-round
        ``(eps0, delta0)`` derived by the schedule.
    scale:
        The family scale bound ``S`` (every submitted loss must satisfy
        ``loss.scale_bound() <= scale``; violations raise).
    alpha, beta:
        Accuracy target of Definition 2.4.
    epsilon, delta:
        Total privacy budget (Theorem 3.9's guarantee).
    schedule:
        ``"paper"`` or ``"calibrated"`` — see :class:`PMWConfig`.
    max_updates:
        Optional override of the update budget ``T``.
    solver_steps:
        Iteration budget for inner (non-private) minimizations.
    noise_multiplier:
        Forwarded to the sparse vector; values below 1 void the formal
        privacy guarantee (ablations only).
    versioned_core:
        ``True`` (default) keeps the hypothesis in the version-stamped
        log-domain accumulator (:class:`~repro.data.log_histogram.LogHistogram`):
        MW updates are in-place accumulations, repeated queries at an
        unchanged version replay their full round evaluation from cache,
        and hypothesis-side solves warm-start from the previous round.
        ``False`` is the legacy immutable-histogram path (one fresh
        histogram and one cold solve per round) — kept for ablations and
        the hot-loop benchmark baseline.
    warm_start:
        With the versioned core, seed each hypothesis-side solve from the
        same query's previous minimizer at a reduced step budget
        (``solver_steps // 4``, at least 25). Purely an inner-solver
        change: answers remain valid minimizers, just reached cheaper.
    backend:
        Numeric :class:`~repro.backend.base.ArrayBackend` (instance or
        registered name) running the MW hot path. ``None`` resolves via
        ``REPRO_BACKEND`` to the bitwise-default NumPy backend.
        Accelerated backends keep released answers within the documented
        ``1e-6`` agreement band; snapshots remain backend-independent
        ``float64``.
    rng:
        Seed or generator; split into independent streams for the sparse
        vector and the oracle.
    """

    DATA_MINIMA_LIMIT = 1024
    ROUND_CACHE_LIMIT = 256
    #: How many versions old a warm start may be and still justify the
    #: reduced step budget. One MW step moves the hypothesis by at most
    #: O(eta) in total variation; across many steps that bound (and the
    #: near-solution argument with it) decays, so staler starts keep the
    #: full budget (still seeded — a start can only improve best-seen).
    WARM_STALENESS_LIMIT = 4

    def __init__(self, dataset: Dataset, oracle: SingleQueryOracle, *,
                 scale: float, alpha: float, beta: float = 0.05,
                 epsilon: float = 1.0, delta: float = 1e-6,
                 schedule: str = "calibrated", max_updates: int | None = None,
                 solver_steps: int = 400, noise_multiplier: float = 1.0,
                 shards: int | None = None,
                 histogram_workers: int | None = None,
                 versioned_core: bool = True, warm_start: bool = True,
                 backend: str | ArrayBackend | None = None,
                 rng=None) -> None:
        self._dataset = dataset
        self._data_histogram = dataset.histogram()  # private: never released
        self.config = PMWConfig.from_targets(
            alpha=alpha, beta=beta, epsilon=epsilon, delta=delta,
            scale=scale, universe_size=dataset.universe.size,
            schedule=schedule, max_updates=max_updates,
        )
        self.solver_steps = int(solver_steps)
        if self.solver_steps < 1:
            raise ValidationError("solver_steps must be >= 1")

        sv_rng, oracle_rng = spawn_generators(rng, 2)
        self._oracle_rng = oracle_rng
        self.accountant = PrivacyAccountant()
        self._sparse_vector = SparseVector(
            alpha=self.config.alpha,
            sensitivity=self.config.sensitivity(dataset.n),
            epsilon=self.config.sv_epsilon,
            delta=self.config.sv_delta,
            max_above=self.config.max_updates,
            rng=sv_rng,
            noise_multiplier=noise_multiplier,
            accountant=self.accountant,
        )
        self._oracle = oracle.with_budget(self.config.oracle_epsilon,
                                          self.config.oracle_delta)
        self.shards = shards
        self.histogram_workers = histogram_workers
        self.versioned_core = bool(versioned_core)
        self.warm_start = bool(warm_start) and self.versioned_core
        self.warm_solver_steps = max(1, min(self.solver_steps,
                                            max(25, self.solver_steps // 4)))
        self._backend = resolve_backend(backend)
        self.backend_name = self._backend.name
        if self.versioned_core:
            self._core: LogHistogram | None = hypothesis_core(
                dataset.universe, shards=shards, workers=histogram_workers,
                backend=self._backend)
            self._hypothesis = None
        else:
            self._core = None
            self._hypothesis = hypothesis_histogram(
                dataset.universe, shards=shards, workers=histogram_workers,
                backend=self._backend)
        # Whole-round evaluations keyed by (loss fingerprint, hypothesis
        # version): a no-update round re-asking a known query skips the
        # hypothesis solve, the loss-on-data pass, and the error query
        # entirely. Cleared on every update (the version moved).
        self._round_cache: OrderedDict[tuple[str, int],
                                       DatabaseErrorBreakdown] = OrderedDict()
        # Hypothesis-side solves alone, same keying: also hit by
        # hypothesis-only answers (post-halt streams), which never build
        # a full round breakdown.
        self._hypothesis_minima: OrderedDict[tuple[str, int],
                                             MinimizeResult] = OrderedDict()
        # Previous hypothesis-side minimizer per fingerprint, stored with
        # the version it was solved at; used to warm-start later solves
        # (survives updates — that is the point: the hypothesis moves
        # little per MW step). The reduced step budget applies only when
        # the start is at most WARM_STALENESS_LIMIT versions old;
        # staler starts still seed the solver but keep the full budget.
        self._warm_starts: OrderedDict[str,
                                       tuple[int, np.ndarray]] = OrderedDict()
        # The current serving lane's closed-form-batchable losses, keyed
        # by fingerprint (registered by prewarm, replaced per lane): on a
        # hypothesis-minima miss for any lane member, the *whole* lane's
        # hypothesis solves at the current version collapse into one
        # shared-moment engine pass instead of one solve per round.
        self._lane_minima: OrderedDict[str, LossFunction] = OrderedDict()
        self._answers: list[PMWAnswer] = []
        self._updates = 0
        self._history: list[dict] = []
        # min_theta l(theta; D) depends only on (loss, D): cache it per
        # loss *fingerprint* so repeated queries (cycling/adaptive analysts,
        # or a serving layer rebuilding equal loss objects) pay one
        # data-side minimization, not one per round. Fingerprint keys also
        # survive snapshot/restore, unlike object identity; the LRU bound
        # keeps long-lived serving sessions from growing without limit.
        self._data_minima: OrderedDict[str, MinimizeResult] = OrderedDict()
        # Fallback for losses whose state cannot be fingerprinted (e.g.
        # stored callables): identity-keyed, GC-bound, never serialized.
        self._data_minima_by_identity = weakref.WeakKeyDictionary()

    # -- public state ---------------------------------------------------------

    @property
    def hypothesis(self) -> Histogram:
        """The current public hypothesis ``Dhat_t`` (safe to release).

        With the versioned core this is a frozen (immutable) view,
        cached per version — repeated reads between updates return the
        same object.
        """
        if self._core is not None:
            return self._core.freeze()
        return self._hypothesis

    @property
    def hypothesis_version(self) -> int:
        """Monotone version of the public hypothesis.

        Bumped exactly once per MW update; equal versions mean the
        identical distribution. The serving layer's update-aware answer
        cache and the engine's versioned evaluators key on this. The
        legacy (non-versioned) path reports the update count, which
        bumps at the same moments.
        """
        if self._core is not None:
            return self._core.version
        return self._updates

    @property
    def queries_answered(self) -> int:
        """How many queries have been answered so far."""
        return len(self._answers)

    @property
    def updates_performed(self) -> int:
        """How many MW updates (``top`` rounds) have occurred."""
        return self._updates

    @property
    def halted(self) -> bool:
        """Whether the update budget ``T`` is exhausted (Figure 3 halts)."""
        return self._sparse_vector.halted

    @property
    def svt_hard_queries(self) -> int:
        """Sparse-vector above-threshold ("hard") answers so far — each
        one consumed an update slot. Published as the
        ``mechanism.svt_hard_queries`` telemetry gauge."""
        return self._sparse_vector.above_count

    @property
    def svt_queries_asked(self) -> int:
        """Queries the sparse-vector interaction has judged so far."""
        return self._sparse_vector.queries_asked

    @property
    def history(self) -> list[dict]:
        """Per-update diagnostics (update index, loss name, error query)."""
        return list(self._history)

    def privacy_guarantee(self) -> PrivacyParameters:
        """Theorem 3.9's total: SV ``(eps/2, delta/2)`` + T-fold oracle calls.

        Computed from the *actual* schedule: the sparse vector's budget plus
        the advanced composition of up to ``T`` oracle calls at
        ``(eps0, delta0)``. The first-order term of the composition is
        exactly ``eps/2``; the second-order term ``2 T eps0^2 =
        eps^2 / (4 log(4/delta))`` makes the reported total exceed ``eps``
        by a factor ``1 + O(eps / log(1/delta))`` — the same constant-level
        slack present in the paper's own invocation of Theorem 3.10.
        """
        oracle_part = advanced_composition(
            self.config.oracle_epsilon, self.config.oracle_delta,
            self.config.max_updates, self.config.delta / 4.0,
        )
        return PrivacyParameters(
            epsilon=self.config.sv_epsilon + oracle_part.epsilon,
            delta=self.config.sv_delta + oracle_part.delta,
        )

    # -- answering ---------------------------------------------------------------

    def answer(self, loss: LossFunction) -> PMWAnswer:
        """Answer one CM query (one iteration of Figure 3's loop)."""
        if self.halted:
            raise MechanismHalted(
                f"PMW exhausted its update budget T={self.config.max_updates}; "
                f"remaining queries can be served from .hypothesis via "
                f"answer_from_hypothesis()"
            )
        self._check_loss(loss)
        # Pre-flight the armed budget before any private work: if this
        # round came back `top` we could not afford the oracle call, and
        # raising after the fact would burn an update slot per retry and
        # corrupt the round. Refusing here also skips the two inner
        # minimizations a doomed round would otherwise pay for
        # (hypothesis answers remain available).
        self.accountant.preflight(self.config.oracle_epsilon,
                                  self.config.oracle_delta,
                                  label=f"oracle:{loss.name}")
        index = len(self._answers)

        # Custom losses with unfingerprintable state (e.g. stored
        # callables) still answer fine — they fall back to the
        # identity-keyed cache, like the pre-fingerprint behaviour.
        with trace.span("mechanism.fingerprint"):
            key = self._loss_key(loss)
        cached = (self._data_minima.get(key) if key is not None
                  else self._data_minima_by_identity.get(loss))
        breakdown = self._round_breakdown(loss, key, cached)
        if cached is not None:
            if key is not None:
                self._data_minima.move_to_end(key)
        elif key is not None:
            self._data_minima[key] = MinimizeResult(
                breakdown.data_minimizer, breakdown.optimal_loss_on_data,
                exact=False,
            )
            while len(self._data_minima) > self.DATA_MINIMA_LIMIT:
                self._data_minima.popitem(last=False)
        else:
            self._data_minima_by_identity[loss] = MinimizeResult(
                breakdown.data_minimizer, breakdown.optimal_loss_on_data,
                exact=False,
            )
        with trace.span("mechanism.svt"):
            sv_answer = self._sparse_vector.process(breakdown.error)

        if not sv_answer.above:
            answer = PMWAnswer(theta=breakdown.hypothesis_minimizer,
                               from_update=False, query_index=index)
            self._answers.append(answer)
            return answer

        with trace.span("mechanism.mw_update", loss=loss.name):
            theta_oracle = self._oracle.answer(loss, self._dataset,
                                               rng=self._oracle_rng)
            theta_oracle = loss.domain.project(
                np.asarray(theta_oracle, dtype=float))
            self.accountant.spend(self.config.oracle_epsilon,
                                  self.config.oracle_delta,
                                  label=f"oracle:{loss.name}")
            certificate = dual_certificate(
                loss, self.hypothesis, theta_oracle,
                theta_hat=breakdown.hypothesis_minimizer,
                solver_steps=self.solver_steps,
            )
            if self._core is not None:
                mw_step_inplace(self._core, certificate,
                                self.config.eta, self.config.scale)
                # Every cached round evaluation is for the old version now.
                self._round_cache.clear()
                self._hypothesis_minima.clear()
            else:
                self._hypothesis = mw_step(self._hypothesis, certificate,
                                           self.config.eta,
                                           self.config.scale)
        update_index = self._updates
        self._updates += 1
        self._history.append({
            "update_index": update_index,
            "query_index": index,
            "loss": loss.name,
            "error_query": breakdown.error,
            "certificate_hypothesis_inner": certificate.hypothesis_inner,
        })
        answer = PMWAnswer(theta=theta_oracle, from_update=True,
                           query_index=index, update_index=update_index)
        self._answers.append(answer)
        return answer

    def prewarm(self, losses) -> int:
        """Batch-populate the data-side minimization cache via the engine.

        ``min_theta l(theta; D)`` depends only on ``(loss, D)``, so a whole
        batch of pending queries can pay for it up front in one vectorized
        pass (:func:`repro.engine.batch_data_minima`): closed-form families
        collapse into shared moment computations instead of one
        universe-sized solve per query. Purely an evaluation-order change —
        no privacy event happens here, the cached values are exactly what
        :meth:`answer` would have computed lazily, and unfingerprintable or
        non-loss queries are skipped (they keep their scalar path).

        The lane is also registered for hypothesis-side batching: the
        first hypothesis-minima miss for any lane member batch-solves
        the whole lane at the current hypothesis version through the
        same engine pass (see :meth:`_batch_hypothesis_minima`) — that
        is how a coalesced gateway batch converts queue pressure into
        the batched-kernel fast path end to end.

        Returns the number of cache entries added.
        """
        from repro.engine import batch_data_minima, closed_form_minima

        self._lane_minima = OrderedDict()
        if self._core is not None:
            for loss in closed_form_minima(
                    [q for q in losses if isinstance(q, LossFunction)],
                    universe=self._data_histogram.universe):
                key = self._loss_key(loss)
                if key is not None and len(self._lane_minima) < \
                        self.ROUND_CACHE_LIMIT:
                    self._lane_minima.setdefault(key, loss)

        fresh: list[LossFunction] = []
        seen: set[str] = set()
        cached_needed = 0
        for loss in losses:
            if not isinstance(loss, LossFunction):
                continue
            try:
                key = loss.fingerprint()
            except LossSpecificationError:
                continue
            if key in seen:
                continue
            seen.add(key)
            if key in self._data_minima:
                # Mark the entry hot: this stream is about to use it, and
                # the eviction below must drop genuinely cold keys, not
                # ones the incoming lane still needs.
                self._data_minima.move_to_end(key)
                cached_needed += 1
                continue
            fresh.append(loss)
        # Never compute more than the cache can hold alongside the lane's
        # already-cached entries: anything past the LRU bound would be
        # evicted before the stream reaches it and solved again lazily —
        # keeping the stream prefix means the first queries to run are
        # exactly the ones warmed.
        fresh = fresh[:max(0, self.DATA_MINIMA_LIMIT - cached_needed)]
        if not fresh:
            return 0
        results = batch_data_minima(fresh, self._data_histogram,
                                    solver_steps=self.solver_steps)
        for loss, result in zip(fresh, results):
            # Stored exactly as answer() stores its lazy computation
            # (exact=False: cache entries round-trip through snapshots,
            # which do not persist the exactness of the original dispatch).
            self._data_minima[loss.fingerprint()] = MinimizeResult(
                result.theta, result.value, exact=False,
            )
        while len(self._data_minima) > self.DATA_MINIMA_LIMIT:
            self._data_minima.popitem(last=False)
        return len(fresh)

    def answer_all(self, losses, *, on_halt: str = "raise",
                   prewarm: bool = True) -> list[PMWAnswer]:
        """Answer a sequence of CM queries.

        ``on_halt`` controls behaviour if the update budget — or an armed
        accountant budget — runs out mid-stream: ``"raise"`` propagates
        :class:`MechanismHalted` / :class:`PrivacyBudgetExhausted`
        (Figure 3's behaviour); ``"hypothesis"`` serves the remaining
        queries from the final public hypothesis (pure post-processing,
        still ``(eps, delta)``-DP, but without the per-query accuracy
        certificate).

        ``prewarm`` (default on) runs the batch through
        :meth:`prewarm` first, so data-side minimizations are computed in
        one vectorized engine pass instead of lazily per round.
        """
        if on_halt not in ("raise", "hypothesis"):
            raise ValidationError(
                f"on_halt must be 'raise' or 'hypothesis', got {on_halt!r}"
            )
        losses = list(losses)
        # Pre-warming is dead work when no paid round can run: a halted
        # mechanism serves everything from the hypothesis (or raises
        # immediately), and an exhausted armed budget makes every round
        # refuse at preflight before reading the data-side minima.
        if prewarm and not self.halted:
            try:
                self.accountant.preflight(self.config.oracle_epsilon,
                                          self.config.oracle_delta,
                                          label="prewarm")
            except PrivacyBudgetExhausted:
                pass
            else:
                self.prewarm(losses)
        answers = []
        for loss in losses:
            if self.halted:
                if on_halt == "raise":
                    raise MechanismHalted(
                        "update budget exhausted before the query stream ended"
                    )
                answers.append(self.answer_from_hypothesis(loss))
                continue
            try:
                answers.append(self.answer(loss))
            except PrivacyBudgetExhausted:
                if on_halt == "raise":
                    raise
                answers.append(self.answer_from_hypothesis(loss))
        return answers

    def answer_from_hypothesis(self, loss: LossFunction) -> PMWAnswer:
        """Answer from the public hypothesis only (no privacy cost).

        Shares the round cache and warm starts with :meth:`answer`: a
        query whose round was already evaluated at the current version
        replays its minimizer without touching the solver.
        """
        self._check_loss(loss)
        index = len(self._answers)
        key = self._loss_key(loss)
        hit = self._round_cache_get(key)
        if hit is not None:
            theta = hit.hypothesis_minimizer
        else:
            theta = self._minimize_on_hypothesis(loss, key).theta
        answer = PMWAnswer(theta=theta, from_update=False, query_index=index)
        self._answers.append(answer)
        return answer

    def synthetic_dataset(self, n: int, rng=None) -> Dataset:
        """Sample a synthetic dataset from the final hypothesis.

        Section 4.3 notes the mechanism "can be modified to output a
        synthetic dataset (namely, the final histogram)". Sampling from
        the public hypothesis is post-processing, hence free of privacy
        cost.
        """
        indices = self.hypothesis.sample_indices(n, rng=rng)
        return Dataset(self._dataset.universe, indices)

    # -- snapshot / restore ------------------------------------------------------

    #: Written format. v2 stores the hypothesis as the raw log-domain
    #: core state (``hypothesis_core``) for versioned mechanisms —
    #: ``hypothesis_weights`` is ``None`` there — plus warm-start and
    #: round-cache records. v1 (pre-versioned-core) snapshots are still
    #: accepted on read and restore onto the legacy immutable path.
    #: v3 run-length encodes the accountant's spend records
    #: (``to_grouped_records``: entries may carry a ``count``); the bump
    #: exists because a v2 reader would ignore ``count`` and silently
    #: under-count spent budget — it must refuse loudly instead. v1/v2
    #: snapshots (plain records) are still accepted on read.
    SNAPSHOT_FORMAT = "repro.pmw_cm/v3"
    ACCEPTED_SNAPSHOT_FORMATS = ("repro.pmw_cm/v1", "repro.pmw_cm/v2",
                                 "repro.pmw_cm/v3")

    def snapshot(self) -> dict:
        """Full mechanism state as a JSON-serializable dict.

        Contains everything *except* the private dataset and the oracle:
        the schedule targets, the public hypothesis, answers, history, the
        sparse-vector interaction state, rng states, the accountant's spend
        journal, and the data-side minimization cache. Restoring via
        :meth:`restore` with the same dataset and oracle continues the run
        bit-for-bit. Snapshots include internal noise state and data-side
        minima, so they are server-side artifacts, not public releases.
        """
        config = self.config
        return {
            "format": self.SNAPSHOT_FORMAT,
            "config": {
                "alpha": config.alpha, "beta": config.beta,
                "epsilon": config.epsilon, "delta": config.delta,
                "scale": config.scale, "universe_size": config.universe_size,
                "schedule": config.schedule,
                "max_updates": config.max_updates,
            },
            "solver_steps": self.solver_steps,
            "noise_multiplier": self._sparse_vector.noise_multiplier,
            "shards": self.shards,
            "histogram_workers": self.histogram_workers,
            "versioned_core": self.versioned_core,
            "warm_start": self.warm_start,
            # The backend is arithmetic, not state: hypothesis payloads
            # below are backend-independent float64, so a restore may
            # override it freely (or inherit it from here).
            "backend": self.backend_name,
            # Exactly one hypothesis representation is stored: the raw
            # log-domain core state (versioned path — normalized weights
            # would both double the payload and lose the deferred
            # normalization state), or the normalized weights (legacy).
            "hypothesis_weights": (self._hypothesis.weights.tolist()
                                   if self._core is None else None),
            "hypothesis_core": (self._core.state_dict()
                                if self._core is not None else None),
            "warm_starts": {
                key: {"version": version, "theta": theta.tolist()}
                for key, (version, theta) in self._warm_starts.items()
            },
            "round_cache": [
                {
                    "fingerprint": fingerprint,
                    "version": version,
                    "error": breakdown.error,
                    "hypothesis_minimizer":
                        breakdown.hypothesis_minimizer.tolist(),
                    "hypothesis_loss_on_data":
                        breakdown.hypothesis_loss_on_data,
                    "optimal_loss_on_data": breakdown.optimal_loss_on_data,
                    "data_minimizer": breakdown.data_minimizer.tolist(),
                }
                for (fingerprint, version), breakdown
                in self._round_cache.items()
            ],
            "updates": self._updates,
            "history": [dict(entry) for entry in self._history],
            "answers": [
                {
                    "theta": answer.theta.tolist(),
                    "from_update": answer.from_update,
                    "query_index": answer.query_index,
                    "update_index": answer.update_index,
                }
                for answer in self._answers
            ],
            "sparse_vector": self._sparse_vector.state_dict(),
            "oracle_rng_state": self._oracle_rng.bit_generator.state,
            "accountant": {
                "records": self.accountant.to_grouped_records(),
                "epsilon_budget": self.accountant.epsilon_budget,
                "delta_budget": self.accountant.delta_budget,
            },
            "data_minima": {
                key: {
                    "theta": result.theta.tolist(),
                    "value": result.value,
                    "exact": result.exact,
                }
                for key, result in self._data_minima.items()
            },
        }

    @classmethod
    def restore(cls, snapshot: dict, dataset: Dataset,
                oracle: SingleQueryOracle, *, rng=None,
                backend: str | ArrayBackend | None = None,
                ) -> "PrivateMWConvex":
        """Rebuild a mechanism from :meth:`snapshot` output.

        The private dataset and the oracle are supplied by the caller (they
        are never serialized); the snapshot must have been taken against a
        dataset over the same universe. ``backend`` overrides the
        snapshotted backend (hypothesis payloads are backend-independent
        ``float64``, so cross-backend restores are exact); ``None``
        inherits the snapshot's backend, defaulting to NumPy for
        pre-backend snapshots.
        """
        if snapshot.get("format") not in cls.ACCEPTED_SNAPSHOT_FORMATS:
            raise ValidationError(
                f"unrecognized snapshot format {snapshot.get('format')!r}; "
                f"expected one of {cls.ACCEPTED_SNAPSHOT_FORMATS}"
            )
        config = snapshot["config"]
        if dataset.universe.size != config["universe_size"]:
            raise ValidationError(
                f"snapshot was taken over a universe of size "
                f"{config['universe_size']}, dataset has "
                f"{dataset.universe.size}"
            )
        mechanism = cls(
            dataset, oracle,
            scale=config["scale"], alpha=config["alpha"],
            beta=config["beta"], epsilon=config["epsilon"],
            delta=config["delta"], schedule=config["schedule"],
            max_updates=config["max_updates"],
            solver_steps=snapshot["solver_steps"],
            noise_multiplier=snapshot["noise_multiplier"],
            shards=snapshot.get("shards"),
            histogram_workers=snapshot.get("histogram_workers"),
            # Pre-versioned-core snapshots carry only normalized weights;
            # restoring them onto the legacy immutable path keeps the
            # resumed run faithful to the snapshotted one.
            versioned_core=snapshot.get("versioned_core", False),
            warm_start=snapshot.get("warm_start", True),
            backend=(backend if backend is not None
                     else snapshot.get("backend")),
            rng=rng,
        )
        if mechanism._core is not None:
            # The raw log-domain accumulator (pre-normalization state and
            # version counter) restores bitwise, so a resumed run applies
            # updates to exactly the floats the original would have.
            mechanism._core = LogHistogram.from_state(
                dataset.universe, snapshot["hypothesis_core"],
                backend=mechanism._backend)
        else:
            mechanism._hypothesis = hypothesis_histogram(
                dataset.universe,
                np.asarray(snapshot["hypothesis_weights"], dtype=float),
                shards=snapshot.get("shards"),
                workers=snapshot.get("histogram_workers"),
                backend=mechanism._backend,
            )
        mechanism._warm_starts = OrderedDict(
            (key, (int(record["version"]),
                   np.asarray(record["theta"], dtype=float)))
            for key, record in snapshot.get("warm_starts", {}).items()
        )
        mechanism._round_cache = OrderedDict(
            ((record["fingerprint"], int(record["version"])),
             DatabaseErrorBreakdown(
                 error=float(record["error"]),
                 hypothesis_minimizer=np.asarray(
                     record["hypothesis_minimizer"], dtype=float),
                 hypothesis_loss_on_data=float(
                     record["hypothesis_loss_on_data"]),
                 optimal_loss_on_data=float(record["optimal_loss_on_data"]),
                 data_minimizer=np.asarray(record["data_minimizer"],
                                           dtype=float),
             ))
            for record in snapshot.get("round_cache", [])
        )
        mechanism._updates = int(snapshot["updates"])
        mechanism._history = [dict(entry) for entry in snapshot["history"]]
        mechanism._answers = [
            PMWAnswer(
                theta=np.asarray(record["theta"], dtype=float),
                from_update=bool(record["from_update"]),
                query_index=int(record["query_index"]),
                update_index=record["update_index"],
            )
            for record in snapshot["answers"]
        ]
        mechanism._sparse_vector.load_state_dict(snapshot["sparse_vector"])
        mechanism._oracle_rng.bit_generator.state = snapshot["oracle_rng_state"]
        # The fresh __init__ registered the sparse-vector spend; the journal
        # already contains it, so replace rather than append.
        mechanism.accountant = restore_accountant(snapshot["accountant"])
        mechanism._data_minima = OrderedDict(
            (key, MinimizeResult(
                np.asarray(record["theta"], dtype=float),
                float(record["value"]), bool(record["exact"]),
            ))
            for key, record in snapshot["data_minima"].items()
        )
        return mechanism

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _loss_key(loss: LossFunction) -> str | None:
        """Fingerprint, or ``None`` when the loss cannot be fingerprinted."""
        try:
            return loss.fingerprint()
        except LossSpecificationError:
            return None

    def _round_cache_get(self, key: str | None) -> DatabaseErrorBreakdown | None:
        """Current-version round cache lookup (versioned core only)."""
        if self._core is None or key is None:
            return None
        round_key = (key, self._core.version)
        hit = self._round_cache.get(round_key)
        if hit is not None:
            self._round_cache.move_to_end(round_key)
        return hit

    def _minimize_on_hypothesis(self, loss: LossFunction,
                                key: str | None) -> MinimizeResult:
        """Hypothesis-side solve, warm-started when the query was seen.

        Warm starting only changes the inner solver's trajectory — the
        returned minimizer is still a valid (projected, best-seen)
        solution on the *current* hypothesis. The previous minimizer is
        a near-solution because one MW step moves the hypothesis by at
        most ``O(eta)`` in total variation — an argument that decays
        with staleness, so the reduced step budget applies only to
        starts at most :attr:`WARM_STALENESS_LIMIT` versions old.

        Results are cached per ``(fingerprint, version)``, so repeated
        solves at an unchanged hypothesis — including post-halt
        hypothesis-only streams — cost a dictionary lookup.
        """
        minima_key = None
        if self._core is not None and key is not None:
            minima_key = (key, self._core.version)
            hit = self._hypothesis_minima.get(minima_key)
            if hit is None and key in self._lane_minima:
                # A registered lane member missed at this version: solve
                # the whole *remaining* lane's hypothesis minima in one
                # shared-moment engine pass, then re-read.
                self._batch_hypothesis_minima()
                hit = self._hypothesis_minima.get(minima_key)
            # Served entries leave the lane, so a mid-lane MW update
            # re-batches only the queries still ahead in the stream —
            # never the already-served prefix (whose re-solves would be
            # pure waste: O(lane^2) on an update-heavy stream).
            self._lane_minima.pop(key, None)
            if hit is not None:
                self._hypothesis_minima.move_to_end(minima_key)
                return hit
        start, steps = None, self.solver_steps
        if self.warm_start and key is not None:
            warm = self._warm_starts.get(key)
            if warm is not None:
                warm_version, start = warm
                staleness = self._core.version - warm_version
                if staleness <= self.WARM_STALENESS_LIMIT:
                    steps = self.warm_solver_steps
        result = minimize_loss(loss, self.hypothesis, steps=steps,
                               start=start)
        if minima_key is not None:
            self._hypothesis_minima[minima_key] = result
            while len(self._hypothesis_minima) > self.ROUND_CACHE_LIMIT:
                self._hypothesis_minima.popitem(last=False)
        if self.warm_start and key is not None:
            self._warm_starts[key] = (self._core.version, result.theta)
            self._warm_starts.move_to_end(key)
            while len(self._warm_starts) > self.DATA_MINIMA_LIMIT:
                self._warm_starts.popitem(last=False)
        return result

    def _batch_hypothesis_minima(self) -> int:
        """Batch-solve the registered lane's hypothesis minima at the
        current version (one engine pass; see :meth:`prewarm`).

        Pure post-processing of the public hypothesis — no privacy
        event, and each stored result is what the scalar closed-form
        dispatch would produce up to floating-point reassociation. An MW
        update bumps the version and the *next* lane miss re-batches the
        remaining entries, so an update-heavy prefix degrades gracefully
        toward the scalar path instead of wasting whole-lane solves.

        Returns the number of entries batch-solved (0 when the lane has
        fewer than two pending entries — the scalar path, with its
        warm-start advantage, handles singletons).
        """
        from repro.engine import batch_data_minima

        version = self._core.version
        pending = [(key, loss) for key, loss in self._lane_minima.items()
                   if (key, version) not in self._hypothesis_minima]
        if len(pending) < 2:
            return 0
        results = batch_data_minima([loss for _, loss in pending],
                                    self.hypothesis,
                                    solver_steps=self.solver_steps)
        for (key, _), result in zip(pending, results):
            self._hypothesis_minima[(key, version)] = result
            if self.warm_start:
                self._warm_starts[key] = (version, result.theta)
                self._warm_starts.move_to_end(key)
        while len(self._hypothesis_minima) > self.ROUND_CACHE_LIMIT:
            self._hypothesis_minima.popitem(last=False)
        while len(self._warm_starts) > self.DATA_MINIMA_LIMIT:
            self._warm_starts.popitem(last=False)
        return len(pending)

    def _round_breakdown(self, loss: LossFunction, key: str | None,
                         data_result) -> DatabaseErrorBreakdown:
        """One round's ``database_error``, version-cached and warm-started.

        With the versioned core, a repeated ``(fingerprint, version)``
        pair replays the cached breakdown — no solver call, no
        loss-on-data pass, no error-query recomputation. The cached
        quantities are deterministic functions of ``(loss, data,
        hypothesis version)``, so replaying them is exactly what
        recomputing would produce.
        """
        with trace.span("mechanism.cache_probe"):
            hit = self._round_cache_get(key)
        if hit is not None:
            return hit
        with trace.span("mechanism.solve", loss=loss.name):
            hypothesis_result = self._minimize_on_hypothesis(loss, key)
            breakdown = database_error(loss, self._data_histogram,
                                       self.hypothesis,
                                       solver_steps=self.solver_steps,
                                       data_result=data_result,
                                       hypothesis_result=hypothesis_result)
        if self._core is not None and key is not None:
            self._round_cache[(key, self._core.version)] = breakdown
            while len(self._round_cache) > self.ROUND_CACHE_LIMIT:
                self._round_cache.popitem(last=False)
        return breakdown

    def _check_loss(self, loss: LossFunction) -> None:
        if loss.domain.dim < 1:
            raise LossSpecificationError(f"{loss.name}: invalid domain")
        try:
            bound = loss.scale_bound()
        except LossSpecificationError:
            return  # no declared bound: trust the caller's family scale
        if bound > self.config.scale * (1.0 + 1e-6):
            raise LossSpecificationError(
                f"{loss.name}: scale bound {bound:.6g} exceeds the family "
                f"scale S={self.config.scale:.6g} this mechanism was "
                f"calibrated for; privacy calibration would be invalid"
            )
