"""Private multiplicative weights for linear queries (Hardt–Rothblum [HR10]).

The special case the paper extends, kept as a first-class baseline: it
answers Table 1's first row and gives the reference implementation the
CM mechanism's structure mirrors. Round structure (online variant):

1. ``q_j(D) = |<q_j, D> - <q_j, Dhat>|`` goes to the sparse vector
   (sensitivity ``1/n``).
2. On ``bottom``: answer ``<q_j, Dhat>`` from the public hypothesis.
3. On ``top``: release a Laplace-noised true answer, and update ``Dhat``
   multiplicatively toward it (increase weight where ``q_j`` under- or
   over-counts, by the sign of the discrepancy).

Whole streams go through the batched evaluation engine
(:mod:`repro.engine`): :meth:`PrivateMWLinear.answer_all` stacks the query
tables into one loss matrix, answers the true side with a single matvec
(the data histogram never changes), and precomputes hypothesis answers in
growing blocks — the hypothesis only changes on ``top`` rounds, so blocks
double while updates stay away and reset after one.
Large universes can shard the hypothesis (``shards=...``), running each
MW update and reduction shard-by-shard
(:class:`~repro.data.sharded.ShardedHistogram`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.core.config import PMWConfig
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram, hypothesis_core
from repro.data.sharded import hypothesis_histogram
from repro.dp.accountant import PrivacyAccountant, restore_accountant
from repro.dp.composition import per_round_budget
from repro.dp.sparse_vector import SparseVector
from repro.exceptions import (
    MechanismHalted,
    PrivacyBudgetExhausted,
    ValidationError,
)
from repro.losses.linear import LinearQuery
from repro.obs import trace
from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class LinearAnswer:
    """One answered linear query."""

    value: float
    from_update: bool
    query_index: int
    update_index: int | None = None


class PrivateMWLinear:
    """Online PMW for linear queries, parameterized like the CM mechanism.

    Parameters mirror :class:`repro.core.pmw_cm.PrivateMWConvex` with
    ``scale = 1`` (query tables live in ``[0, 1]``, so the MW directions
    are already normalized).
    """

    def __init__(self, dataset: Dataset, *, alpha: float, beta: float = 0.05,
                 epsilon: float = 1.0, delta: float = 1e-6,
                 schedule: str = "calibrated", max_updates: int | None = None,
                 noise_multiplier: float = 1.0, shards: int | None = None,
                 histogram_workers: int | None = None,
                 versioned_core: bool = True,
                 backend: str | ArrayBackend | None = None,
                 rng=None) -> None:
        self._dataset = dataset
        self._data_histogram = dataset.histogram()
        self.config = PMWConfig.from_targets(
            alpha=alpha, beta=beta, epsilon=epsilon, delta=delta,
            scale=1.0, universe_size=dataset.universe.size,
            schedule=schedule, max_updates=max_updates,
        )
        sv_rng, laplace_rng = spawn_generators(rng, 2)
        self._laplace_rng = laplace_rng
        self.accountant = PrivacyAccountant()
        self._sparse_vector = SparseVector(
            alpha=self.config.alpha,
            sensitivity=1.0 / dataset.n,
            epsilon=self.config.sv_epsilon,
            delta=self.config.sv_delta,
            max_above=self.config.max_updates,
            rng=sv_rng,
            noise_multiplier=noise_multiplier,
            accountant=self.accountant,
        )
        # Per-update Laplace measurement budget: eps/2 split across T
        # measurements by advanced composition.
        measurement = per_round_budget(self.config.sv_epsilon,
                                       self.config.sv_delta,
                                       self.config.max_updates)
        self._measurement_epsilon = measurement.epsilon
        self.shards = shards
        self.histogram_workers = histogram_workers
        self.versioned_core = bool(versioned_core)
        self._backend = resolve_backend(backend)
        self.backend_name = self._backend.name
        if self.versioned_core:
            self._core: LogHistogram | None = hypothesis_core(
                dataset.universe, shards=shards, workers=histogram_workers,
                backend=self._backend)
            self._hypothesis = None
        else:
            self._core = None
            self._hypothesis = hypothesis_histogram(
                dataset.universe, shards=shards, workers=histogram_workers,
                backend=self._backend)
        self._updates = 0
        self._queries = 0
        # Fingerprint-keyed <q, D> cache, fed by prewarm(): the data
        # histogram never changes, so a true answer computed once in a
        # batched matvec serves every later scalar round of that query.
        self._true_answers: "OrderedDict[str, float]" = OrderedDict()

    #: LRU bound on the prewarmed true-answer cache (floats, so even the
    #: bound's worth is a few hundred KB of keys — sized for safety, not
    #: memory pressure).
    TRUE_ANSWER_LIMIT = 8192

    # -- public state ---------------------------------------------------------

    @property
    def hypothesis(self) -> Histogram:
        """The current public hypothesis (a frozen per-version view when
        the versioned core is active)."""
        if self._core is not None:
            return self._core.freeze()
        return self._hypothesis

    @property
    def hypothesis_version(self) -> int:
        """Monotone hypothesis version (see
        :attr:`repro.core.pmw_cm.PrivateMWConvex.hypothesis_version`)."""
        if self._core is not None:
            return self._core.version
        return self._updates

    @property
    def updates_performed(self) -> int:
        """Number of update (``top``) rounds so far."""
        return self._updates

    @property
    def queries_answered(self) -> int:
        """Number of queries answered so far."""
        return self._queries

    @property
    def halted(self) -> bool:
        """Whether the update budget is exhausted."""
        return self._sparse_vector.halted

    @property
    def svt_hard_queries(self) -> int:
        """Sparse-vector above-threshold ("hard") answers so far — each
        one consumed an update slot. Published as the
        ``mechanism.svt_hard_queries`` telemetry gauge."""
        return self._sparse_vector.above_count

    @property
    def svt_queries_asked(self) -> int:
        """Queries the sparse-vector interaction has judged so far."""
        return self._sparse_vector.queries_asked

    # -- answering ---------------------------------------------------------------

    def answer(self, query: LinearQuery) -> LinearAnswer:
        """Answer one linear query."""
        if self.halted:
            raise MechanismHalted(
                f"PMW-linear exhausted its update budget "
                f"T={self.config.max_updates}"
            )
        self._validate_query(query)
        with trace.span("mechanism.cache_probe"):
            true_answer = self._true_answer(query)
        with trace.span("mechanism.solve"):
            hypothesis_answer = self._hypothesis_dot(query.table)
        return self._answer_given(
            query,
            true_answer=true_answer,
            hypothesis_answer=hypothesis_answer,
        )

    def _true_answer(self, query: LinearQuery) -> float:
        """``<q, D>`` — prewarmed batch value when available, else a dot.

        The cache key is the query's memoized fingerprint, so the lookup
        is an attribute read plus a dict probe for queries the serving
        layer already fingerprinted; uncached queries pay exactly the
        scalar dot they always did.
        """
        if self._true_answers:
            with trace.span("mechanism.fingerprint"):
                key = query.fingerprint()
            cached = self._true_answers.get(key)
            if cached is not None:
                self._true_answers.move_to_end(key)  # keep hot entries
                return cached
        return self._data_histogram.dot(query.table)

    def prewarm(self, queries) -> int:
        """Batch-populate the true-answer cache via the engine.

        One loss-matrix matvec (:func:`repro.engine.batch_answers`)
        computes ``<q, D>`` for every *distinct* fingerprintable
        ``LinearQuery`` in the lane, so a coalesced batch of scalar
        :meth:`answer` rounds skips its per-query data-side dot. The
        data histogram is immutable, so entries never go stale; an LRU
        bound (:attr:`TRUE_ANSWER_LIMIT`) caps memory. Pure evaluation
        reordering — no privacy event, and values agree with the scalar
        dot to floating-point reassociation (~1e-15, the same contract
        as ``answer_all``'s batched true side).

        Returns the number of fresh cache entries added.
        """
        from repro.engine import batch_answers, dedupe_by_fingerprint

        lane = [query for query in queries
                if isinstance(query, LinearQuery)
                and query.table.size == self._dataset.universe.size]
        lane_keys, uniques = dedupe_by_fingerprint(lane)
        keys: list[str] = []
        fresh: list[LinearQuery] = []
        for key, query in zip(lane_keys, uniques):
            if key in self._true_answers:
                # Mark lane-needed entries hot so the LRU eviction below
                # drops genuinely cold keys first.
                self._true_answers.move_to_end(key)
            else:
                keys.append(key)
                fresh.append(query)
        # Bound the batched work, not the admissions: fresh entries are
        # always inserted (the LRU loop below evicts cold ones to make
        # room), so a long-lived session keeps its hot working set
        # instead of freezing on whichever queries arrived first.
        keys = keys[:self.TRUE_ANSWER_LIMIT]
        fresh = fresh[:self.TRUE_ANSWER_LIMIT]
        if not fresh:
            return 0
        values = batch_answers(fresh, self._data_histogram)
        for key, value in zip(keys, values):
            self._true_answers[key] = float(value)
        while len(self._true_answers) > self.TRUE_ANSWER_LIMIT:
            self._true_answers.popitem(last=False)
        return len(fresh)

    def _hypothesis_dot(self, table: np.ndarray) -> float:
        """``<q, Dhat>`` — off the core's shared materialization when
        versioned (amortized across every same-version read)."""
        if self._core is not None:
            return self._core.dot(table)
        return self._hypothesis.dot(table)

    def _answer_given(self, query: LinearQuery, *, true_answer: float,
                      hypothesis_answer: float) -> LinearAnswer:
        """The mechanism round, with the two inner products precomputed.

        Shared by the scalar path (:meth:`answer` computes the dots) and
        the batched path (:meth:`answer_all` reads them from the engine's
        loss-matrix pass); everything that touches privacy — pre-flight,
        the sparse-vector slot, the Laplace measurement, the MW update —
        happens here, identically for both.
        """
        discrepancy = abs(true_answer - hypothesis_answer)
        # Pre-flight the armed budget before the sparse vector consumes a
        # slot (see PrivateMWConvex.answer for the failure mode). The
        # query counter advances only after the refusal point, so refused
        # queries leave no phantom stream slots.
        self.accountant.preflight(self._measurement_epsilon, 0.0,
                                  label=f"measure:{query.name}")
        index = self._queries
        self._queries += 1
        with trace.span("mechanism.svt"):
            sv_answer = self._sparse_vector.process(discrepancy)

        if not sv_answer.above:
            return LinearAnswer(value=hypothesis_answer, from_update=False,
                                query_index=index)

        with trace.span("mechanism.mw_update", query=query.name):
            noisy_answer = true_answer + float(self._laplace_rng.laplace(
                0.0, 1.0 / (self._dataset.n * self._measurement_epsilon)
            ))
            self.accountant.spend(self._measurement_epsilon, 0.0,
                                  label=f"measure:{query.name}")
            noisy_answer = float(np.clip(noisy_answer, 0.0, 1.0))

            # MW update: if the hypothesis under-counts (noisy >
            # hypothesis), raise weight where q(x) is large; if it
            # over-counts, lower it.
            sign = 1.0 if noisy_answer > hypothesis_answer else -1.0
            if self._core is not None:
                # In-place log-domain accumulation; (±eta)·q is bitwise
                # the same increment as the immutable update's eta·(±q).
                self._core.apply_update(query.table, sign * self.config.eta)
            else:
                self._hypothesis = self._hypothesis.multiplicative_update(
                    sign * query.table, self.config.eta
                )
        update_index = self._updates
        self._updates += 1
        return LinearAnswer(value=noisy_answer, from_update=True,
                            query_index=index, update_index=update_index)

    def _validate_query(self, query: LinearQuery) -> None:
        if query.table.size != self._dataset.universe.size:
            raise ValidationError(
                f"query over {query.table.size} elements does not match the "
                f"universe size {self._dataset.universe.size}"
            )

    # -- snapshot / restore ------------------------------------------------------

    #: Written format; see PrivateMWConvex.SNAPSHOT_FORMAT for the v1→v2
    #: (raw log-domain core state) and v2→v3 (RLE accountant records —
    #: an old reader would silently under-count budget) schema changes.
    SNAPSHOT_FORMAT = "repro.pmw_linear/v3"
    ACCEPTED_SNAPSHOT_FORMATS = ("repro.pmw_linear/v1",
                                 "repro.pmw_linear/v2",
                                 "repro.pmw_linear/v3")

    def snapshot(self) -> dict:
        """Full mechanism state (minus the private dataset); see
        :meth:`repro.core.pmw_cm.PrivateMWConvex.snapshot`."""
        config = self.config
        return {
            "format": self.SNAPSHOT_FORMAT,
            "config": {
                "alpha": config.alpha, "beta": config.beta,
                "epsilon": config.epsilon, "delta": config.delta,
                "universe_size": config.universe_size,
                "schedule": config.schedule,
                "max_updates": config.max_updates,
            },
            "noise_multiplier": self._sparse_vector.noise_multiplier,
            "shards": self.shards,
            "histogram_workers": self.histogram_workers,
            "versioned_core": self.versioned_core,
            "backend": self.backend_name,
            # One hypothesis representation: the raw log-domain core
            # state (versioned) or the normalized weights (legacy).
            "hypothesis_weights": (self._hypothesis.weights.tolist()
                                   if self._core is None else None),
            "hypothesis_core": (self._core.state_dict()
                                if self._core is not None else None),
            "updates": self._updates,
            "queries": self._queries,
            "sparse_vector": self._sparse_vector.state_dict(),
            "laplace_rng_state": self._laplace_rng.bit_generator.state,
            "accountant": {
                "records": self.accountant.to_grouped_records(),
                "epsilon_budget": self.accountant.epsilon_budget,
                "delta_budget": self.accountant.delta_budget,
            },
        }

    @classmethod
    def restore(cls, snapshot: dict, dataset: Dataset, *, rng=None,
                backend: str | ArrayBackend | None = None,
                ) -> "PrivateMWLinear":
        """Rebuild a mechanism from :meth:`snapshot` output.

        ``backend`` overrides the snapshotted backend; hypothesis
        payloads are backend-independent ``float64``, so cross-backend
        restores are exact (see PrivateMWConvex.restore).
        """
        if snapshot.get("format") not in cls.ACCEPTED_SNAPSHOT_FORMATS:
            raise ValidationError(
                f"unrecognized snapshot format {snapshot.get('format')!r}; "
                f"expected one of {cls.ACCEPTED_SNAPSHOT_FORMATS}"
            )
        config = snapshot["config"]
        if dataset.universe.size != config["universe_size"]:
            raise ValidationError(
                f"snapshot was taken over a universe of size "
                f"{config['universe_size']}, dataset has "
                f"{dataset.universe.size}"
            )
        mechanism = cls(
            dataset, alpha=config["alpha"], beta=config["beta"],
            epsilon=config["epsilon"], delta=config["delta"],
            schedule=config["schedule"], max_updates=config["max_updates"],
            noise_multiplier=snapshot["noise_multiplier"],
            shards=snapshot.get("shards"),
            histogram_workers=snapshot.get("histogram_workers"),
            # Pre-versioned-core snapshots restore onto the legacy path
            # (they carry only normalized weights).
            versioned_core=snapshot.get("versioned_core", False),
            backend=(backend if backend is not None
                     else snapshot.get("backend")),
            rng=rng,
        )
        if mechanism._core is not None:
            mechanism._core = LogHistogram.from_state(
                dataset.universe, snapshot["hypothesis_core"],
                backend=mechanism._backend)
        else:
            mechanism._hypothesis = hypothesis_histogram(
                dataset.universe,
                np.asarray(snapshot["hypothesis_weights"], dtype=float),
                shards=snapshot.get("shards"),
                workers=snapshot.get("histogram_workers"),
                backend=mechanism._backend,
            )
        mechanism._updates = int(snapshot["updates"])
        mechanism._queries = int(snapshot["queries"])
        mechanism._sparse_vector.load_state_dict(snapshot["sparse_vector"])
        mechanism._laplace_rng.bit_generator.state = snapshot["laplace_rng_state"]
        mechanism.accountant = restore_accountant(snapshot["accountant"])
        return mechanism

    #: answer_all stacks independently built tables into one loss matrix
    #: only below this copy size; above it (e.g. 64 queries over a 10^7
    #: universe would be a multi-GB copy) it keeps per-query evaluation,
    #: whose extra memory is O(1). Shared-matrix families (zero-copy
    #: stacking) always take the matrix path regardless of size.
    STACK_COPY_LIMIT_BYTES = 128 * 2**20

    def answer_all(self, queries, *, on_halt: str = "raise") -> list[LinearAnswer]:
        """Answer a query stream through the batched evaluation engine.

        Semantics match a loop of :meth:`answer` calls (same sparse-vector
        stream, same noise draws, same ``on_halt`` behaviour as PMW-CM's
        ``answer_all``); the evaluation strategy differs:

        - the *true* answers for the whole stream are one loss-matrix
          matvec against the (immutable) data histogram;
        - the *hypothesis* answers stream through a
          :class:`~repro.engine.versioned.VersionedBatchEvaluator` —
          per-entry version stamps against the hypothesis core, so only
          entries stale under the current version recompute, in growing
          blocks (doubling while no update lands, reset by one — the
          tail of a sparse stream is a few large matmuls, and an update
          throws away at most one block of lookahead).

        The loss matrix is zero-copy for shared-matrix query families;
        independently built tables are stacked only up to
        :attr:`STACK_COPY_LIMIT_BYTES`, beyond which the stream keeps
        per-query dot products (identical semantics, O(1) extra memory).

        Values agree with the scalar path to floating-point reassociation
        (``~1e-15``; see ``tests/property/test_batch_agreement.py``).
        """
        from repro.engine import kernels
        from repro.engine.versioned import VersionedBatchEvaluator

        if on_halt not in ("raise", "hypothesis"):
            raise ValidationError(
                f"on_halt must be 'raise' or 'hypothesis', got {on_halt!r}"
            )
        queries = list(queries)
        for query in queries:
            self._validate_query(query)
        if not queries:
            return []
        if self.halted:
            # No mechanism round will run: skip the loss-matrix build and
            # the true-answer pass entirely (their results would be dead).
            if on_halt == "raise":
                raise MechanismHalted(
                    "update budget exhausted before the stream ended"
                )
            return [self._hypothesis_answer(query) for query in queries]

        tables = kernels.shared_table_matrix(queries)
        if tables is None and (len(queries) * queries[0].table.size * 8
                               <= self.STACK_COPY_LIMIT_BYTES):
            tables = kernels.stack_tables(queries)
        if tables is not None:
            true_answers = tables @ self._data_histogram.weights
            # Per-entry version stamps: the evaluator recomputes only
            # entries stale under the hypothesis's current version, in
            # growing blocks — an update invalidates at most one block
            # of lookahead, update-free tails collapse into a few large
            # matmuls, and no bookkeeping here needs to know when an
            # update landed. The evaluator casts the tables to the
            # mechanism backend's dtype once, so refresh matmuls run at
            # backend precision against the backend-native hypothesis
            # weights (a no-op cast on the NumPy default).
            evaluator = VersionedBatchEvaluator(tables,
                                                backend=self._backend)

        answers = []
        for j, query in enumerate(queries):
            if tables is not None:
                hypothesis_answer = evaluator.answer(
                    *self._hypothesis_state(), j)
            else:  # bounded-memory path: same dots the scalar round does
                hypothesis_answer = self._hypothesis_dot(query.table)
            if self.halted:
                if on_halt == "raise":
                    raise MechanismHalted(
                        "update budget exhausted before the stream ended"
                    )
                answers.append(self._hypothesis_answer(
                    query, value=hypothesis_answer))
                continue
            true_answer = (float(true_answers[j]) if tables is not None
                           else self._data_histogram.dot(query.table))
            try:
                answer = self._answer_given(
                    query, true_answer=true_answer,
                    hypothesis_answer=hypothesis_answer,
                )
            except PrivacyBudgetExhausted:
                if on_halt == "raise":
                    raise
                answers.append(self._hypothesis_answer(
                    query, value=hypothesis_answer))
                continue
            answers.append(answer)
        return answers

    def _hypothesis_state(self) -> tuple[np.ndarray, int]:
        """``(weights, version)`` for version-stamped batch evaluation."""
        if self._core is not None:
            return self._core.weights, self._core.version
        return self._hypothesis.weights, self._updates

    def _hypothesis_answer(self, query: LinearQuery,
                           value: float | None = None) -> LinearAnswer:
        """Serve from the public hypothesis (free post-processing)."""
        self._queries += 1
        if value is None:
            value = self._hypothesis_dot(query.table)
        return LinearAnswer(
            value=float(value),
            from_update=False, query_index=self._queries - 1,
        )


