"""The paper's stated bounds, as evaluable formulas.

Every theorem-level quantity in the paper is encoded here so the benchmark
harness can print *paper-vs-measured* tables:

- Figure 3's update budget ``T = 64 S^2 log|X| / alpha^2``;
- Theorem 3.1's sparse-vector sample bound (re-exported from
  :mod:`repro.dp.composition`);
- Theorem 3.8's mechanism sample bound;
- Table 1: the single-query and k-query sample complexities for all four
  loss-family rows (up to the suppressed polylog/constant factors —
  formulas are evaluated with leading constant 1 and natural logs, which
  is what "shape reproduction" compares against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.dp.composition import sparse_vector_sample_bound

__all__ = [
    "update_budget",
    "theorem_3_8_sample_size",
    "sparse_vector_sample_bound",
    "single_query_n",
    "k_query_n",
    "Table1Row",
    "table1_rows",
    "composition_error_exponent",
    "pmw_error_exponent",
]


def update_budget(scale: float, universe_size: int, alpha: float) -> int:
    """Figure 3: ``T = ceil(64 S^2 log|X| / alpha^2)``."""
    return max(1, math.ceil(
        64.0 * scale * scale * math.log(universe_size) / (alpha * alpha)
    ))


def theorem_3_8_sample_size(scale: float, universe_size: int, alpha: float,
                            epsilon: float, delta: float, k: int,
                            beta: float, oracle_n: float = 0.0) -> float:
    """Theorem 3.8: ``n = max(n', 4096 S^2 sqrt(log|X| log(4/d)) log(8k/b) / (e a^2))``."""
    mechanism = (
        4096.0 * scale * scale
        * math.sqrt(math.log(universe_size) * math.log(4.0 / delta))
        * math.log(8.0 * k / beta)
        / (epsilon * alpha * alpha)
    )
    return max(float(oracle_n), mechanism)


# ---------------------------------------------------------------------------
# Table 1 (constants suppressed: leading constant 1, natural logs).
# ---------------------------------------------------------------------------

def _linear_single(alpha: float, **_) -> float:
    return 1.0 / alpha


def _linear_k(alpha: float, log_size: float, k: int, **_) -> float:
    return math.sqrt(log_size) * math.log(max(k, 2)) / alpha**2


def _lipschitz_single(alpha: float, d: int, **_) -> float:
    return math.sqrt(d) / alpha


def _lipschitz_k(alpha: float, d: int, log_size: float, k: int, **_) -> float:
    return max(
        math.sqrt(d * log_size) / alpha**2,
        math.log(max(k, 2)) * math.sqrt(log_size) / alpha**2,
    )


def _uglm_single(alpha: float, **_) -> float:
    return 1.0 / alpha**2


def _uglm_k(alpha: float, log_size: float, k: int, **_) -> float:
    return max(
        math.sqrt(log_size) / alpha**3,
        math.log(max(k, 2)) * math.sqrt(log_size) / alpha**2,
    )


def _strongly_convex_single(alpha: float, d: int, sigma: float, **_) -> float:
    return math.sqrt(d) / (sigma * alpha)


def _strongly_convex_k(alpha: float, d: int, log_size: float, k: int,
                       sigma: float, **_) -> float:
    return max(
        math.sqrt(d * log_size) / (sigma * alpha**3),
        math.log(max(k, 2)) * math.sqrt(log_size) / alpha**2,
    )


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 with both of its sample-complexity formulas."""

    key: str
    restrictions: str
    single_query: Callable[..., float]
    k_queries: Callable[..., float]
    single_source: str
    k_source: str


_TABLE1 = [
    Table1Row(
        key="linear",
        restrictions="Linear queries",
        single_query=_linear_single, k_queries=_linear_k,
        single_source="[DMNS06]", k_source="[HR10]",
    ),
    Table1Row(
        key="lipschitz",
        restrictions="Lipschitz, d-bounded",
        single_query=_lipschitz_single, k_queries=_lipschitz_k,
        single_source="[BST14]", k_source="this paper",
    ),
    Table1Row(
        key="uglm",
        restrictions="Lipschitz, d-bounded, UGLM",
        single_query=_uglm_single, k_queries=_uglm_k,
        single_source="[JT14]", k_source="this paper",
    ),
    Table1Row(
        key="strongly_convex",
        restrictions="Lipschitz, d-bounded, sigma-strongly convex",
        single_query=_strongly_convex_single, k_queries=_strongly_convex_k,
        single_source="[BST14]", k_source="this paper",
    ),
]


def table1_rows() -> list[Table1Row]:
    """All four Table 1 rows, in paper order."""
    return list(_TABLE1)


def single_query_n(row_key: str, *, alpha: float, d: int = 1,
                   sigma: float = 1.0) -> float:
    """Evaluate a row's single-query sample complexity (shape only)."""
    row = _row(row_key)
    return row.single_query(alpha=alpha, d=d, sigma=sigma)


def k_query_n(row_key: str, *, alpha: float, k: int, universe_size: int,
              d: int = 1, sigma: float = 1.0) -> float:
    """Evaluate a row's k-query sample complexity (shape only)."""
    row = _row(row_key)
    return row.k_queries(alpha=alpha, k=k, log_size=math.log(universe_size),
                         d=d, sigma=sigma)


def _row(row_key: str) -> Table1Row:
    for row in _TABLE1:
        if row.key == row_key:
            return row
    raise KeyError(
        f"unknown Table 1 row {row_key!r}; known: "
        f"{[row.key for row in _TABLE1]}"
    )


# ---------------------------------------------------------------------------
# Error-vs-k exponents (for the E5 crossover experiment).
# ---------------------------------------------------------------------------

def composition_error_exponent() -> float:
    """Composition: per-query budget ``~eps/sqrt(k)``, so error ``~ k^{1/2}``.

    For an oracle whose error scales like ``1/(n * eps0)`` (the Lipschitz
    row), splitting ``eps`` over ``k`` queries by advanced composition
    multiplies the error by ``~sqrt(k)`` — exponent ``0.5`` in ``k``.
    """
    return 0.5


def pmw_error_exponent() -> float:
    """PMW: error grows like ``log k`` — exponent 0 in any power law.

    Returned as 0.0; the benchmark compares a fitted power-law slope of the
    measured error-vs-k series against these two exponents.
    """
    return 0.0
