"""The dual-certificate multiplicative-weights update (Claim 3.5).

This is the paper's key novelty. When the hypothesis ``Dhat`` answers a CM
query badly, that fact is *non-linear* in the histogram, so it cannot drive
a MW update directly. The paper extracts a linear certificate from
first-order optimality: with ``theta_hat = argmin l_Dhat`` and ``theta`` a
(privately obtained) good minimizer for the true data, the vector

    ``u(x) = <theta - theta_hat, grad l_x(theta_hat)>``

satisfies (Claim 3.5)

    ``<u, Dhat - D> >= l_D(theta_hat) - l_D(theta)``,

i.e. ``u`` is a linear query on which ``Dhat`` errs at least as much as the
excess risk it incurred — exactly the kind of vector the MW regret bound
(Lemma 3.4) needs.

**Update sign.** Figure 3 prints ``Dhat_{t+1} ∝ exp(+eta u) Dhat_t``, but
the accuracy analysis (Claims 3.6/3.7 with Lemma 3.4's regret bound)
requires the update that *decreases* weight where ``u`` is large — the
standard MW learner ``Dhat_{t+1} ∝ exp(-eta u / S) Dhat_t`` (normalizing
``u ∈ [-S, S]`` to ``[-1, 1]``), whose regret against the comparator ``D``
is ``(1/T) sum <u_t, Dhat_t - D> <= 2 S sqrt(log|X| / T)`` exactly as
Lemma 3.4 states. We implement the regret-consistent sign; the E12
ablation benchmark demonstrates the printed sign diverges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram
from repro.exceptions import ValidationError
from repro.losses.base import LossFunction
from repro.optimize.minimize import minimize_loss
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class UpdateCertificate:
    """The dual certificate for one PMW update round.

    Attributes
    ----------
    direction:
        The vector ``u ∈ [-S, S]^X`` of Claim 3.5.
    theta_hat:
        The hypothesis minimizer ``argmin_theta l(theta; Dhat)``.
    theta_oracle:
        The private approximate data minimizer supplied by ``A'``.
    hypothesis_inner:
        ``<u, Dhat>`` — non-negative by first-order optimality (eq. 3).
    """

    direction: np.ndarray
    theta_hat: np.ndarray
    theta_oracle: np.ndarray
    hypothesis_inner: float


def dual_certificate(loss: LossFunction, hypothesis: Histogram,
                     theta_oracle: np.ndarray,
                     theta_hat: np.ndarray | None = None,
                     *, solver_steps: int = 400) -> UpdateCertificate:
    """Compute ``u(x) = <theta_oracle - theta_hat, grad l_x(theta_hat)>``.

    ``theta_hat`` may be supplied when the caller already minimized the
    loss on the hypothesis (the PMW round does, when computing the error
    query); otherwise it is computed here.

    Only *public* quantities (the hypothesis histogram) and the already
    privatized ``theta_oracle`` enter, so the certificate is
    privacy-free post-processing.
    """
    theta_oracle = np.asarray(theta_oracle, dtype=float)
    if theta_hat is None:
        theta_hat = minimize_loss(loss, hypothesis, steps=solver_steps).theta
    theta_hat = np.asarray(theta_hat, dtype=float)
    gradients = loss.gradients(theta_hat, hypothesis.universe)
    direction = gradients @ (theta_oracle - theta_hat)
    return UpdateCertificate(
        direction=direction,
        theta_hat=theta_hat,
        theta_oracle=theta_oracle,
        hypothesis_inner=float(hypothesis.dot(direction)),
    )


def _checked_step(certificate: UpdateCertificate, eta: float,
                  scale: float) -> tuple[float, float]:
    """Shared validation for :func:`mw_step` / :func:`mw_step_inplace`.

    Checks positivity of ``eta``/``scale`` and that the certificate
    respects the declared family scale bound; returns both as floats.
    """
    eta = check_positive(eta, "eta")
    scale = check_positive(scale, "scale")
    direction = certificate.direction
    max_abs = (float(np.max(np.abs(direction))) / scale if direction.size
               else 0.0)
    if max_abs > 1.0 + 1e-6:
        raise ValidationError(
            f"certificate direction exceeds declared scale: max |u|/S = "
            f"{max_abs:.6g} > 1; the family scale bound is wrong"
        )
    return eta, scale


def mw_step(hypothesis: Histogram, certificate: UpdateCertificate, eta: float,
            scale: float, *, paper_sign: bool = False) -> Histogram:
    """One multiplicative-weights update of the hypothesis.

    Applies ``Dhat(x) <- Dhat(x) * exp(-eta * u(x) / S)`` (normalized,
    regret-consistent — see module docstring). ``paper_sign=True`` applies
    Figure 3's printed ``+`` sign instead; it exists solely for the E12
    ablation and is not used by the mechanism.
    """
    eta, scale = _checked_step(certificate, eta, scale)
    direction = certificate.direction / scale
    signed = direction if paper_sign else -direction
    return hypothesis.multiplicative_update(signed, eta)


def mw_step_inplace(hypothesis_core: LogHistogram,
                    certificate: UpdateCertificate, eta: float, scale: float,
                    *, paper_sign: bool = False) -> int:
    """The MW update of :func:`mw_step`, accumulated in place.

    Mathematically identical to ``mw_step`` (same validation, same
    regret-consistent sign), but applied to the versioned log-domain
    accumulator: one fused ``log w += (∓eta/S) · u`` with normalization
    deferred to the next read, instead of a full log/exp/normalize pass
    constructing a fresh histogram. Bumps — and returns — the core's
    version, which is what every ``(fingerprint, version)``-keyed cache
    downstream invalidates on.

    Both steps execute on the hypothesis's
    :class:`~repro.backend.base.ArrayBackend` (the accumulation and the
    deferred normalization delegate to ``accumulate``/``fused_update``
    and the shifted-exp materialization); this function stays
    backend-agnostic — it only validates and fixes the sign.
    """
    eta, scale = _checked_step(certificate, eta, scale)
    signed_eta = (eta if paper_sign else -eta) / scale
    return hypothesis_core.apply_update(certificate.direction, signed_eta)


def certificate_inner_gap(certificate: UpdateCertificate,
                          data: Histogram) -> float:
    """The inner-product side of Claim 3.5: ``<u, Dhat - D>``.

    This is only the *left-hand side* of the claim's inequality — the
    amount by which the hypothesis over-weights the certificate direction
    relative to the true data. The full claim subtracts the excess-risk
    side; see :func:`claim_3_5_slack` for the complete (non-negative)
    slack. (Requires access to the true data histogram, so this is a
    *diagnostic*, never part of the private mechanism's output path.)
    """
    raise_if_mismatched(certificate.direction, data)
    return certificate.hypothesis_inner - data.dot(certificate.direction)


def claim_3_5_slack(loss: LossFunction, certificate: UpdateCertificate,
                    data: Histogram, hypothesis: Histogram) -> float:
    """Full Claim 3.5 slack: ``<u, Dhat - D> - (l_D(theta_hat) - l_D(theta))``.

    Non-negative whenever the loss is convex (up to solver tolerance).
    The left-hand side is :func:`certificate_inner_gap`.
    """
    lhs = certificate_inner_gap(certificate, data)
    rhs = (float(loss.loss_on(certificate.theta_hat, data))
           - float(loss.loss_on(certificate.theta_oracle, data)))
    return lhs - rhs


def raise_if_mismatched(direction: np.ndarray, histogram: Histogram) -> None:
    """Guard: the certificate must be over the histogram's universe."""
    if direction.shape != histogram.weights.shape:
        raise ValidationError(
            f"certificate has {direction.shape[0]} entries; histogram "
            f"universe has {histogram.weights.shape[0]}"
        )
