"""Data substrate: finite universes, datasets, histograms, synthetic workloads.

The paper (Sections 2.1 and 4.3) works in the finite-universe model: the
dataset ``D`` is a multiset of elements of a finite universe ``X``, and the
mechanism represents ``D`` by its normalized histogram, a probability vector
indexed by ``X``. This package provides:

- :class:`Universe` — an enumerated universe of points in ``R^d`` with
  optional labels (for supervised losses).
- :class:`Histogram` — a probability vector over a :class:`Universe` with
  the multiplicative-weights update as a first-class operation.
- :class:`ShardedHistogram` — the same contract with every heavy
  operation (updates, reductions, sampling) run per contiguous shard,
  optionally on a thread pool, for universes in the ≥10^6 regime.
- :class:`LogHistogram` — the version-stamped log-domain accumulator the
  mechanisms' hot loop mutates in place (``log w += eta·u`` with deferred
  normalization); :meth:`~LogHistogram.freeze` yields immutable views.
- :class:`Dataset` — an ``n``-row dataset of universe elements, with
  adjacency (``D ~ D'``) helpers used by privacy tests.
- builders for standard universes (binary cube, ball nets, labeled grids).
- synthetic workload generators mirroring the paper's motivating examples
  (linear/logistic regression data).
- discretization of continuous data onto a finite universe (the rounding
  argument of Section 1.1).
"""

from repro.data.universe import Universe
from repro.data.histogram import Histogram
from repro.data.sharded import ShardedHistogram, hypothesis_histogram
from repro.data.log_histogram import LogHistogram, hypothesis_core
from repro.data.dataset import Dataset
from repro.data.builders import (
    ball_grid,
    binary_cube,
    interval_grid,
    labeled_universe,
    random_ball_net,
    signed_cube,
)
from repro.data.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
    sample_dataset,
)
from repro.data.discretize import discretize_points, discretization_error
from repro.data.io import (
    load_dataset,
    load_histogram,
    load_universe,
    save_dataset,
    save_histogram,
    save_universe,
)

__all__ = [
    "Universe",
    "Histogram",
    "ShardedHistogram",
    "hypothesis_histogram",
    "LogHistogram",
    "hypothesis_core",
    "Dataset",
    "binary_cube",
    "ball_grid",
    "signed_cube",
    "interval_grid",
    "labeled_universe",
    "random_ball_net",
    "make_regression_dataset",
    "make_classification_dataset",
    "sample_dataset",
    "discretize_points",
    "discretization_error",
    "save_universe",
    "load_universe",
    "save_histogram",
    "load_histogram",
    "save_dataset",
    "load_dataset",
]
