"""Builders for standard finite universes.

The paper's running examples (Section 4.3) use ``X = {0,1}^d`` or
equivalently ``X = {±1/sqrt(d)}^d``; its discretization remark (Section 1.1)
rounds continuous domains like the unit ball onto finite nets of size
``(d/alpha)^O(d)``. These builders construct those universes, plus labeled
variants for supervised losses.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.universe import Universe
from repro.exceptions import UniverseError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


_MAX_ENUMERATED = 2_000_000


def binary_cube(d: int, name: str | None = None) -> Universe:
    """The hypercube ``{0, 1}^d`` (size ``2^d``).

    This is the canonical universe of the paper's complexity discussion
    (Section 4.3). Raises if ``2^d`` would be unreasonably large to
    enumerate in memory.
    """
    _check_cube_size(d)
    points = np.array(list(itertools.product((0.0, 1.0), repeat=d)))
    return Universe(points, name=name or f"binary_cube(d={d})")


def signed_cube(d: int, name: str | None = None) -> Universe:
    """The normalized signed cube ``{±1/sqrt(d)}^d`` (size ``2^d``).

    Every point has unit L2 norm, so 1-Lipschitz GLM losses over the unit
    parameter ball automatically satisfy the paper's scaling condition with
    ``S <= 2``.
    """
    _check_cube_size(d)
    scale = 1.0 / np.sqrt(d)
    points = np.array(list(itertools.product((-scale, scale), repeat=d)))
    return Universe(points, name=name or f"signed_cube(d={d})")


def interval_grid(size: int, low: float = -1.0, high: float = 1.0,
                  name: str | None = None) -> Universe:
    """An evenly spaced 1-D grid of ``size`` points on ``[low, high]``."""
    if size < 1:
        raise UniverseError(f"size must be >= 1, got {size}")
    if not high > low:
        raise UniverseError(f"need high > low, got [{low}, {high}]")
    points = np.linspace(low, high, size)[:, None]
    return Universe(points, name=name or f"interval_grid({size})")


def random_ball_net(d: int, size: int, radius: float = 1.0, rng=None,
                    name: str | None = None) -> Universe:
    """A random net of ``size`` points in the L2 ball of ``radius`` in R^d.

    This is the practical stand-in for the paper's ``(d/alpha)^O(d)``
    deterministic discretization of the unit ball (Section 1.1): points are
    drawn uniformly from the ball so continuous data can be rounded onto the
    net with small error while keeping ``|X|`` laptop-sized.
    """
    if size < 1:
        raise UniverseError(f"size must be >= 1, got {size}")
    if d < 1:
        raise UniverseError(f"d must be >= 1, got {d}")
    radius = check_positive(radius, "radius")
    generator = as_generator(rng)
    directions = generator.standard_normal((size, d))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    # Uniform in the ball: radius ~ U^{1/d} scaling of a uniform direction.
    radii = radius * generator.random(size) ** (1.0 / d)
    points = directions / norms * radii[:, None]
    return Universe(points, name=name or f"ball_net(d={d}, size={size})")


def ball_grid(d: int, resolution: int, radius: float = 1.0,
              name: str | None = None) -> Universe:
    """The deterministic grid discretization of the L2 ball (Section 1.1).

    Enumerates the axis-aligned grid with ``resolution`` points per axis on
    ``[-radius, radius]^d`` and keeps the points inside the ball. This is
    the paper's ``(d/alpha)^O(d)``-size net made concrete: spacing
    ``2*radius/(resolution-1)`` gives covering radius
    ``sqrt(d)*radius/(resolution-1)``, so choosing ``resolution ~
    sqrt(d)/alpha`` bounds the rounding error of 1-Lipschitz losses by
    ``~alpha``. Exponential in ``d`` — use :func:`random_ball_net` beyond
    small dimensions.
    """
    if d < 1:
        raise UniverseError(f"d must be >= 1, got {d}")
    if resolution < 2:
        raise UniverseError(f"resolution must be >= 2, got {resolution}")
    radius = check_positive(radius, "radius")
    if resolution**d > _MAX_ENUMERATED * 4:
        raise UniverseError(
            f"{resolution}^{d} grid points exceed the enumeration cap; "
            f"use random_ball_net for large d"
        )
    axis = np.linspace(-radius, radius, resolution)
    mesh = np.meshgrid(*([axis] * d), indexing="ij")
    points = np.stack([m.ravel() for m in mesh], axis=1)
    inside = np.linalg.norm(points, axis=1) <= radius + 1e-12
    points = points[inside]
    if points.shape[0] == 0:  # tiny resolutions may miss the ball interior
        points = np.zeros((1, d))
    if points.shape[0] > _MAX_ENUMERATED:
        raise UniverseError(
            f"ball grid has {points.shape[0]} points "
            f"(> {_MAX_ENUMERATED}); lower the resolution"
        )
    return Universe(points, name=name or f"ball_grid(d={d}, res={resolution})")


def labeled_universe(base: Universe, label_values, name: str | None = None) -> Universe:
    """Cross a feature universe with a finite set of label values.

    Each element of the result is one ``(x, y)`` pair, so the universe size
    is ``base.size * len(label_values)``. This is how supervised examples
    ``(x_i, y_i) ∈ R^d × R`` (the paper's linear-regression example,
    Section 1) fit the single-universe model.
    """
    label_values = np.asarray(list(label_values), dtype=float)
    if label_values.ndim != 1 or label_values.size == 0:
        raise UniverseError("label_values must be a non-empty 1-D collection")
    total = base.size * label_values.size
    if total > _MAX_ENUMERATED:
        raise UniverseError(
            f"labeled universe would have {total} elements "
            f"(> {_MAX_ENUMERATED}); use a smaller base or label set"
        )
    points = np.repeat(base.points, label_values.size, axis=0)
    labels = np.tile(label_values, base.size)
    return Universe(
        points, labels=labels,
        name=name or f"{base.name}×labels({label_values.size})",
    )


def _check_cube_size(d: int) -> None:
    if d < 1:
        raise UniverseError(f"d must be >= 1, got {d}")
    if 2**d > _MAX_ENUMERATED:
        raise UniverseError(
            f"2^{d} universe points exceed the enumeration cap "
            f"({_MAX_ENUMERATED}); the paper's |X| dependence is inherent "
            f"(Section 4.3) — use random_ball_net for large d"
        )
