"""Datasets over a finite universe, with adjacency helpers.

A :class:`Dataset` stores ``n`` rows as indices into a :class:`Universe`.
This index representation makes the histogram conversion exact and makes the
adjacency relation ``D ~ D'`` ("differ in one row", Section 2.1) a trivial
single-index edit, which the privacy test-suite exercises heavily.
"""

from __future__ import annotations

import numpy as np

from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import UniverseError, ValidationError
from repro.utils.rng import as_generator


class Dataset:
    """An ordered multiset of ``n`` universe elements.

    Parameters
    ----------
    universe:
        The finite universe the rows come from.
    indices:
        Integer array of shape ``(n,)``; row ``i`` is universe element
        ``indices[i]``.
    """

    def __init__(self, universe: Universe, indices: np.ndarray) -> None:
        indices = np.asarray(indices)
        if indices.ndim != 1:
            raise ValidationError(
                f"indices must be 1-dimensional, got shape {indices.shape}"
            )
        if indices.size == 0:
            raise ValidationError("a dataset must contain at least one row")
        if not np.issubdtype(indices.dtype, np.integer):
            rounded = np.rint(indices)
            if not np.allclose(indices, rounded):
                raise ValidationError("indices must be integers")
            indices = rounded.astype(np.int64)
        indices = indices.astype(np.int64, copy=True)
        if indices.min() < 0 or indices.max() >= universe.size:
            raise UniverseError(
                f"dataset indices must lie in [0, {universe.size}); "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        self._universe = universe
        self._indices = indices
        self._indices.setflags(write=False)
        self._frozen_histogram: Histogram | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_indices(cls, universe: Universe, indices) -> "Dataset":
        """Build from an iterable of universe indices."""
        return cls(universe, np.asarray(list(indices)))

    @classmethod
    def _adopt(cls, universe: Universe, indices: np.ndarray, *,
               frozen_histogram: Histogram | None = None) -> "Dataset":
        """Wrap already-validated int64 indices without copying.

        The public constructor copies (``astype(copy=True)``) and
        range-checks; internal producers with trusted, immutable
        storage — the shared-memory attach path
        (:func:`repro.data.shm.attach_datasets`) — adopt their views in
        place, optionally with a precomputed frozen histogram so
        :meth:`histogram` never rebuilds what the producer already
        materialized.
        """
        instance = cls.__new__(cls)
        indices.setflags(write=False)
        instance._universe = universe
        instance._indices = indices
        instance._frozen_histogram = frozen_histogram
        return instance

    @classmethod
    def uniform_random(cls, universe: Universe, n: int, rng=None) -> "Dataset":
        """Sample ``n`` rows uniformly from the universe."""
        generator = as_generator(rng)
        return cls(universe, generator.integers(0, universe.size, size=n))

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> Universe:
        """The underlying universe."""
        return self._universe

    @property
    def indices(self) -> np.ndarray:
        """Row indices into the universe (read-only)."""
        return self._indices

    @property
    def n(self) -> int:
        """Number of rows."""
        return self._indices.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def points(self) -> np.ndarray:
        """Feature matrix of shape ``(n, dim)`` (materialized view)."""
        return self._universe.points[self._indices]

    @property
    def labels(self) -> np.ndarray | None:
        """Label vector of shape ``(n,)`` or ``None`` if unlabeled."""
        if self._universe.labels is None:
            return None
        return self._universe.labels[self._indices]

    # -- histogram & adjacency ----------------------------------------------

    def histogram(self) -> Histogram:
        """The normalized histogram representation of this dataset.

        Datasets attached from shared memory carry a frozen,
        pre-normalized histogram view and return it directly (the
        weights are a zero-copy view of the supervisor's segment);
        everything else recomputes from counts.
        """
        if self._frozen_histogram is not None:
            return self._frozen_histogram
        counts = np.bincount(self._indices, minlength=self._universe.size)
        return Histogram.from_counts(self._universe, counts)

    def replace_row(self, row: int, new_index: int) -> "Dataset":
        """Return the adjacent dataset with ``row`` replaced by ``new_index``.

        The result ``D'`` satisfies ``D ~ D'`` and their histograms differ
        by at most ``2/n`` in L1 (``1/n`` per changed cell).
        """
        if not 0 <= row < self.n:
            raise ValidationError(f"row {row} out of range [0, {self.n})")
        indices = np.array(self._indices)
        indices[row] = new_index
        return Dataset(self._universe, indices)

    def random_neighbor(self, rng=None) -> "Dataset":
        """A uniformly random adjacent dataset (for privacy testing)."""
        generator = as_generator(rng)
        row = int(generator.integers(0, self.n))
        new_index = int(generator.integers(0, self._universe.size))
        return self.replace_row(row, new_index)

    def is_adjacent(self, other: "Dataset") -> bool:
        """Whether ``self ~ other`` (same size, differ in at most one row)."""
        if other.n != self.n or other.universe.size != self._universe.size:
            return False
        return int(np.sum(self._indices != other._indices)) <= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(n={self.n}, universe={self._universe.name!r}, "
            f"dim={self._universe.dim})"
        )
