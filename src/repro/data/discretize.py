"""Rounding continuous data onto a finite universe.

Section 1.1 of the paper notes that for data in a continuous domain (e.g.
the unit ball) it is essentially without loss of generality — up to a factor
of about 2 in the error — to round the data points onto a finite universe of
size ``(d/alpha)^O(d)``. These helpers perform that rounding and quantify
the incurred error so experiments can verify the "factor of 2" claim for
Lipschitz losses.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.universe import Universe
from repro.exceptions import UniverseError
from repro.utils.validation import check_finite_array


def discretize_points(universe: Universe, raw_points: np.ndarray,
                      raw_labels: np.ndarray | None = None) -> Dataset:
    """Snap each raw row to its nearest universe element (L2 on features).

    For labeled universes the match is on the joint ``(x, y)`` vector with
    the label treated as one extra coordinate; ``raw_labels`` is then
    required.
    """
    raw_points = check_finite_array(raw_points, "raw_points", ndim=2)
    if raw_points.shape[1] != universe.dim:
        raise UniverseError(
            f"raw points have dim {raw_points.shape[1]}, universe has "
            f"dim {universe.dim}"
        )
    if universe.is_labeled:
        if raw_labels is None:
            raise UniverseError("labeled universe requires raw_labels")
        raw_labels = check_finite_array(raw_labels, "raw_labels", ndim=1)
        if raw_labels.shape[0] != raw_points.shape[0]:
            raise UniverseError("raw_labels length must match raw_points rows")
        candidates = np.hstack([universe.points, universe.labels[:, None]])
        queries = np.hstack([raw_points, raw_labels[:, None]])
    else:
        candidates = universe.points
        queries = raw_points
    indices = _nearest_indices(candidates, queries)
    return Dataset(universe, indices)


def discretization_error(universe: Universe, raw_points: np.ndarray) -> float:
    """Max L2 distance from a raw point to its assigned universe element.

    For an ``L``-Lipschitz loss, rounding each row moves the empirical loss
    of any ``theta`` by at most ``L`` times this quantity — the error the
    paper's rounding argument trades for finiteness.
    """
    raw_points = check_finite_array(raw_points, "raw_points", ndim=2)
    indices = _nearest_indices(universe.points, raw_points)
    residuals = raw_points - universe.points[indices]
    return float(np.max(np.linalg.norm(residuals, axis=1)))


def _nearest_indices(candidates: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Row-wise nearest-neighbour indices, chunked to bound peak memory."""
    chunk = max(1, 10_000_000 // max(1, candidates.shape[0]))
    out = np.empty(queries.shape[0], dtype=np.int64)
    candidate_sq = np.einsum("ij,ij->i", candidates, candidates)
    for start in range(0, queries.shape[0], chunk):
        block = queries[start:start + chunk]
        # ||q - c||^2 = ||q||^2 - 2 q.c + ||c||^2; the ||q||^2 term is
        # constant per row and can be dropped from the argmin.
        scores = candidate_sq[None, :] - 2.0 * block @ candidates.T
        out[start:start + chunk] = np.argmin(scores, axis=1)
    return out
