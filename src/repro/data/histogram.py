"""Probability histograms over a finite universe.

The paper represents a dataset ``D`` by its histogram: a vector ``D ∈ R^X``
with ``D(x) = Pr[random row = x]`` (Section 2.1). The multiplicative-weights
update (Figure 3) is an operation on histograms:

    ``Dhat_{t+1}(x) ∝ exp(eta * u_t(x)) * Dhat_t(x)``

:class:`Histogram` makes that update a first-class, numerically careful
operation (log-space accumulation), and provides the inner products,
distances, and divergences the analysis uses.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.data.universe import Universe
from repro.exceptions import UniverseError, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite_array


def mass_annihilation_error(detail: str) -> ValidationError:
    """The shared diagnostic for an update that zeroed every weight.

    Raised (with a path-specific ``detail`` prefix) by the dense update,
    the sharded update, and the log-domain accumulator's materialization
    whenever no finite log-weight remains — instead of the opaque
    empty-``np.max`` crash this situation used to produce.
    """
    return ValidationError(
        f"{detail} annihilated all probability mass: no finite "
        f"log-weight remains (|eta * direction| overflowed on every "
        f"positive-weight element)"
    )


class Histogram:
    """A probability distribution over a :class:`Universe`.

    Weights are kept normalized (sum to 1, all non-negative). The class is
    immutable in style: updates return new histograms.

    ``backend`` selects the :class:`~repro.backend.base.ArrayBackend`
    running the heavy operations (updates, dots, sampling tables); the
    validated weight vector itself is always stored as ``float64`` —
    backend-native arrays only enter through the internal adoption
    constructors (the log-domain accumulator's ``freeze``).
    """

    def __init__(self, universe: Universe, weights: np.ndarray, *,
                 backend: str | ArrayBackend | None = None) -> None:
        weights = check_finite_array(weights, "weights", ndim=1)
        if weights.shape[0] != universe.size:
            raise UniverseError(
                f"weights has {weights.shape[0]} entries but universe has "
                f"{universe.size} elements"
            )
        if np.any(weights < -1e-12):
            raise ValidationError("histogram weights must be non-negative")
        total = float(weights.sum())
        if total <= 0.0:
            raise ValidationError("histogram weights must have positive total mass")
        self._universe = universe
        self._backend = resolve_backend(backend)
        self._weights = np.clip(weights, 0.0, None) / total
        self._weights.setflags(write=False)
        self._cdf: np.ndarray | None = None  # built lazily by sample_indices

    # -- constructors -----------------------------------------------------

    @classmethod
    def _adopt_normalized(cls, universe: Universe, normalized: np.ndarray,
                          *, backend: ArrayBackend | None = None,
                          ) -> "Histogram":
        """Wrap internally produced, already-normalized weights.

        The public constructor re-validates and copies (finiteness and
        sign masks, a clip, a division — several full-universe
        temporaries). Internal producers — the sharded update and the
        log-domain accumulator's ``freeze()`` — guarantee non-negative,
        finite, unit-mass weights by construction, so they are adopted
        in place. Callers with untrusted weights must use the
        constructor.
        """
        instance = cls.__new__(cls)
        normalized.setflags(write=False)
        instance._universe = universe
        instance._backend = resolve_backend(backend)
        instance._weights = normalized
        instance._cdf = None
        return instance

    @classmethod
    def uniform(cls, universe: Universe) -> "Histogram":
        """The uniform histogram ``Dhat_1`` used to initialize PMW."""
        return cls(universe, np.full(universe.size, 1.0 / universe.size))

    @classmethod
    def from_counts(cls, universe: Universe, counts: np.ndarray) -> "Histogram":
        """Histogram of a dataset given per-element counts."""
        return cls(universe, np.asarray(counts, dtype=float))

    @classmethod
    def point_mass(cls, universe: Universe, index: int) -> "Histogram":
        """Histogram placing all mass on one universe element."""
        weights = np.zeros(universe.size)
        weights[index] = 1.0
        return cls(universe, weights)

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> Universe:
        """The underlying universe."""
        return self._universe

    @property
    def weights(self) -> np.ndarray:
        """The probability vector (read-only view)."""
        return self._weights

    @property
    def backend(self) -> ArrayBackend:
        """The numeric backend running this histogram's heavy operations."""
        return self._backend

    def __len__(self) -> int:
        return self._universe.size

    def __getitem__(self, index: int) -> float:
        return float(self._weights[index])

    # -- algebra used by PMW ------------------------------------------------

    def dot(self, values: np.ndarray) -> float:
        """Expectation ``E_{x~D}[values(x)] = <values, D>``.

        For a linear query ``q`` this is exactly the query answer ``<q, D>``.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != self._weights.shape:
            raise ValidationError(
                f"values has shape {values.shape}, expected {self._weights.shape}"
            )
        return self._backend.dot(values, self._weights)

    def multiplicative_update(self, direction: np.ndarray, eta: float) -> "Histogram":
        """Apply the MW update ``w(x) ∝ w(x) * exp(eta * direction(x))``.

        Computed in log-space with a max-shift so extreme ``eta * direction``
        values cannot overflow; this matches the textbook update exactly
        because the shift cancels in normalization.
        """
        direction = check_finite_array(direction, "direction", ndim=1)
        if direction.shape != self._weights.shape:
            raise ValidationError(
                f"direction has shape {direction.shape}, expected "
                f"{self._weights.shape}"
            )
        new_weights = self._backend.multiplicative_update(
            self._weights, direction, float(eta))
        if new_weights is None:
            raise mass_annihilation_error("multiplicative update")
        return Histogram(self._universe, new_weights,
                         backend=self._backend)

    # -- distances / divergences --------------------------------------------

    def total_variation(self, other: "Histogram") -> float:
        """Total-variation distance ``(1/2)·||D - D'||_1``."""
        self._check_compatible(other)
        return 0.5 * float(np.abs(self._weights - other._weights).sum())

    def l1_distance(self, other: "Histogram") -> float:
        """``||D - D'||_1`` — adjacency of size-``n`` datasets gives ``<= 2/n``."""
        self._check_compatible(other)
        return float(np.abs(self._weights - other._weights).sum())

    def kl_divergence(self, other: "Histogram") -> float:
        """``KL(self || other)``, the potential function of the MW analysis.

        Returns ``inf`` if ``self`` puts mass where ``other`` has none.
        """
        self._check_compatible(other)
        p, q = self._weights, other._weights
        support = p > 0.0
        if np.any(q[support] == 0.0):
            return float("inf")
        log_ratio = np.log(p[support]) - np.log(q[support])
        return float(np.sum(p[support] * log_ratio))

    def _check_compatible(self, other: "Histogram") -> None:
        # Identity is the fast path; otherwise the universes must agree on
        # *content* — equal size alone is not compatibility (two different
        # domains of coincidentally equal size would make every pairwise
        # statistic silently meaningless).
        if other._universe is self._universe:
            return
        if not self._universe.same_domain(other._universe):
            raise UniverseError("histograms are over different universes")

    # -- sampling -------------------------------------------------------------

    def sample_indices(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` iid universe indices from this distribution.

        Useful for generating synthetic datasets from the final PMW
        hypothesis (the synthetic-data remark of Section 4.3).

        Implemented by inverse-CDF sampling against a cumulative table that
        is built once per histogram and reused across calls: one vectorized
        ``searchsorted`` per draw batch, instead of ``Generator.choice``'s
        per-call probability validation and cumsum. Serving-layer
        ``synthetic_dataset`` calls hit the same (immutable) histogram
        repeatedly, which makes the amortization worthwhile; see
        ``benchmarks/bench_serve_throughput.py`` for measured numbers.
        """
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        generator = as_generator(rng)
        if self._cdf is None:
            self._cdf = self._backend.build_cdf(self._weights)
        draws = generator.random(n)
        # side="right" skips zero-weight elements (flat CDF segments) and
        # maps u in [cdf[i-1], cdf[i]) to index i — exactly choice(p=...).
        return np.searchsorted(self._cdf, draws, side="right")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram(universe={self._universe.name!r}, "
            f"size={self._universe.size})"
        )
