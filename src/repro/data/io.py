"""Persistence for universes, histograms, and datasets.

The mechanism's releasable artifacts are the public hypothesis histogram
and synthetic datasets sampled from it (Section 4.3). These helpers write
them to single ``.npz`` files so a release can be shipped and reloaded
without the originating process:

    >>> save_histogram(mechanism.hypothesis, "release.npz")  # doctest: +SKIP
    >>> hypothesis = load_histogram("release.npz")           # doctest: +SKIP

Each file embeds the universe (points + labels + name), so artifacts are
self-contained; loading reconstructs fresh objects that pass all the usual
invariant checks.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import ValidationError

_FORMAT_VERSION = 1


def save_universe(universe: Universe, path) -> pathlib.Path:
    """Write a universe to ``path`` (.npz)."""
    path = _npz_path(path)
    payload = _universe_payload(universe)
    np.savez(path, kind="universe", version=_FORMAT_VERSION, **payload)
    return path


def load_universe(path) -> Universe:
    """Read a universe written by :func:`save_universe`."""
    with np.load(_npz_path(path), allow_pickle=False) as data:
        _check_kind(data, "universe")
        return _universe_from(data)


def save_histogram(histogram: Histogram, path) -> pathlib.Path:
    """Write a histogram (with its universe) to ``path`` (.npz)."""
    path = _npz_path(path)
    payload = _universe_payload(histogram.universe)
    payload["weights"] = histogram.weights
    np.savez(path, kind="histogram", version=_FORMAT_VERSION, **payload)
    return path


def load_histogram(path) -> Histogram:
    """Read a histogram written by :func:`save_histogram`."""
    with np.load(_npz_path(path), allow_pickle=False) as data:
        _check_kind(data, "histogram")
        universe = _universe_from(data)
        return Histogram(universe, np.asarray(data["weights"], dtype=float))


def save_dataset(dataset: Dataset, path) -> pathlib.Path:
    """Write a dataset (with its universe) to ``path`` (.npz).

    Note: a *private* dataset's file is as sensitive as the dataset; this
    function exists for synthetic releases and test fixtures.
    """
    path = _npz_path(path)
    payload = _universe_payload(dataset.universe)
    payload["indices"] = dataset.indices
    np.savez(path, kind="dataset", version=_FORMAT_VERSION, **payload)
    return path


def load_dataset(path) -> Dataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(_npz_path(path), allow_pickle=False) as data:
        _check_kind(data, "dataset")
        universe = _universe_from(data)
        return Dataset(universe, np.asarray(data["indices"]))


def _npz_path(path) -> pathlib.Path:
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _universe_payload(universe: Universe) -> dict:
    payload = {
        "points": universe.points,
        "name": np.asarray(universe.name),
    }
    if universe.labels is not None:
        payload["labels"] = universe.labels
    return payload


def _universe_from(data) -> Universe:
    labels = np.asarray(data["labels"], dtype=float) if "labels" in data else None
    return Universe(
        np.asarray(data["points"], dtype=float),
        labels=labels,
        name=str(data["name"]),
    )


def _check_kind(data, expected: str) -> None:
    kind = str(data["kind"]) if "kind" in data else "<missing>"
    if kind != expected:
        raise ValidationError(
            f"file holds a {kind!r}, expected a {expected!r}"
        )
    version = int(data["version"]) if "version" in data else -1
    if version > _FORMAT_VERSION:
        raise ValidationError(
            f"file format version {version} is newer than this library "
            f"supports ({_FORMAT_VERSION})"
        )
