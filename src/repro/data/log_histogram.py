"""Version-stamped, log-domain hypothesis accumulator.

The immutable :class:`~repro.data.histogram.Histogram` makes every MW
update pay full price: a fresh ``log`` pass over the whole universe, a
max-shift, an ``exp``, a normalization, and several universe-sized
temporaries — then throws the cached sampling CDF away with the old
object. The PMW hot loop applies those updates *in sequence to one
evolving hypothesis*, which admits a much cheaper representation:

- keep the hypothesis in **log-space** (``log_weights``), where the MW
  update ``w(x) ∝ w(x) · exp(eta · u(x))`` is a single fused in-place
  ``log_weights += eta · u`` — no transcendentals, no fresh allocation;
- **defer normalization**: in log-space the per-round normalizer is an
  additive constant that cancels against the next update, so it only
  needs to be computed when a ``dot``/``sample``/``freeze`` actually
  reads probabilities (and then once per version, shared by every
  reader);
- stamp the state with a monotone **version** counter, bumped once per
  update, so every downstream cache — solver warm-starts, per-round
  breakdowns, compiled-batch answers, the serving layer's answer cache —
  can key on ``(work, version)`` and skip recomputation whenever the
  hypothesis has not moved.

:meth:`freeze` materializes the current version as a regular (immutable)
:class:`Histogram` — or :class:`~repro.data.sharded.ShardedHistogram`
when sharding is configured — agreeing with the chain of per-round
immutable updates to floating-point reassociation (``<= 1e-10``; pinned
by ``tests/property/test_log_domain_agreement.py``). Frozen views are
cached per version and stay valid forever: once a buffer escapes through
``freeze()`` the next materialization writes a fresh one.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.data.histogram import Histogram, mass_annihilation_error
from repro.data.sharded import (
    ShardedHistogram,
    _make_slices,
    check_shard_params,
    map_shards,
)
from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.utils.validation import check_finite_array


class LogHistogram:
    """A mutable probability vector kept in log-space, stamped by version.

    Parameters
    ----------
    universe:
        The underlying :class:`Universe`.
    weights:
        Optional initial (unnormalized) weights, validated exactly like
        the :class:`Histogram` constructor. ``None`` starts uniform —
        PMW's ``Dhat_1`` — without materializing an intermediate
        histogram.
    num_shards:
        When set, heavy passes (the update accumulation and the
        materializing ``exp``) run shard-by-shard with shard-sized
        temporaries, and :meth:`freeze` yields a
        :class:`ShardedHistogram`. ``None`` keeps the dense layout.
    workers:
        Optional thread count for shard passes; requires ``num_shards``
        (mirroring :func:`repro.data.sharded.hypothesis_histogram`).
    backend:
        The :class:`~repro.backend.base.ArrayBackend` (or its registry
        name) running the hot passes. The default NumPy backend is
        bitwise the historical code path; fused backends (``fused =
        True``) replace the shard-pass decomposition with whole-vector
        jitted kernels. :meth:`state_dict` output is ``float64``
        regardless of backend.
    """

    def __init__(self, universe: Universe, weights: np.ndarray | None = None,
                 *, num_shards: int | None = None,
                 workers: int | None = None,
                 backend: str | ArrayBackend | None = None) -> None:
        self._setup(universe, num_shards=num_shards, workers=workers,
                    backend=backend)
        if weights is None:
            self._log_weights = self._backend.log_uniform(universe.size)
        else:
            # Route validation + normalization through the canonical
            # constructor so the accepted inputs are exactly the
            # Histogram contract. The log runs at float64 and converts
            # once at the end, so every backend starts from the same
            # distribution.
            base = Histogram(universe, np.asarray(weights, dtype=float))
            with np.errstate(divide="ignore"):
                log_weights = np.log(base.weights)
            self._log_weights = self._backend.from_float64(log_weights)

    def _setup(self, universe: Universe, *, num_shards: int | None,
               workers: int | None,
               backend: str | ArrayBackend | None = None) -> None:
        if num_shards is None and workers is not None:
            raise ValidationError(
                "histogram workers require sharding: pass num_shards=... "
                "alongside workers"
            )
        num_shards, workers = check_shard_params(universe.size, num_shards,
                                                 workers)
        self._backend = resolve_backend(backend)
        self._universe = universe
        self._num_shards = num_shards
        self._workers = workers
        self._slices = _make_slices(universe.size, num_shards or 1)
        self._version = 0
        self._scratch: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._weights_version = -1
        self._weights_escaped = False
        self._frozen: Histogram | None = None
        self._frozen_version = -1

    # -- constructors -----------------------------------------------------

    @classmethod
    def uniform(cls, universe: Universe, *, num_shards: int | None = None,
                workers: int | None = None) -> "LogHistogram":
        """The uniform accumulator (PMW's ``Dhat_1``) at version 0."""
        return cls(universe, num_shards=num_shards, workers=workers)

    @classmethod
    def from_histogram(cls, histogram: Histogram, *,
                       num_shards: int | None = None,
                       workers: int | None = None) -> "LogHistogram":
        """Adopt an existing histogram's distribution at version 0."""
        return cls(histogram.universe, histogram.weights,
                   num_shards=num_shards, workers=workers)

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> Universe:
        """The underlying universe."""
        return self._universe

    @property
    def version(self) -> int:
        """Monotone update counter; bumped once per :meth:`apply_update`.

        Two reads at equal version see the identical distribution, which
        is the invariant every version-keyed cache relies on.
        """
        return self._version

    @property
    def num_shards(self) -> int | None:
        """Configured shard count (``None`` = dense layout)."""
        return self._num_shards

    @property
    def workers(self) -> int | None:
        """Thread count for shard passes (``None`` = sequential)."""
        return self._workers

    @property
    def backend(self) -> ArrayBackend:
        """The numeric backend running the hot passes."""
        return self._backend

    def __len__(self) -> int:
        return self._universe.size

    # -- the in-place MW accumulation ---------------------------------------

    def apply_update(self, direction: np.ndarray, eta: float) -> int:
        """Accumulate ``log w(x) += eta * direction(x)`` in place.

        This *is* the MW update — normalization is deferred because in
        log-space it is an additive constant that the next update's
        normalizer absorbs; it is applied lazily (once per version) when
        probabilities are actually read. No allocation happens after the
        first call: the ``eta * direction`` product lands in a reusable
        scratch buffer.

        Returns the new version.
        """
        direction = check_finite_array(direction, "direction", ndim=1)
        if direction.shape != self._log_weights.shape:
            raise ValidationError(
                f"direction has shape {direction.shape}, expected "
                f"{self._log_weights.shape}"
            )
        eta = float(eta)
        if not np.isfinite(eta):
            raise ValidationError(f"eta must be finite, got {eta}")
        backend = self._backend
        if backend.fused:
            self._log_weights = backend.fused_update(self._log_weights,
                                                     direction, eta)
            self._version += 1
            return self._version
        direction = backend.asarray(direction)
        if self._scratch is None:
            self._scratch = backend.empty_like(self._log_weights)
        log_weights, scratch = self._log_weights, self._scratch
        self._map_shards(
            lambda s: backend.accumulate(log_weights, direction, eta,
                                         scratch, s))
        self._version += 1
        return self._version

    # -- lazy materialization ------------------------------------------------

    @property
    def weights(self) -> np.ndarray:
        """The normalized probability vector at the current version.

        Materialized lazily (max-shift, ``exp``, one normalization) and
        cached until the next update; successive reads at the same
        version are free. The returned array is a borrowed buffer —
        valid until the next :meth:`apply_update` unless obtained via
        :meth:`freeze`, which pins it permanently.
        """
        if self._weights_version != self._version:
            self._materialize()
        return self._weights

    def _materialize(self) -> None:
        backend = self._backend
        if backend.fused:
            # One jitted kernel: max-shift, exp, and the normalizer sum.
            weights, shift, total = backend.fused_normalize(
                self._log_weights)
            if not np.isfinite(shift):
                raise mass_annihilation_error("log-domain hypothesis")
            self._check_normalizer(total)
            self._weights = weights
            self._weights_escaped = False
            self._weights_version = self._version
            return
        if self._weights is None or self._weights_escaped:
            self._weights = backend.empty_like(self._log_weights)
            self._weights_escaped = False
        log_weights, out = self._log_weights, self._weights

        shift = max(self._map_shards(
            lambda s: backend.max_finite(log_weights, s)))
        if not np.isfinite(shift):
            raise mass_annihilation_error("log-domain hypothesis")

        self._map_shards(
            lambda s: backend.exp_shifted(log_weights, shift, out, s))
        # Full-vector pairwise sum — the same normalizer the immutable
        # constructors compute, keeping dense/sharded/log paths aligned.
        total = backend.total_mass(out)
        self._check_normalizer(total)
        backend.normalize(out, total)
        self._weights_version = self._version

    @staticmethod
    def _check_normalizer(total: float) -> None:
        if not (np.isfinite(total) and total > 0.0):
            raise ValidationError(
                "log-domain hypothesis produced a non-finite normalizer; "
                "an accumulated update overflowed"
            )

    def freeze(self) -> Histogram:
        """An immutable histogram view of the current version.

        Cached per version: repeated freezes between updates return the
        same object (so its lazily built sampling CDF is shared too).
        The view stays valid after further updates — the buffer it
        adopted is marked escaped and the next materialization writes a
        fresh one.
        """
        if self._frozen_version == self._version:
            return self._frozen
        weights = self.weights
        self._weights_escaped = True
        if self._num_shards is None:
            frozen = Histogram._adopt_normalized(self._universe, weights,
                                                 backend=self._backend)
        else:
            frozen = ShardedHistogram._adopt(self._universe, weights,
                                             num_shards=self._num_shards,
                                             workers=self._workers,
                                             backend=self._backend)
        self._frozen = frozen
        self._frozen_version = self._version
        return frozen

    # -- reads ---------------------------------------------------------------

    def dot(self, values: np.ndarray) -> float:
        """``<values, Dhat>`` at the current version."""
        values = np.asarray(values, dtype=float)
        weights = self.weights
        if values.shape != weights.shape:
            raise ValidationError(
                f"values has shape {values.shape}, expected {weights.shape}"
            )
        backend = self._backend
        if self._num_shards is None:
            return backend.dot(values, weights)
        partials = self._map_shards(
            lambda s: backend.dot(values[s], weights[s])
        )
        return float(sum(partials))

    def sample_indices(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` iid universe indices from the current version.

        Delegates to the frozen view, whose inverse-CDF table is built
        once per version and shared by every caller.
        """
        return self.freeze().sample_indices(n, rng=rng)

    def kl_divergence(self, other: Histogram) -> float:
        """``KL(Dhat || other)`` at the current version."""
        return self.freeze().kl_divergence(other)

    def total_variation(self, other: Histogram) -> float:
        """Total-variation distance at the current version."""
        return self.freeze().total_variation(other)

    def l1_distance(self, other: Histogram) -> float:
        """``||Dhat - other||_1`` at the current version."""
        return self.freeze().l1_distance(other)

    # -- snapshot / restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable state: raw log-weights plus the version.

        The *pre-normalization* log-weights are stored, so a restored
        accumulator continues bitwise-identically to one that was never
        snapshotted (normalized weights alone would lose the deferred
        state). ``-inf`` entries (zero-weight elements) survive the JSON
        round trip as ``-Infinity`` literals.

        The durable format is backend-independent: log-weights cross
        this boundary as exact ``float64`` (widening an accelerated
        dtype is lossless), so a hypothesis trained on any backend
        restores bitwise into any other.
        """
        return {
            "version": self._version,
            "log_weights": self._backend.to_float64(
                self._log_weights).tolist(),
            "num_shards": self._num_shards,
            "workers": self._workers,
        }

    @classmethod
    def from_state(cls, universe: Universe, state: dict, *,
                   backend: str | ArrayBackend | None = None,
                   ) -> "LogHistogram":
        """Rebuild an accumulator from :meth:`state_dict` output.

        ``backend`` selects the backend the restored accumulator runs
        on — independent of the one that produced the state, because the
        stored log-weights are plain ``float64``.
        """
        core = cls.__new__(cls)
        core._setup(universe, num_shards=state.get("num_shards"),
                    workers=state.get("workers"), backend=backend)
        log_weights = np.asarray(state["log_weights"], dtype=float)
        if log_weights.ndim != 1 or log_weights.shape[0] != universe.size:
            raise ValidationError(
                f"log_weights has shape {log_weights.shape}; universe has "
                f"{universe.size} elements"
            )
        if np.any(np.isnan(log_weights)) or np.any(log_weights == np.inf):
            raise ValidationError(
                "log_weights must be finite or -inf (zero weight)"
            )
        core._log_weights = core._backend.from_float64(log_weights)
        core._version = int(state["version"])
        if core._version < 0:
            raise ValidationError(
                f"version must be non-negative, got {core._version}"
            )
        return core

    # -- internals -------------------------------------------------------------

    def _map_shards(self, task):
        return map_shards(self._slices, self._workers, task)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogHistogram(universe={self._universe.name!r}, "
            f"size={self._universe.size}, version={self._version}, "
            f"shards={self._num_shards}, workers={self._workers})"
        )


def hypothesis_core(universe: Universe, weights: np.ndarray | None = None, *,
                    shards: int | None = None,
                    workers: int | None = None,
                    backend: str | ArrayBackend | None = None,
                    ) -> LogHistogram:
    """Build a mechanism's versioned hypothesis core.

    The log-domain counterpart of
    :func:`repro.data.sharded.hypothesis_histogram`, sharing its knob
    semantics (``workers`` without ``shards`` is rejected by the
    constructor). ``backend`` selects the numeric backend for the hot
    passes (``None`` → ``REPRO_BACKEND`` → NumPy).
    """
    return LogHistogram(universe, weights, num_shards=shards,
                        workers=workers, backend=backend)


__all__ = ["LogHistogram", "hypothesis_core"]
