"""Sharded histograms: shard-local kernels for very large universes.

A dense :class:`~repro.data.histogram.Histogram` update allocates several
full-universe temporaries at once (log-weights, the shifted exponent, the
normalized result), and every reduction (``dot``, ``kl_divergence``,
sampling tables) walks the whole vector in one pass. At ``|X| ~ 10^7`` and
beyond those temporaries dominate peak memory and defeat cache locality.

:class:`ShardedHistogram` keeps the probability vector itself contiguous
(the universe is one address space; the mechanisms' dot products against
loss matrices need it dense), but splits it into contiguous *shards* and
runs every heavy operation shard-by-shard:

- ``multiplicative_update`` — two shard-local passes (max-shift then
  exponentiation) writing into one preallocated output, so temporaries are
  shard-sized instead of universe-sized;
- ``dot``/``total_variation``/``l1_distance``/``kl_divergence`` — per-shard
  partial reductions, combined at the end;
- ``sample_indices`` — a two-level inverse-CDF table: pick a shard by its
  mass, then a bin inside the shard, keeping each sampling table
  shard-sized.

Shard passes optionally run on a thread pool (``workers > 1``): numpy
releases the GIL inside its ufunc loops, so large shards exponentiate and
reduce in parallel. For laptop-scale universes the dense class is faster —
sharding is for the ≥10^6-element regime (see
``benchmarks/bench_batch_engine.py`` for measured numbers).

Results agree with the dense implementation: the multiplicative update is
the same log-space computation (the global max-shift is the max of the
per-shard maxima), and reductions differ only by floating-point summation
order (``~1e-15`` relative).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.backend import ArrayBackend
from repro.data.histogram import Histogram, mass_annihilation_error
from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite_array

#: Default shard size: small enough that per-shard temporaries fit in cache
#: comfortably, large enough that per-shard dispatch overhead is negligible.
DEFAULT_SHARD_SIZE = 1_000_000

#: Reused executors keyed by worker count (threads are cheap to keep; a new
#: pool per multiplicative update would cost more than small shards do).
#: Lock-guarded: concurrent first use (e.g. two sessions on the serve
#: layer's cross-session pool) must not each construct an executor and
#: orphan the loser's threads.
_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _make_slices(size: int, num_shards: int) -> list[slice]:
    edges = np.linspace(0, size, num_shards + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])]


def _pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=workers,
                                      thread_name_prefix="repro-shard")
            _POOLS[workers] = pool
        return pool


def map_shards(slices: list[slice], workers: int | None, task):
    """Run ``task(shard_slice)`` over every shard, optionally threaded.

    The shared dispatch behind every shard-local pass
    (:class:`ShardedHistogram` reductions/updates and
    :class:`~repro.data.log_histogram.LogHistogram` accumulation and
    materialization): sequential unless ``workers > 1`` and there is
    more than one shard to fan out.
    """
    if workers and workers > 1 and len(slices) > 1:
        return list(_pool(workers).map(task, slices))
    return [task(shard) for shard in slices]


def check_shard_params(size: int, num_shards: int | None,
                       workers: int | None) -> tuple[int | None, int | None]:
    """Validate and normalize a ``(num_shards, workers)`` configuration.

    Shared by every shard-configurable histogram; returns the pair as
    ``int | None``. Bounds: ``1 <= num_shards <= size``, ``workers >= 1``.
    """
    if num_shards is not None:
        num_shards = int(num_shards)
        if not 1 <= num_shards <= size:
            raise ValidationError(
                f"num_shards must be in [1, {size}], got {num_shards}"
            )
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
    return num_shards, workers


class ShardedHistogram(Histogram):
    """A :class:`Histogram` whose heavy operations run per contiguous shard.

    Parameters
    ----------
    universe, weights:
        As for :class:`Histogram`.
    num_shards:
        Number of contiguous shards; defaults to
        ``ceil(size / DEFAULT_SHARD_SIZE)`` (minimum 1). Shards differ in
        size by at most one element.
    workers:
        Optional thread count for shard passes. ``None`` or ``1`` runs
        shards sequentially (still bounding temporary memory); ``> 1``
        fans shards out over a shared thread pool.
    """

    def __init__(self, universe: Universe, weights: np.ndarray, *,
                 num_shards: int | None = None,
                 workers: int | None = None,
                 backend: str | ArrayBackend | None = None) -> None:
        super().__init__(universe, weights, backend=backend)
        size = universe.size
        if num_shards is None:
            num_shards = max(1, -(-size // DEFAULT_SHARD_SIZE))
        num_shards, workers = check_shard_params(size, num_shards, workers)
        self._num_shards = num_shards
        self._workers = workers
        self._slices = _make_slices(size, num_shards)
        # Two-level sampling tables, built lazily by sample_indices.
        # Never shared across instances: every update constructs a fresh
        # object whose tables start empty (see the regression tests in
        # tests/data/test_histogram.py).
        self._shard_tables = None

    @classmethod
    def _adopt(cls, universe: Universe, normalized: np.ndarray, *,
               num_shards: int, workers: int | None,
               backend: ArrayBackend | None = None) -> "ShardedHistogram":
        """Wrap internally produced, already-normalized weights.

        The public constructor re-validates and copies (``isfinite`` and
        sign masks, a clip, a division — several full-universe
        temporaries), which is exactly what the shard-local update went
        to lengths to avoid. Updates produce weights that are
        non-negative, finite, and normalized by construction, so they are
        adopted in place; callers with untrusted weights must use the
        constructor.
        """
        instance = super()._adopt_normalized(universe, normalized,
                                             backend=backend)
        instance._num_shards = num_shards
        instance._workers = workers
        instance._slices = _make_slices(universe.size, num_shards)
        instance._shard_tables = None
        return instance

    # -- constructors -----------------------------------------------------

    @classmethod
    def uniform(cls, universe: Universe, *, num_shards: int | None = None,
                workers: int | None = None) -> "ShardedHistogram":
        """The uniform sharded histogram (PMW's ``Dhat_1``)."""
        return cls(universe, np.full(universe.size, 1.0 / universe.size),
                   num_shards=num_shards, workers=workers)

    @classmethod
    def from_histogram(cls, histogram: Histogram, *,
                       num_shards: int | None = None,
                       workers: int | None = None) -> "ShardedHistogram":
        """Reshard an existing histogram (weights are shared read-only)."""
        return cls(histogram.universe, histogram.weights,
                   num_shards=num_shards, workers=workers)

    # -- shard topology ----------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of contiguous shards."""
        return self._num_shards

    @property
    def workers(self) -> int | None:
        """Thread count for shard passes (``None`` = sequential)."""
        return self._workers

    @property
    def shard_slices(self) -> list[slice]:
        """The contiguous shard slices, in universe order."""
        return list(self._slices)

    def _map_shards(self, task):
        """Run ``task(shard_slice)`` over every shard, optionally threaded."""
        return map_shards(self._slices, self._workers, task)

    # -- shard-local algebra -----------------------------------------------

    def dot(self, values: np.ndarray) -> float:
        """``<values, D>`` as a sum of per-shard partial dot products."""
        values = np.asarray(values, dtype=float)
        if values.shape != self._weights.shape:
            raise ValidationError(
                f"values has shape {values.shape}, expected "
                f"{self._weights.shape}"
            )
        weights = self._weights
        backend = self._backend
        partials = self._map_shards(
            lambda s: backend.dot(values[s], weights[s]))
        return float(sum(partials))

    def multiplicative_update(self, direction: np.ndarray,
                              eta: float) -> "ShardedHistogram":
        """The MW update, computed with shard-sized temporaries.

        Same log-space computation as the dense class — pass 1 writes
        shifted log-weights shard by shard into one output buffer and
        collects per-shard maxima; pass 2 exponentiates in place against
        the global max (the max of the shard maxima, identical to the
        dense global max). Normalization divides the buffer in place by
        the same full-vector sum the dense constructor uses, so the
        result is bitwise identical to the dense update while every
        temporary stays shard-sized.
        """
        direction = check_finite_array(direction, "direction", ndim=1)
        if direction.shape != self._weights.shape:
            raise ValidationError(
                f"direction has shape {direction.shape}, expected "
                f"{self._weights.shape}"
            )
        eta = float(eta)
        backend = self._backend
        weights = backend.asarray(self._weights)
        direction = backend.asarray(direction)
        out = backend.empty_like(weights)

        maxima = self._map_shards(
            lambda s: backend.log_axpy_max(weights, direction, eta, out, s))
        shift = max(maxima)
        if not np.isfinite(shift):
            raise mass_annihilation_error("sharded multiplicative update")

        # exp(-inf) -> 0.0 exactly; only a fully-masked chunk could
        # produce non-finite values, and positive mass rules that out.
        self._map_shards(
            lambda s: backend.exp_shifted(out, shift, out, s))
        # exp output is finite, non-negative, and has positive mass (the
        # max-shifted entry is exp(0) = 1), so the constructor's
        # validation masks and clip/divide copies are provably no-ops —
        # normalize in place and adopt. The backend's total_mass is the
        # same full-vector pairwise sum the dense constructor computes,
        # which keeps dense/sharded results bitwise equal.
        backend.normalize(out, backend.total_mass(out))
        return ShardedHistogram._adopt(self._universe, out,
                                       num_shards=self._num_shards,
                                       workers=self._workers,
                                       backend=backend)

    # -- shard-local distances / divergences --------------------------------

    def total_variation(self, other: Histogram) -> float:
        """``(1/2)||D - D'||_1`` accumulated shard by shard."""
        return 0.5 * self.l1_distance(other)

    def l1_distance(self, other: Histogram) -> float:
        """``||D - D'||_1`` accumulated shard by shard."""
        self._check_compatible(other)
        mine, theirs = self._weights, other.weights
        partials = self._map_shards(
            lambda s: float(np.abs(mine[s] - theirs[s]).sum())
        )
        return float(sum(partials))

    def kl_divergence(self, other: Histogram) -> float:
        """``KL(self || other)`` accumulated shard by shard.

        Returns ``inf`` as soon as any shard finds mass of ``self`` where
        ``other`` has none (same convention as the dense class).
        """
        self._check_compatible(other)
        mine, theirs = self._weights, other.weights

        def shard_kl(shard: slice) -> float:
            p, q = mine[shard], theirs[shard]
            support = p > 0.0
            if not np.any(support):
                return 0.0
            p, q = p[support], q[support]
            if np.any(q == 0.0):
                return float("inf")
            return float(np.sum(p * (np.log(p) - np.log(q))))

        return float(sum(self._map_shards(shard_kl)))

    # -- two-level sampling -----------------------------------------------

    def sample_indices(self, n: int, rng=None) -> np.ndarray:
        """Inverse-CDF sampling through shard-sized tables.

        Level 1 picks the shard by cumulative shard mass; level 2 runs
        ``searchsorted`` on the shard's local cumulative table. Both
        tables are built once per (immutable) histogram and reused, like
        the dense cached CDF. Zero-weight bins and zero-mass shards are
        unreachable (flat CDF segments with ``side="right"``), and each
        shard's table is closed at its last nonzero bin so floating-point
        round-off in the level-2 offset can never select a trailing
        zero-weight element.
        """
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        generator = as_generator(rng)
        if self._shard_tables is None:
            self._shard_tables = self._build_shard_tables()
        shard_cdf, shard_offsets, local_cdfs, last_nonzero = self._shard_tables
        draws = generator.random(n)
        shard_ids = np.searchsorted(shard_cdf, draws, side="right")
        shard_ids = np.minimum(shard_ids, self._num_shards - 1)
        result = np.empty(n, dtype=np.intp)
        for shard_index in range(self._num_shards):
            mask = shard_ids == shard_index
            if not np.any(mask):
                continue
            local = draws[mask] - shard_offsets[shard_index]
            inner = np.searchsorted(local_cdfs[shard_index], local,
                                    side="right")
            inner = np.minimum(inner, last_nonzero[shard_index])
            result[mask] = inner + self._slices[shard_index].start
        return result

    def _build_shard_tables(self):
        weights = self._weights
        backend = self._backend
        masses = np.array([backend.total_mass(weights[s])
                           for s in self._slices])
        shard_cdf = np.cumsum(masses)
        nonzero_shards = np.nonzero(masses > 0.0)[0]
        shard_cdf[nonzero_shards[-1]:] = 1.0  # close the fp cumsum gap
        shard_offsets = np.concatenate(([0.0], shard_cdf[:-1]))
        local_cdfs, last_nonzero = [], []
        for shard_index, shard in enumerate(self._slices):
            chunk = weights[shard]
            local = backend.cumsum(chunk)
            support = np.nonzero(chunk)[0]
            last = int(support[-1]) if support.size else 0
            local[last:] = masses[shard_index]
            local.setflags(write=False)
            local_cdfs.append(local)
            last_nonzero.append(last)
        return shard_cdf, shard_offsets, local_cdfs, np.asarray(last_nonzero)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedHistogram(universe={self._universe.name!r}, "
            f"size={self._universe.size}, shards={self._num_shards}, "
            f"workers={self._workers})"
        )


def hypothesis_histogram(universe: Universe, weights: np.ndarray | None = None,
                         *, shards: int | None = None,
                         workers: int | None = None,
                         backend: str | ArrayBackend | None = None,
                         ) -> Histogram:
    """Build a mechanism hypothesis: dense, or sharded when asked.

    ``weights=None`` gives the uniform ``Dhat_1``. This is the single
    construction point behind the mechanisms' ``shards=`` /
    ``histogram_workers=`` options, used both at ``__init__`` and when
    restoring a snapshotted hypothesis. ``workers`` without ``shards``
    is rejected: there is nothing to thread over, and silently building
    the sequential dense path would make the knob a lie.
    """
    if weights is None:
        weights = np.full(universe.size, 1.0 / universe.size)
    if shards is None:
        if workers is not None:
            raise ValidationError(
                "histogram workers require sharding: pass shards=... "
                "alongside workers"
            )
        return Histogram(universe, weights, backend=backend)
    return ShardedHistogram(universe, weights, num_shards=shards,
                            workers=workers, backend=backend)


__all__ = ["ShardedHistogram", "hypothesis_histogram", "DEFAULT_SHARD_SIZE",
           "map_shards", "check_shard_params"]
