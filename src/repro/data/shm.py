"""Shared-memory export of datasets and frozen histogram views.

``ShardedService`` used to pickle every dataset into every worker spawn:
universe points, labels, row indices, each copied once per shard into
the spec blob and again into worker heap. This module replaces the copy
with POSIX shared memory: the supervisor packs each dataset's arrays —
universe points/labels, row indices, and the dataset's *frozen*
histogram (the normalized weight vector every mechanism reads at
session open) — into one :class:`multiprocessing.shared_memory.
SharedMemory` segment, and workers attach read-only ndarray views at
zero copy (:meth:`Histogram._adopt_normalized
<repro.data.histogram.Histogram._adopt_normalized>` adopts the
pre-normalized weights without re-validating). Attached arrays are
bitwise the supervisor's, so dataset digests — the ledger/checkpoint
compatibility check — are unchanged.

Ownership discipline (pinned by the chaos suite):

- Segments belong to the **supervisor**, one export per worker
  incarnation; the supervisor unlinks them when it detects the worker's
  death and on close. A SIGKILL'd worker therefore cannot leak a
  segment — it only ever held an attachment, which the kernel reclaims
  with the process.
- Workers **unregister** each attached segment from their
  ``multiprocessing.resource_tracker`` immediately after attach. On
  this interpreter generation (< 3.13, no ``track=False``) an attach
  silently registers the segment with the worker's tracker, whose exit
  cleanup would unlink the supervisor's live segments out from under
  every other worker.
"""

from __future__ import annotations

import re
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import ValidationError

SHM_FORMAT = "repro.data.shm/v1"

#: Segment names start with this prefix + the owning pid, so tests (and
#: operators staring at ``/dev/shm``) can attribute segments to a
#: supervisor process.
SEGMENT_PREFIX = "repro"

_ALIGN = 64


def _sanitize(token: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", token)


def segment_name(owner_pid: int, tag: str) -> str:
    """The deterministic segment name for one export incarnation."""
    return f"{SEGMENT_PREFIX}_{owner_pid}_{_sanitize(tag)}"[:250]


def _unregister_attachment(shm) -> None:
    """Drop a freshly attached segment from this process's resource
    tracker (see module docstring); harmless if it was never tracked."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker variance across versions
        pass


class SharedDatasetExport:
    """Supervisor-owned shared-memory image of a service's datasets.

    Parameters
    ----------
    datasets:
        A :class:`Dataset` or ``{name: Dataset}`` mapping — the same
        shapes :class:`~repro.serve.service.PMWService` accepts, with
        the same normalization (a bare dataset becomes ``"default"``).
    owner_pid, tag:
        Name the segment (:func:`segment_name`); ``tag`` should encode
        the shard id and incarnation so concurrent exports never
        collide and leaked segments are attributable.

    The export packs all datasets into **one** segment (fewer names to
    leak or unlink) with 64-byte-aligned array regions, and builds a
    picklable :attr:`manifest` describing the layout; workers rebuild
    with :func:`attach_datasets`. Call :meth:`close` (idempotent) to
    unlink — the segment survives worker SIGKILLs but not its owner's
    deliberate cleanup.
    """

    def __init__(self, datasets, *, owner_pid: int, tag: str) -> None:
        if isinstance(datasets, Dataset):
            datasets = {"default": datasets}
        if not datasets:
            raise ValidationError("cannot export an empty dataset map")
        plan: list[tuple[str, str, np.ndarray]] = []
        entries: dict[str, dict] = {}
        offset = 0
        for name, dataset in datasets.items():
            universe = dataset.universe
            arrays = {
                "points": np.ascontiguousarray(universe.points),
                "indices": np.ascontiguousarray(dataset.indices),
                "weights": np.ascontiguousarray(
                    dataset.histogram().weights),
            }
            if universe.labels is not None:
                arrays["labels"] = np.ascontiguousarray(universe.labels)
            layout = {}
            for key, array in arrays.items():
                offset = -(-offset // _ALIGN) * _ALIGN
                layout[key] = {
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                }
                plan.append((name, key, array))
                offset += array.nbytes
            entries[name] = {
                "universe_name": universe.name,
                "arrays": layout,
            }
        name = segment_name(owner_pid, tag)
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(offset, 1))
        except FileExistsError:
            # A stale segment from a killed predecessor with the same
            # pid+tag: reclaim the name rather than failing the spawn.
            # No tracker unregister here — the attach registered the
            # name and ``unlink`` unregisters it, which balances.
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(offset, 1))
        for dataset_name, key, array in plan:
            entry = entries[dataset_name]["arrays"][key]
            region = np.ndarray(array.shape, dtype=array.dtype,
                                buffer=self._shm.buf,
                                offset=entry["offset"])
            region[...] = array
        self.manifest = {
            "format": SHM_FORMAT,
            "segment": name,
            "nbytes": offset,
            "datasets": entries,
        }
        self._closed = False

    @property
    def name(self) -> str:
        return self.manifest["segment"]

    def close(self) -> None:
        """Release and unlink the segment (idempotent, never raises)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            # Re-register first (an idempotent set-add in the tracker):
            # an in-process attach (tests, the chaos oracle) unregisters
            # the shared name, and unlink() unregisters again — without
            # the rebalance the tracker logs a spurious KeyError at exit.
            resource_tracker.register(self._shm._name, "shared_memory")
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SharedDatasetExport(segment={self.name!r}, "
                f"nbytes={self.manifest['nbytes']}, "
                f"datasets={sorted(self.manifest['datasets'])})")


def attach_datasets(manifest: dict) -> dict[str, Dataset]:
    """Rebuild ``{name: Dataset}`` from an export manifest, zero-copy.

    Every returned dataset's arrays are read-only views into the shared
    segment, its frozen histogram is pre-attached
    (``dataset.histogram()`` returns the shared view without a
    ``bincount``), and the dataset keeps the segment handle alive for
    its own lifetime. The attachment is immediately unregistered from
    this process's resource tracker so a worker exit — graceful or
    SIGKILL — never unlinks the supervisor's segment.
    """
    if manifest.get("format") != SHM_FORMAT:
        raise ValidationError(
            f"unsupported shared-memory manifest format "
            f"{manifest.get('format')!r} (expected {SHM_FORMAT!r})")
    shm = shared_memory.SharedMemory(name=manifest["segment"])
    _unregister_attachment(shm)

    def view(entry) -> np.ndarray:
        array = np.ndarray(tuple(entry["shape"]),
                           dtype=np.dtype(entry["dtype"]),
                           buffer=shm.buf, offset=entry["offset"])
        array.setflags(write=False)
        return array

    datasets: dict[str, Dataset] = {}
    for name, entry in manifest["datasets"].items():
        arrays = entry["arrays"]
        universe = Universe(
            points=view(arrays["points"]),
            labels=view(arrays["labels"]) if "labels" in arrays else None,
            name=entry["universe_name"])
        frozen = Histogram._adopt_normalized(universe,
                                             view(arrays["weights"]))
        dataset = Dataset._adopt(universe, view(arrays["indices"]),
                                 frozen_histogram=frozen)
        # The views borrow shm.buf: anchor the segment handle to the
        # dataset so it cannot be closed while the arrays are alive.
        dataset._shm_handle = shm
        datasets[name] = dataset
    return datasets


__all__ = [
    "SEGMENT_PREFIX", "SHM_FORMAT", "SharedDatasetExport",
    "attach_datasets", "segment_name",
]
