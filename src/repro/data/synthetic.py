"""Synthetic workload generators.

The paper motivates CM queries with linear regression, logistic regression,
and SVMs on a sensitive dataset (Section 1). These generators build such
datasets *inside* a finite labeled universe: features are planted from a
ground-truth parameter ``theta*`` with noise, then snapped to universe
elements, so mechanisms see exactly the finite-universe model the paper
analyzes while workloads retain realistic signal structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.builders import labeled_universe, random_ball_net
from repro.data.dataset import Dataset
from repro.data.discretize import discretize_points
from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class SyntheticTask:
    """A generated dataset plus its planted ground truth."""

    dataset: Dataset
    theta_star: np.ndarray
    universe: Universe


def sample_dataset(universe: Universe, n: int, weights: np.ndarray | None = None,
                   rng=None) -> Dataset:
    """Draw ``n`` rows iid from a distribution over the universe.

    With ``weights=None`` the distribution is uniform. This is the basic
    population model used by the adaptive-generalization experiments
    (Section 1.3): the dataset is an iid sample from a known population
    histogram.
    """
    generator = as_generator(rng)
    if weights is None:
        indices = generator.integers(0, universe.size, size=n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (universe.size,):
            raise ValidationError(
                f"weights must have shape ({universe.size},), got {weights.shape}"
            )
        weights = weights / weights.sum()
        indices = generator.choice(universe.size, size=n, p=weights)
    return Dataset(universe, indices)


def make_regression_dataset(n: int, d: int, universe_size: int = 512,
                            label_levels: int = 9, noise: float = 0.1,
                            rng=None) -> SyntheticTask:
    """Linear-regression data ``y ≈ <theta*, x>`` on a labeled ball-net universe.

    Features are drawn from the unit ball, labels are ``<theta*, x>`` plus
    Gaussian noise clipped to ``[-1, 1]``, and both are snapped onto a
    labeled universe of ``universe_size * label_levels`` elements. The
    returned ``theta_star`` has unit norm.
    """
    generator = as_generator(rng)
    feature_universe = random_ball_net(d, universe_size, rng=generator)
    labels = np.linspace(-1.0, 1.0, label_levels)
    universe = labeled_universe(feature_universe, labels)

    theta_star = _unit_vector(d, generator)
    raw_x = _ball_points(n, d, generator)
    raw_y = raw_x @ theta_star + noise * generator.standard_normal(n)
    raw_y = np.clip(raw_y, -1.0, 1.0)
    dataset = discretize_points(universe, raw_x, raw_y)
    return SyntheticTask(dataset=dataset, theta_star=theta_star, universe=universe)


def make_classification_dataset(n: int, d: int, universe_size: int = 512,
                                margin: float = 0.2, flip_probability: float = 0.05,
                                rng=None) -> SyntheticTask:
    """Binary classification data ``y = sign(<theta*, x>)`` with label noise.

    Labels live in ``{-1, +1}``; points within ``margin`` of the separating
    hyperplane are resampled, and each label flips independently with
    ``flip_probability``. Suited to logistic/hinge loss workloads.
    """
    if not 0.0 <= flip_probability < 0.5:
        raise ValidationError(
            f"flip_probability must lie in [0, 0.5), got {flip_probability}"
        )
    generator = as_generator(rng)
    feature_universe = random_ball_net(d, universe_size, rng=generator)
    universe = labeled_universe(feature_universe, (-1.0, 1.0))

    theta_star = _unit_vector(d, generator)
    raw_x = _ball_points(n, d, generator)
    scores = raw_x @ theta_star
    # Resample points that fall inside the margin band (up to a few passes).
    for _ in range(50):
        inside = np.abs(scores) < margin
        if not np.any(inside):
            break
        raw_x[inside] = _ball_points(int(inside.sum()), d, generator)
        scores[inside] = raw_x[inside] @ theta_star
    raw_y = np.sign(scores)
    raw_y[raw_y == 0.0] = 1.0
    flips = generator.random(n) < flip_probability
    raw_y[flips] *= -1.0
    dataset = discretize_points(universe, raw_x, raw_y)
    return SyntheticTask(dataset=dataset, theta_star=theta_star, universe=universe)


def _unit_vector(d: int, generator: np.random.Generator) -> np.ndarray:
    vector = generator.standard_normal(d)
    norm = np.linalg.norm(vector)
    if norm == 0.0:  # pragma: no cover - probability zero
        vector[0] = 1.0
        norm = 1.0
    return vector / norm


def _ball_points(n: int, d: int, generator: np.random.Generator) -> np.ndarray:
    directions = generator.standard_normal((n, d))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    radii = generator.random(n) ** (1.0 / d)
    return directions / norms * radii[:, None]
