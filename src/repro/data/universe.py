"""Finite data universes.

A :class:`Universe` enumerates the data domain ``X`` as an array of points in
``R^d``, optionally paired with scalar labels (so supervised losses such as
regression can treat a universe element as an ``(x, y)`` example). All
mechanism-side computation in this library is vectorized over the universe,
matching the ``poly(|X|)`` computational model of Section 4.3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import UniverseError
from repro.utils.validation import check_finite_array


@dataclass(frozen=True)
class Universe:
    """An enumerated finite data universe ``X ⊆ R^d``.

    Parameters
    ----------
    points:
        Array of shape ``(size, dim)``; row ``i`` is the feature vector of
        universe element ``i``.
    labels:
        Optional array of shape ``(size,)`` giving a scalar label per
        element, for supervised losses. ``None`` for unlabeled universes.
    name:
        Human-readable identifier used in reports.
    """

    points: np.ndarray
    labels: np.ndarray | None = None
    name: str = "universe"
    _point_index: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        points = check_finite_array(self.points, "points", ndim=2)
        object.__setattr__(self, "points", points)
        self.points.setflags(write=False)
        if points.shape[0] == 0:
            raise UniverseError("a universe must contain at least one point")
        if self.labels is not None:
            labels = check_finite_array(self.labels, "labels", ndim=1)
            if labels.shape[0] != points.shape[0]:
                raise UniverseError(
                    f"labels has {labels.shape[0]} entries but universe has "
                    f"{points.shape[0]} points"
                )
            object.__setattr__(self, "labels", labels)
            self.labels.setflags(write=False)

    @property
    def size(self) -> int:
        """Number of universe elements ``|X|``."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient feature dimension ``d``."""
        return self.points.shape[1]

    @property
    def is_labeled(self) -> bool:
        """Whether elements carry supervised labels."""
        return self.labels is not None

    @property
    def log_size(self) -> float:
        """``log |X|`` (natural log), the quantity driving the MW bound."""
        return float(np.log(self.size))

    def __len__(self) -> int:
        return self.size

    def element(self, index: int) -> tuple[np.ndarray, float | None]:
        """Return ``(point, label)`` of element ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"universe index {index} out of range [0, {self.size})")
        label = None if self.labels is None else float(self.labels[index])
        return self.points[index], label

    def max_point_norm(self) -> float:
        """Largest L2 norm among universe points (used for scale checks)."""
        return float(np.max(np.linalg.norm(self.points, axis=1)))

    def nearest_index(self, point: np.ndarray) -> int:
        """Index of the universe element closest (L2) to ``point``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise UniverseError(
                f"point has shape {point.shape}, expected ({self.dim},)"
            )
        distances = np.linalg.norm(self.points - point[None, :], axis=1)
        return int(np.argmin(distances))

    def same_domain(self, other: "Universe") -> bool:
        """Whether two universes describe the same data domain.

        Content comparison (points and labels), not object identity —
        a universe rebuilt from a snapshot is the same domain. The name
        is cosmetic and ignored.
        """
        if self is other:
            return True
        if self.size != other.size or self.dim != other.dim:
            return False
        if (self.labels is None) != (other.labels is None):
            return False
        if not np.array_equal(self.points, other.points):
            return False
        return self.labels is None or np.array_equal(self.labels, other.labels)

    def with_labels(self, labels: np.ndarray, name: str | None = None) -> "Universe":
        """Return a copy of this universe with ``labels`` attached."""
        return Universe(
            points=np.array(self.points),
            labels=np.asarray(labels, dtype=float),
            name=name or f"{self.name}+labels",
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        labeled = "labeled" if self.is_labeled else "unlabeled"
        return (
            f"Universe(name={self.name!r}, size={self.size}, dim={self.dim}, "
            f"{labeled}, log|X|={self.log_size:.3f})"
        )
