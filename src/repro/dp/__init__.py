"""Differential-privacy substrate.

Everything the paper's mechanism consumes as a privacy primitive lives here:

- :mod:`repro.dp.mechanisms` — Laplace, Gaussian, exponential mechanism and
  randomized response (Definition 2.1 building blocks).
- :mod:`repro.dp.sparse_vector` — the online sparse-vector algorithm with
  exactly the black-box contract of Theorem 3.1.
- :mod:`repro.dp.composition` — basic and advanced (DRV10, Theorem 3.10)
  composition calculators, including the paper's per-round budget split.
- :mod:`repro.dp.accountant` — a privacy odometer that interactive
  mechanisms use to enforce their declared ``(epsilon, delta)`` budget.
"""

from repro.dp.mechanisms import (
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    randomized_response,
)
from repro.dp.sparse_vector import SparseVector, SparseVectorAnswer
from repro.dp.composition import (
    advanced_composition,
    basic_composition,
    per_round_budget,
    sparse_vector_sample_bound,
)
from repro.dp.accountant import PrivacyAccountant
from repro.dp.renyi import (
    RenyiAccountant,
    gaussian_rdp,
    laplace_rdp,
    rdp_to_dp,
)

__all__ = [
    "laplace_mechanism",
    "gaussian_mechanism",
    "gaussian_sigma",
    "exponential_mechanism",
    "randomized_response",
    "SparseVector",
    "SparseVectorAnswer",
    "basic_composition",
    "advanced_composition",
    "per_round_budget",
    "sparse_vector_sample_bound",
    "PrivacyAccountant",
    "RenyiAccountant",
    "gaussian_rdp",
    "laplace_rdp",
    "rdp_to_dp",
]
