"""Privacy accountant (odometer).

Interactive mechanisms in this library register every access to the private
dataset with a :class:`PrivacyAccountant`. The accountant can report the
running total under basic or advanced composition and — when constructed
with a budget — refuses spends that would exceed it, raising
:class:`repro.exceptions.PrivacyBudgetExhausted` instead of silently
degrading the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dp.composition import (
    PrivacyParameters,
    advanced_composition,
    basic_composition,
)
from repro.exceptions import PrivacyBudgetExhausted
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class PrivacySpend:
    """One recorded access to the private data."""

    epsilon: float
    delta: float
    label: str = ""


@dataclass
class PrivacyAccountant:
    """Tracks ``(epsilon, delta)`` spends against an optional budget.

    Parameters
    ----------
    epsilon_budget, delta_budget:
        Optional hard budget. When set, :meth:`spend` raises
        :class:`PrivacyBudgetExhausted` if the *basic-composition* running
        total would exceed it. (Basic composition is the conservative
        enforcement rule; :meth:`total_advanced` reports the tighter bound.)
    """

    epsilon_budget: float | None = None
    delta_budget: float | None = None
    spends: list[PrivacySpend] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon_budget is not None:
            check_positive(self.epsilon_budget, "epsilon_budget")
        if self.delta_budget is not None:
            check_probability(self.delta_budget, "delta_budget")

    # -- recording ---------------------------------------------------------

    def spend(self, epsilon: float, delta: float = 0.0, label: str = "") -> None:
        """Record one ``(epsilon, delta)``-DP access, enforcing the budget."""
        check_positive(epsilon, "epsilon")
        check_probability(delta, "delta")
        self.preflight(epsilon, delta, label=label)
        self.spends.append(PrivacySpend(float(epsilon), float(delta), label))

    def preflight(self, epsilon: float, delta: float = 0.0,
                  label: str = "") -> None:
        """Raise if a prospective spend would exceed the budget.

        Records nothing. Interactive mechanisms call this *before* doing
        the private work a spend pays for (consuming a sparse-vector slot,
        running an oracle), so budget exhaustion surfaces as a clean
        refusal rather than a mid-round failure that corrupts their state.
        """
        new_epsilon = self.total_basic().epsilon + epsilon if self.spends else epsilon
        new_delta = (self.total_basic().delta if self.spends else 0.0) + delta
        if self.epsilon_budget is not None and new_epsilon > self.epsilon_budget * (1 + 1e-9):
            raise PrivacyBudgetExhausted(
                f"spending ({epsilon:g}, {delta:g}) for {label!r} would bring "
                f"epsilon to {new_epsilon:g} > budget {self.epsilon_budget:g}",
                epsilon_spent=new_epsilon, epsilon_budget=self.epsilon_budget,
            )
        if self.delta_budget is not None and new_delta > self.delta_budget * (1 + 1e-9):
            raise PrivacyBudgetExhausted(
                f"spending ({epsilon:g}, {delta:g}) for {label!r} would bring "
                f"delta to {new_delta:g} > budget {self.delta_budget:g}",
            )

    # -- serialization -----------------------------------------------------

    def to_records(self) -> list[dict]:
        """The spend history as JSON-serializable records.

        Each record is ``{"epsilon", "delta", "label"}``. Together with the
        budget fields this is the accountant's full state: feeding the
        records back through :meth:`from_records` rebuilds an accountant
        with identical :meth:`total_basic` and :meth:`total_advanced`. The
        serving layer's ledger (:mod:`repro.serve.ledger`) journals exactly
        these records.
        """
        return [
            {"epsilon": s.epsilon, "delta": s.delta, "label": s.label}
            for s in self.spends
        ]

    def to_grouped_records(self) -> list[dict]:
        """The spend history run-length encoded, preserving order.

        Long-lived interactive sessions spend the same calibrated
        ``(epsilon, delta, label)`` round after round, so consecutive
        identical spends collapse into one record with a ``count`` —
        turning an O(history) serialization into O(distinct runs).
        :meth:`from_records` accepts both forms; expansion reproduces the
        original sequence exactly (composed totals are floating-point
        sums, so order is part of the contract). Service snapshots and
        the budget ledger's compaction baselines both use this form.
        """
        return group_records(self.to_records())

    @classmethod
    def from_records(cls, records, *, epsilon_budget: float | None = None,
                     delta_budget: float | None = None) -> "PrivacyAccountant":
        """Rebuild an accountant from :meth:`to_records` (or
        :meth:`to_grouped_records`) output.

        Records are trusted journal entries (they were validated when first
        spent), so they are restored verbatim rather than re-run through
        :meth:`spend` — in particular a restored history may legitimately
        sit exactly at its budget without raising. A grouped record
        expands into ``count`` references to one immutable
        :class:`PrivacySpend`, so rebuilding a 20k-spend history costs
        O(distinct runs), not O(spends).
        """
        accountant = cls(epsilon_budget=epsilon_budget,
                         delta_budget=delta_budget)
        spends: list[PrivacySpend] = []
        for r in records:
            spend = PrivacySpend(float(r["epsilon"]), float(r["delta"]),
                                 str(r.get("label", "")))
            count = int(r.get("count", 1))
            if count == 1:
                spends.append(spend)
            else:
                # PrivacySpend is frozen: sharing one object `count`
                # times is indistinguishable from `count` constructions.
                spends.extend([spend] * count)
        accountant.spends = spends
        return accountant

    # -- reporting -----------------------------------------------------------

    @property
    def num_spends(self) -> int:
        """How many accesses have been recorded."""
        return len(self.spends)

    def total_basic(self) -> PrivacyParameters:
        """Running total under basic composition (sum of eps, sum of delta)."""
        if not self.spends:
            return PrivacyParameters(epsilon=1e-300, delta=0.0)
        epsilon = sum(s.epsilon for s in self.spends)
        delta = min(1.0, sum(s.delta for s in self.spends))
        return PrivacyParameters(epsilon, delta)

    def total_advanced(self, delta_prime: float) -> PrivacyParameters:
        """Running total under Theorem 3.10 for homogeneous spends.

        Requires all spends to share one ``(eps0, delta0)``; heterogeneous
        histories fall back to basic composition (still a valid bound).
        """
        if not self.spends:
            return PrivacyParameters(epsilon=1e-300, delta=0.0)
        eps_values = {round(s.epsilon, 15) for s in self.spends}
        delta_values = {round(s.delta, 15) for s in self.spends}
        if len(eps_values) == 1 and len(delta_values) == 1:
            first = self.spends[0]
            return advanced_composition(
                first.epsilon, first.delta, len(self.spends), delta_prime
            )
        return self.total_basic()

    def remaining_epsilon(self) -> float:
        """Epsilon left under the budget (``inf`` if unbudgeted)."""
        if self.epsilon_budget is None:
            return float("inf")
        spent = self.total_basic().epsilon if self.spends else 0.0
        return max(0.0, self.epsilon_budget - spent)

    def telemetry(self) -> dict:
        """Gauge-ready view of the odometer for the observability layer.

        ``epsilon_spent``/``delta_spent`` are the exact basic-composition
        running sums (0.0 when nothing was spent — unlike
        :meth:`total_basic`, which floors epsilon at 1e-300 for
        downstream log-domain math). Because the sums run over the spend
        list in journal order, an accountant rebuilt from the same
        records (:meth:`from_records`, ledger replay) reports bitwise
        identical values — the property the budget-telemetry gauges and
        benchmark E21's exactness check rely on.
        """
        epsilon_spent = (sum(s.epsilon for s in self.spends)
                         if self.spends else 0.0)
        delta_spent = (min(1.0, sum(s.delta for s in self.spends))
                       if self.spends else 0.0)
        return {
            "epsilon_spent": epsilon_spent,
            "delta_spent": delta_spent,
            "num_spends": len(self.spends),
            "epsilon_budget": self.epsilon_budget,
            "delta_budget": self.delta_budget,
            "epsilon_remaining": self.remaining_epsilon(),
        }

    def summary(self) -> str:
        """Human-readable accounting summary."""
        total = self.total_basic()
        lines = [
            f"PrivacyAccountant: {self.num_spends} spends, "
            f"basic total (eps={total.epsilon:g}, delta={total.delta:g})"
        ]
        if self.epsilon_budget is not None:
            lines.append(
                f"  budget eps={self.epsilon_budget:g}, "
                f"remaining eps={self.remaining_epsilon():g}"
            )
        return "\n".join(lines)


def group_records(records: list[dict]) -> list[dict]:
    """Run-length encode spend records, preserving order exactly.

    Consecutive records with identical ``(epsilon, delta, label)``
    collapse into one group carrying a ``count``; :func:`expand_records`
    (and :meth:`PrivacyAccountant.from_records`) reproduce the original
    sequence bit-for-bit — composed totals are order-sensitive
    floating-point sums, so no reordering is ever allowed.
    """
    groups: list[dict] = []
    for record in records:
        key = (record["epsilon"], record["delta"],
               record.get("label", ""))
        if groups and (groups[-1]["epsilon"], groups[-1]["delta"],
                       groups[-1]["label"]) == key:
            groups[-1]["count"] += 1
        else:
            groups.append({"epsilon": record["epsilon"],
                           "delta": record["delta"],
                           "label": record.get("label", ""),
                           "count": 1})
    return groups


def expand_records(groups: list[dict]) -> list[dict]:
    """Inverse of :func:`group_records` (plain records pass through).

    Each expanded record is a fresh dict, safe for callers to annotate.
    """
    records = []
    for group in groups:
        records.extend(
            {"epsilon": group["epsilon"], "delta": group["delta"],
             "label": group.get("label", "")}
            for _ in range(int(group.get("count", 1)))
        )
    return records


def restore_accountant(state: dict) -> PrivacyAccountant:
    """Rebuild an accountant from a snapshot's accountant section
    (``{"records", "epsilon_budget", "delta_budget"}``), so armed budgets
    survive snapshot/restore."""
    return PrivacyAccountant.from_records(
        state.get("records", []),
        epsilon_budget=state.get("epsilon_budget"),
        delta_budget=state.get("delta_budget"),
    )


# Helper mirroring basic_composition for symmetric import ergonomics.
__all__ = ["PrivacyAccountant", "PrivacySpend", "basic_composition",
           "restore_accountant", "group_records", "expand_records"]
