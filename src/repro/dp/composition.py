"""Composition calculators for differential privacy.

Implements the two composition regimes the paper relies on:

- **Basic composition**: a ``T``-fold composition of ``(eps0, delta0)``-DP
  algorithms is ``(T*eps0, T*delta0)``-DP.
- **Advanced composition** (Dwork–Rothblum–Vadhan [DRV10], restated as
  Theorem 3.10): the same composition is
  ``(sqrt(2 T log(1/delta')) * eps0 + 2 T eps0^2, delta' + T*delta0)``-DP.

It also provides the paper's *inverse* split — Figure 3 assigns each of the
``T`` oracle calls

    ``eps0 = eps / sqrt(8 T log(4/delta))``,  ``delta0 = delta / (4T)``

so the T-fold composition stays within ``(eps/2, delta/2)`` — and the
sample-size bound of Theorem 3.1 for the sparse-vector algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class PrivacyParameters:
    """An ``(epsilon, delta)`` differential-privacy guarantee."""

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_probability(self.delta, "delta")

    def dominates(self, other: "PrivacyParameters", *, slack: float = 1e-12) -> bool:
        """Whether this guarantee is at least as strong as ``other``."""
        return (self.epsilon <= other.epsilon + slack
                and self.delta <= other.delta + slack)


def basic_composition(epsilon0: float, delta0: float, rounds: int) -> PrivacyParameters:
    """Privacy of a ``rounds``-fold composition under basic composition."""
    check_positive(epsilon0, "epsilon0")
    check_probability(delta0, "delta0")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    return PrivacyParameters(rounds * epsilon0, min(1.0, rounds * delta0))


def advanced_composition(epsilon0: float, delta0: float, rounds: int,
                         delta_prime: float) -> PrivacyParameters:
    """Theorem 3.10 ([DRV10]): privacy of a ``rounds``-fold composition.

    Returns ``(sqrt(2 T log(1/delta')) eps0 + 2 T eps0^2, delta' + T delta0)``.
    """
    check_positive(epsilon0, "epsilon0")
    check_probability(delta0, "delta0")
    check_positive(delta_prime, "delta_prime")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    epsilon = (math.sqrt(2.0 * rounds * math.log(1.0 / delta_prime)) * epsilon0
               + 2.0 * rounds * epsilon0 * epsilon0)
    delta = min(1.0, delta_prime + rounds * delta0)
    return PrivacyParameters(epsilon, delta)


def per_round_budget(epsilon: float, delta: float, rounds: int) -> PrivacyParameters:
    """The paper's per-round split for a ``rounds``-fold composition.

    Section 3.4.1: choosing ``eps0 = eps / sqrt(8 T log(2/delta))`` and
    ``delta0 = delta / (2T)`` makes the T-fold advanced composition
    ``(eps, delta)``-DP. (Figure 3 instantiates this with the budget halved
    first, yielding its ``sqrt(8 T log(4/delta))`` and ``delta/4T``.)
    """
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    epsilon0 = epsilon / math.sqrt(8.0 * rounds * math.log(2.0 / delta))
    delta0 = delta / (2.0 * rounds)
    return PrivacyParameters(epsilon0, delta0)


def verify_per_round_budget(epsilon: float, delta: float, rounds: int) -> bool:
    """Check that :func:`per_round_budget` really composes to ``(eps, delta)``.

    Recomposes the per-round split through Theorem 3.10 with
    ``delta' = delta/2`` and verifies domination. Used by the test-suite and
    exposed because it documents *why* the split is sound.
    """
    split = per_round_budget(epsilon, delta, rounds)
    total = advanced_composition(split.epsilon, split.delta, rounds, delta / 2.0)
    return total.dominates(PrivacyParameters(epsilon, delta), slack=1e-9)


def sparse_vector_sample_bound(sensitivity_scale: float, max_above: int,
                               total_queries: int, alpha: float, epsilon: float,
                               delta: float, beta: float) -> float:
    """The sample-size requirement of Theorem 3.1.

    ``n >= 256 * S * sqrt(T * log(2/delta)) * log(4k/beta) / (eps * alpha)``
    guarantees the threshold game answers correctly with probability
    ``1 - beta``.
    """
    s = check_positive(sensitivity_scale, "sensitivity_scale")
    check_positive(alpha, "alpha")
    check_positive(epsilon, "epsilon")
    check_positive(delta, "delta")
    check_positive(beta, "beta")
    if max_above < 1 or total_queries < 1:
        raise ValueError("max_above and total_queries must be >= 1")
    return (256.0 * s * math.sqrt(max_above * math.log(2.0 / delta))
            * math.log(4.0 * total_queries / beta) / (epsilon * alpha))
