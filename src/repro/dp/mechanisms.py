"""Basic differentially private mechanisms.

These are the noise primitives (Definition 2.1) the rest of the library is
assembled from: Laplace and Gaussian output perturbation, the exponential
mechanism of McSherry–Talwar [MT07] (used by classic PMW to select a bad
query, and by our grid-based ERM oracle), and randomized response.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability


def laplace_mechanism(value, sensitivity: float, epsilon: float, rng=None):
    """Add Laplace noise calibrated to ``sensitivity / epsilon``.

    Releases ``value + Lap(sensitivity / epsilon)`` per coordinate, which is
    ``(epsilon, 0)``-DP when ``value`` has L1 sensitivity ``sensitivity``.
    Scalar in, scalar out; array in, array out.
    """
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    generator = as_generator(rng)
    value = np.asarray(value, dtype=float)
    noise = generator.laplace(0.0, sensitivity / epsilon, size=value.shape)
    noisy = value + noise
    return float(noisy) if noisy.shape == () else noisy


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Noise scale for the classic Gaussian mechanism.

    ``sigma = sqrt(2 ln(1.25/delta)) * sensitivity / epsilon`` gives
    ``(epsilon, delta)``-DP for an L2-``sensitivity`` statistic when
    ``epsilon <= 1`` (Dwork–Roth, Theorem A.1).
    """
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_positive(delta, "delta")
    return float(np.sqrt(2.0 * np.log(1.25 / delta)) * sensitivity / epsilon)


def gaussian_mechanism(value, sensitivity: float, epsilon: float, delta: float,
                       rng=None):
    """Add Gaussian noise calibrated for ``(epsilon, delta)``-DP.

    ``sensitivity`` is the L2 sensitivity of ``value``.
    """
    sigma = gaussian_sigma(sensitivity, epsilon, delta)
    generator = as_generator(rng)
    value = np.asarray(value, dtype=float)
    noisy = value + generator.normal(0.0, sigma, size=value.shape)
    return float(noisy) if noisy.shape == () else noisy


def exponential_mechanism(scores, sensitivity: float, epsilon: float,
                          rng=None) -> int:
    """Select an index with probability proportional to ``exp(eps*s/(2*Δ))``.

    Implements McSherry–Talwar [MT07]: given per-candidate utility
    ``scores`` with sensitivity ``sensitivity``, returns an
    ``(epsilon, 0)``-DP choice of candidate index, exponentially biased
    toward high scores. Computed with a max-shift for numerical stability.
    """
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError(f"scores must be a non-empty 1-D array, got {scores.shape}")
    logits = (epsilon / (2.0 * sensitivity)) * scores
    logits -= logits.max()
    weights = np.exp(logits)
    probabilities = weights / weights.sum()
    generator = as_generator(rng)
    return int(generator.choice(scores.size, p=probabilities))


def randomized_response(bit: int, epsilon: float, rng=None) -> int:
    """Classic randomized response on one bit.

    Returns the true bit with probability ``e^eps / (1 + e^eps)``, the flip
    otherwise — ``(epsilon, 0)``-DP. Included as the simplest possible
    local mechanism for the privacy test-suite's sanity baselines.
    """
    epsilon = check_positive(epsilon, "epsilon")
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")
    keep_probability = check_probability(
        float(np.exp(epsilon) / (1.0 + np.exp(epsilon))), "keep_probability"
    )
    generator = as_generator(rng)
    if generator.random() < keep_probability:
        return bit
    return 1 - bit
