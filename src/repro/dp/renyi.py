"""Rényi differential privacy (RDP) accounting.

An optional, tighter accounting path for the Gaussian-noise components
(noisy gradient descent makes ``T`` Gaussian releases per oracle call; the
paper composes them with Theorem 3.10, which is loose for Gaussians).
Mironov's RDP calculus:

- the Gaussian mechanism with noise multiplier ``sigma = noise_std /
  sensitivity`` satisfies ``(a, a / (2 sigma^2))``-RDP for every order
  ``a > 1``;
- RDP composes by *addition* of the epsilons at each order;
- ``(a, eps_a)``-RDP converts to ``(eps_a + log(1/delta)/(a-1), delta)``-DP,
  optimized over the tracked orders.

Used by the E14 comparison benchmark to show how much budget the
advanced-composition accounting leaves on the table; the mechanism's
formal guarantees in the rest of the library deliberately stay on the
paper's own Theorem 3.10 path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dp.composition import PrivacyParameters
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive

#: Default grid of Rényi orders tracked by the accountant.
DEFAULT_ORDERS = (1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0, 64.0,
                  128.0, 256.0)


def gaussian_rdp(noise_multiplier: float, order: float) -> float:
    """RDP epsilon of one Gaussian release at ``order``.

    ``eps_a = a / (2 sigma^2)`` for the Gaussian mechanism with noise
    standard deviation ``sigma * sensitivity``.
    """
    noise_multiplier = check_positive(noise_multiplier, "noise_multiplier")
    if order <= 1.0:
        raise ValidationError(f"order must exceed 1, got {order}")
    return order / (2.0 * noise_multiplier * noise_multiplier)


def laplace_rdp(scale_multiplier: float, order: float) -> float:
    """RDP epsilon of one Laplace release at ``order``.

    For Laplace noise ``b = scale_multiplier * sensitivity`` the exact RDP
    is (Mironov 2017, Prop. 6), with ``t = 1/scale_multiplier``:

        ``eps_a = (1/(a-1)) * log( (a/(2a-1)) e^{t(a-1)}
                                   + ((a-1)/(2a-1)) e^{-t a} )``.
    """
    scale_multiplier = check_positive(scale_multiplier, "scale_multiplier")
    if order <= 1.0:
        raise ValidationError(f"order must exceed 1, got {order}")
    t = 1.0 / scale_multiplier
    a = order
    # log-sum-exp of the two weighted terms for stability.
    log_terms = np.array([
        math.log(a / (2 * a - 1)) + t * (a - 1),
        math.log((a - 1) / (2 * a - 1)) - t * a,
    ])
    peak = log_terms.max()
    return float((peak + math.log(np.exp(log_terms - peak).sum())) / (a - 1))


def rdp_to_dp(order: float, rdp_epsilon: float,
              delta: float) -> PrivacyParameters:
    """Convert one ``(order, eps)``-RDP point to ``(eps', delta)``-DP."""
    check_positive(delta, "delta")
    if order <= 1.0:
        raise ValidationError(f"order must exceed 1, got {order}")
    epsilon = rdp_epsilon + math.log(1.0 / delta) / (order - 1.0)
    return PrivacyParameters(max(epsilon, 1e-300), delta)


@dataclass
class RenyiAccountant:
    """Accumulates RDP across releases; converts to (eps, delta)-DP.

    Tracks a fixed grid of orders; each recorded release adds its
    per-order epsilon (RDP composition is additive). :meth:`to_dp` picks
    the best order for a target ``delta``.
    """

    orders: tuple = DEFAULT_ORDERS
    _totals: np.ndarray = field(default=None, repr=False)
    releases: int = 0

    def __post_init__(self) -> None:
        if any(order <= 1.0 for order in self.orders):
            raise ValidationError("all orders must exceed 1")
        self._totals = np.zeros(len(self.orders))

    def record_gaussian(self, noise_multiplier: float, count: int = 1) -> None:
        """Record ``count`` Gaussian releases at this noise multiplier."""
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        increments = np.array([
            gaussian_rdp(noise_multiplier, order) for order in self.orders
        ])
        self._totals += count * increments
        self.releases += count

    def record_laplace(self, scale_multiplier: float, count: int = 1) -> None:
        """Record ``count`` Laplace releases at this scale multiplier."""
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        increments = np.array([
            laplace_rdp(scale_multiplier, order) for order in self.orders
        ])
        self._totals += count * increments
        self.releases += count

    def rdp_at(self, order: float) -> float:
        """Accumulated RDP epsilon at one tracked order."""
        for tracked, total in zip(self.orders, self._totals):
            if tracked == order:
                return float(total)
        raise ValidationError(f"order {order} is not tracked; "
                              f"tracked orders: {self.orders}")

    def to_dp(self, delta: float) -> PrivacyParameters:
        """The best ``(epsilon, delta)`` over all tracked orders."""
        check_positive(delta, "delta")
        candidates = [
            rdp_to_dp(order, float(total), delta)
            for order, total in zip(self.orders, self._totals)
        ]
        best = min(candidates, key=lambda params: params.epsilon)
        return best


def gaussian_composition_comparison(noise_multiplier: float, releases: int,
                                    delta: float) -> dict:
    """Total epsilon for ``releases`` Gaussian releases, three ways.

    Returns the per-release epsilon implied by the classic Gaussian
    mechanism plus the totals under basic composition, advanced
    composition (Theorem 3.10), and RDP — the E14 comparison.
    """
    from repro.dp.composition import advanced_composition, basic_composition

    # Classic single-release epsilon at this sigma (inverting the
    # sqrt(2 log(1.25/delta))/eps calibration).
    per_release = math.sqrt(2.0 * math.log(1.25 / delta)) / noise_multiplier
    basic = basic_composition(per_release, delta, releases)
    advanced = advanced_composition(per_release, delta, releases, delta)
    accountant = RenyiAccountant()
    accountant.record_gaussian(noise_multiplier, count=releases)
    renyi = accountant.to_dp(delta)
    return {
        "per_release_epsilon": per_release,
        "basic": basic,
        "advanced": advanced,
        "renyi": renyi,
    }
