"""The online sparse-vector algorithm (Theorem 3.1's black box).

The paper consumes sparse vector as a black box ``SV(T, k, alpha, eps,
delta)`` playing the threshold game of Figure 2: it receives a stream of
low-sensitivity queries and answers each with ``top`` / ``bottom`` such that

- queries with ``q(D) >= alpha`` are answered ``top``,
- queries with ``q(D) <= alpha/2`` are answered ``bottom``,
- it halts after ``T`` answers of ``top``,
- the whole interaction is ``(eps, delta)``-DP,

provided ``n`` satisfies the Theorem 3.1 bound. This module implements the
standard construction (see [DR14], Algorithm "Sparse"): ``T`` sequential
runs of AboveThreshold, each pure ``eps0``-DP with

    threshold noise  rho ~ Lap(2*Delta/eps0)   (redrawn after each ``top``)
    per-query noise  nu  ~ Lap(4*Delta/eps0)

where ``Delta`` is the query sensitivity, and ``eps0`` chosen so the
``T``-fold advanced composition (Theorem 3.10) totals ``(eps, delta)``.
The noisy comparison is against the midpoint threshold ``3*alpha/4`` so the
``alpha`` / ``alpha/2`` margin is symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.accountant import PrivacyAccountant
from repro.dp.composition import per_round_budget
from repro.exceptions import MechanismHalted, ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SparseVectorAnswer:
    """Answer to one threshold-game query.

    Attributes
    ----------
    above:
        ``True`` for ``top`` (query judged above threshold).
    query_index:
        0-based position of the query in the stream.
    above_index:
        If ``above``, the 0-based count of ``top`` answers so far
        (the paper's update index ``t``); else ``None``.
    """

    above: bool
    query_index: int
    above_index: int | None = None


class SparseVector:
    """Online sparse vector over a stream of sensitive scalar queries.

    Parameters
    ----------
    alpha:
        The threshold-game accuracy target: ``q(D) >= alpha`` should yield
        ``top`` and ``q(D) <= alpha/2`` should yield ``bottom``. The noisy
        comparison uses the midpoint ``3*alpha/4``.
    sensitivity:
        Sensitivity ``Delta`` of every query (the paper uses ``3S/n``).
    epsilon, delta:
        Total privacy budget for the whole interaction.
    max_above:
        ``T``: the algorithm halts after this many ``top`` answers.
    rng:
        Seed or generator for the noise stream.
    noise_multiplier:
        Scales both Laplace noise magnitudes. ``1.0`` (default) is the
        exact DP calibration; values below 1 *void the formal privacy
        guarantee* and exist only for non-private ablation runs (they are
        reported as such by :attr:`is_formally_private`).
    accountant:
        Optional :class:`PrivacyAccountant`; the construction registers a
        single ``(epsilon, delta)`` spend covering the whole lifetime.
    """

    def __init__(self, alpha: float, sensitivity: float, epsilon: float,
                 delta: float, max_above: int, rng=None,
                 noise_multiplier: float = 1.0,
                 accountant: PrivacyAccountant | None = None) -> None:
        self.alpha = check_positive(alpha, "alpha")
        self.sensitivity = check_positive(sensitivity, "sensitivity")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_positive(delta, "delta")
        if max_above < 1:
            raise ValidationError(f"max_above must be >= 1, got {max_above}")
        self.max_above = int(max_above)
        self.noise_multiplier = float(noise_multiplier)
        if self.noise_multiplier < 0.0:
            raise ValidationError("noise_multiplier must be non-negative")
        self._rng = as_generator(rng)

        # Each AboveThreshold run is pure eps0-DP; T runs compose to
        # (eps, delta) by Theorem 3.10 via the paper's per-round split
        # (delta0 = 0 for pure mechanisms, so the delta/2T slot is unused).
        self.epsilon_per_run = per_round_budget(epsilon, delta, self.max_above).epsilon
        base = self.sensitivity / self.epsilon_per_run
        self._threshold_noise_scale = 2.0 * base * self.noise_multiplier
        self._query_noise_scale = 4.0 * base * self.noise_multiplier
        self.threshold = 0.75 * self.alpha

        self._noisy_threshold = self._draw_threshold()
        self._queries_asked = 0
        self._above_count = 0
        self._halted = False
        if accountant is not None:
            accountant.spend(self.epsilon, self.delta, label="sparse-vector")

    # -- state -------------------------------------------------------------

    @property
    def queries_asked(self) -> int:
        """Number of queries processed so far."""
        return self._queries_asked

    @property
    def above_count(self) -> int:
        """Number of ``top`` answers issued so far."""
        return self._above_count

    @property
    def halted(self) -> bool:
        """Whether the ``T``-th ``top`` has been issued (Theorem 3.1, prop 2)."""
        return self._halted

    @property
    def is_formally_private(self) -> bool:
        """``False`` when ``noise_multiplier < 1`` voided the DP calibration."""
        return self.noise_multiplier >= 1.0

    # -- interaction ---------------------------------------------------------

    def process(self, query_value: float) -> SparseVectorAnswer:
        """Answer one query of the threshold game.

        ``query_value`` is ``q_j(D)``, computed by the caller; only the
        *comparison* is privatized here, which is exactly the standard
        AboveThreshold structure (the caller must not release
        ``query_value`` directly).
        """
        if self._halted:
            raise MechanismHalted(
                f"sparse vector already issued {self.max_above} top answers"
            )
        query_value = float(query_value)
        if not np.isfinite(query_value):
            raise ValidationError("query value must be finite")
        index = self._queries_asked
        self._queries_asked += 1

        noisy_query = query_value + self._laplace(self._query_noise_scale)
        if noisy_query >= self._noisy_threshold:
            above_index = self._above_count
            self._above_count += 1
            if self._above_count >= self.max_above:
                self._halted = True
            else:
                # Fresh AboveThreshold run: redraw the threshold noise.
                self._noisy_threshold = self._draw_threshold()
            return SparseVectorAnswer(True, index, above_index)
        return SparseVectorAnswer(False, index)

    # -- serialization ---------------------------------------------------------

    def state_dict(self) -> dict:
        """The mutable interaction state as a JSON-serializable dict.

        Captures the round counters, the current noisy threshold, and the
        noise generator state, so a restored sparse vector continues the
        *same* AboveThreshold run bit-for-bit. The noisy threshold is
        internal mechanism state — snapshots containing it must be stored
        server-side (releasing it would not break DP of past answers, but
        the snapshot as a whole is not a public artifact).
        """
        return {
            "noisy_threshold": self._noisy_threshold,
            "queries_asked": self._queries_asked,
            "above_count": self._above_count,
            "halted": self._halted,
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore interaction state captured by :meth:`state_dict`.

        The construction-time parameters (alpha, sensitivity, budget, T)
        are not part of the state; the caller must have built this instance
        with the same parameters as the snapshotted one — and without an
        accountant, so the lifetime budget is not double-counted.
        """
        self._noisy_threshold = float(state["noisy_threshold"])
        self._queries_asked = int(state["queries_asked"])
        self._above_count = int(state["above_count"])
        self._halted = bool(state["halted"])
        self._rng.bit_generator.state = state["rng_state"]

    # -- internals ------------------------------------------------------------

    def _draw_threshold(self) -> float:
        return self.threshold + self._laplace(self._threshold_noise_scale)

    def _laplace(self, scale: float) -> float:
        if scale == 0.0:
            return 0.0
        return float(self._rng.laplace(0.0, scale))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseVector(alpha={self.alpha:g}, eps={self.epsilon:g}, "
            f"delta={self.delta:g}, T={self.max_above}, "
            f"asked={self._queries_asked}, above={self._above_count}, "
            f"halted={self._halted})"
        )
