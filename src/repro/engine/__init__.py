"""`repro.engine` — the batched query-evaluation engine.

The mechanisms in :mod:`repro.core` were written query-at-a-time: each
round evaluates one loss over the whole universe, and a ``k``-query
workload pays ``k`` full passes even when the queries share almost all of
their structure. This package is the batch counterpart — the hot paths
the ROADMAP's "fast as the hardware allows" north star targets:

- :mod:`repro.engine.kernels` — per-family vectorized kernels: the
  loss-matrix layout for linear queries (one matvec answers the whole
  batch), the margin-matrix layout for GLM losses (one ``|X|×d @ d×B``
  matmul replaces ``B`` per-query feature products), and shared moment
  kernels for squared-family closed forms.
- :mod:`repro.engine.batch` — :func:`compile_batch` groups a
  heterogeneous batch by kernel family; :func:`batch_answers`,
  :func:`batch_loss_on`, and :func:`batch_data_minima` evaluate it in one
  vectorized pass per family, falling back to the scalar path for
  anything a kernel cannot prove it handles.
- :mod:`repro.engine.versioned` — :class:`VersionedBatchEvaluator` keeps
  per-entry version stamps against an evolving hypothesis core, so only
  stale answers recompute across MW updates (plus a fused
  update-then-evaluate call for whole-batch consumers).

Consumers: :class:`~repro.core.pmw_cm.PrivateMWConvex` pre-warms its
data-side minimization cache through :func:`batch_data_minima`;
:class:`~repro.core.pmw_linear.PrivateMWLinear` answers whole streams
through the loss-matrix layout (recomputing only the suffix after each MW
update); the serving layer's batch planner hands mechanism lanes to the
engine before executing them, and the serving gateway
(:mod:`repro.serve.gateway`) coalesces queued concurrent requests into
exactly such lanes — sustained load converts into batched kernel work.
Large universes pair the engine with
:class:`~repro.data.sharded.ShardedHistogram`, whose updates and
reductions run shard-by-shard.

Agreement with the scalar path is a contract, not an accident: every
kernel computes the same quantity through a reassociated product, and
``tests/property/test_batch_agreement.py`` pins batched-vs-scalar
divergence below ``1e-10``. ``benchmarks/bench_batch_engine.py`` measures
the speedups (≥3x on a 64-query GLM batch is the regression bar).
"""

from repro.engine.batch import (
    CompiledBatch,
    batch_answers,
    batch_data_minima,
    batch_loss_on,
    closed_form_minima,
    compile_batch,
    dedupe_by_fingerprint,
)
from repro.engine.versioned import VersionedBatchEvaluator
from repro.engine import kernels

__all__ = [
    "CompiledBatch",
    "compile_batch",
    "batch_answers",
    "batch_loss_on",
    "batch_data_minima",
    "closed_form_minima",
    "dedupe_by_fingerprint",
    "VersionedBatchEvaluator",
    "kernels",
]
