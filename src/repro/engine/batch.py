"""Compile a batch of queries into per-family groups and evaluate them.

The engine's entry points take a *heterogeneous* list of queries —
:class:`~repro.losses.linear.LinearQuery` tables, GLM losses with
per-query feature rotations, anything implementing
:class:`~repro.losses.base.LossFunction` — and partition it into groups
that share a vectorized kernel (:mod:`repro.engine.kernels`):

================  =============================================  ===========
group             members                                        kernel
================  =============================================  ===========
``linear``        ``LinearQuery``                                loss matrix
``linear-cm``     ``LinearQueryAsCM``                            moments
``glm``           ``SquaredLoss`` / ``LogisticLoss`` /           margin
                  ``HingeLoss`` / ``HuberLoss`` (exact type,     matrix
                  matching link parameters)
``fallback``      everything else                                per-query
================  =============================================  ===========

Grouping is by *exact* type plus the link parameters the kernel depends
on, so a subclass with an overridden link never silently rides a kernel
that does not match its math — it falls back to the per-query path, which
is always correct.

Results agree with the scalar path up to floating-point associativity
(``~1e-12`` absolute in practice; the property tests in
``tests/property/test_batch_agreement.py`` pin this down), because each
kernel computes the same quantity through a reassociated product — never
a different approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import backend_of
from repro.data.histogram import Histogram
from repro.engine import kernels
from repro.exceptions import ValidationError
from repro.losses.hinge import HingeLoss, HuberLoss
from repro.losses.linear import LinearQuery, LinearQueryAsCM
from repro.losses.logistic import LogisticLoss
from repro.losses.squared import SquaredLoss
from repro.obs import trace
from repro.optimize.exact import minimize_quadratic_over_ball
from repro.optimize.minimize import MinimizeResult, minimize_loss
from repro.optimize.projections import L2Ball

__all__ = [
    "CompiledBatch",
    "compile_batch",
    "batch_answers",
    "batch_loss_on",
    "batch_data_minima",
    "closed_form_minima",
    "dedupe_by_fingerprint",
]

_LINEAR = "linear"
_LINEAR_CM = "linear-cm"
_GLM = "glm"
_FALLBACK = "fallback"

#: GLM families with a safe margin-matrix kernel, keyed by *exact* type.
#: The key function returns the link parameters that must match for two
#: instances to share one vectorized link evaluation.
_GLM_FAMILIES = {
    SquaredLoss: lambda loss: (loss.normalization,),
    LogisticLoss: lambda loss: (),
    HingeLoss: lambda loss: (),
    HuberLoss: lambda loss: (loss.delta,),
}


def _family_key(query):
    if type(query) is LinearQuery:
        return (_LINEAR,)
    if type(query) is LinearQueryAsCM:
        return (_LINEAR_CM,)
    params = _GLM_FAMILIES.get(type(query))
    if params is not None:
        return (_GLM, type(query), params(query))
    return (_FALLBACK,)


@dataclass
class _Group:
    """One kernel-compatible slice of a batch (positions + members)."""

    kind: str
    indices: list[int]
    members: list
    tables: np.ndarray | None = None  # stacked for linear/linear-cm groups
    _squared: np.ndarray | None = field(default=None, repr=False)

    def squared_tables(self) -> np.ndarray:
        """``tables * tables``, computed once per compiled group.

        The tables are immutable, and a CompiledBatch exists to be
        evaluated against many histograms — rebuilding this ``B×|X|``
        temporary per evaluation would dominate the moment kernel it
        feeds.
        """
        if self._squared is None:
            self._squared = self.tables * self.tables
        return self._squared


class CompiledBatch:
    """A batch of queries, grouped once, evaluated many times.

    Compiling is cheap (type dispatch plus stacking linear tables); the
    point of keeping the compiled object around is re-evaluating the same
    batch against *different* histograms — the serving layer answers a
    batch against an evolving public hypothesis, and PMW-linear replays
    its stream suffix after every update.
    """

    def __init__(self, queries) -> None:
        self.queries = list(queries)
        self._groups: list[_Group] = []
        buckets: dict[tuple, list[int]] = {}
        for index, query in enumerate(self.queries):
            buckets.setdefault(_family_key(query), []).append(index)
        for key, indices in buckets.items():
            members = [self.queries[i] for i in indices]
            tables = None
            if key[0] == _LINEAR:
                tables = kernels.stack_tables(members)
            elif key[0] == _LINEAR_CM:
                tables = kernels.stack_tables(
                    [loss.query for loss in members]
                )
            self._groups.append(
                _Group(kind=key[0], indices=indices, members=members,
                       tables=tables)
            )

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def group_kinds(self) -> list[str]:
        """The kernel kind of each group (diagnostics / tests)."""
        return [group.kind for group in self._groups]

    # -- evaluation --------------------------------------------------------

    def linear_answers(self, histogram: Histogram) -> np.ndarray:
        """All ``<q_j, D>`` answers in one matvec (``LinearQuery`` only)."""
        out = np.empty(len(self.queries))
        for group in self._groups:
            if group.kind != _LINEAR:
                raise ValidationError(
                    f"linear_answers needs a LinearQuery batch; found a "
                    f"{type(group.members[0]).__name__}"
                )
            out[group.indices] = kernels.linear_answers(group.tables,
                                                        histogram)
        return out

    def loss_values(self, thetas, histogram: Histogram) -> np.ndarray:
        """The batch ``[l_D(theta_j)]`` — one vectorized pass per family.

        ``thetas`` is a sequence of per-query parameters, aligned with the
        compiled query order. Raises for ``LinearQuery`` members (they
        answer via :meth:`linear_answers`, not a parameter).
        """
        thetas = list(thetas)
        if len(thetas) != len(self.queries):
            raise ValidationError(
                f"{len(thetas)} thetas for {len(self.queries)} queries"
            )
        out = np.empty(len(self.queries))
        for group in self._groups:
            group_thetas = [thetas[i] for i in group.indices]
            if group.kind == _LINEAR:
                raise ValidationError(
                    "loss_values is for CM queries; LinearQuery batches "
                    "answer via linear_answers"
                )
            if group.kind == _LINEAR_CM:
                out[group.indices] = _linear_cm_values(
                    group, group_thetas, histogram)
            elif group.kind == _GLM:
                out[group.indices] = _glm_values(
                    group.members, group_thetas, histogram)
            else:
                out[group.indices] = [
                    float(loss.loss_on(np.asarray(theta, dtype=float),
                                       histogram))
                    for loss, theta in zip(group.members, group_thetas)
                ]
        return out

    def data_minima(self, histogram: Histogram, *,
                    solver_steps: int = 400) -> list[MinimizeResult]:
        """Batched ``argmin_theta l(theta; D)`` per query.

        Closed forms are batched through moment kernels
        (``linear-cm`` exactly, squared-family GLMs via one shared
        universe-sized moment computation); every other loss goes through
        the same :func:`~repro.optimize.minimize.minimize_loss` call the
        scalar path makes, so results never diverge from it by more than
        reassociated floating point.
        """
        results: list[MinimizeResult | None] = [None] * len(self.queries)
        for group in self._groups:
            if group.kind == _LINEAR:
                raise ValidationError(
                    "data_minima is for CM queries; LinearQuery batches "
                    "answer via linear_answers"
                )
            if group.kind == _LINEAR_CM:
                minima = _linear_cm_minima(group, histogram)
            elif (group.kind == _GLM
                    and type(group.members[0]) is SquaredLoss):
                minima = _squared_minima(group.members, histogram,
                                         solver_steps=solver_steps)
            else:
                minima = [minimize_loss(loss, histogram, steps=solver_steps)
                          for loss in group.members]
            for index, result in zip(group.indices, minima):
                results[index] = result
        return results


def _linear_cm_moments(group: _Group,
                       histogram: Histogram) -> tuple[np.ndarray, np.ndarray]:
    """First/second query moments ``(<q, D>, <q², D>)`` for the group."""
    first = kernels.linear_answers(group.tables, histogram)
    second = kernels.linear_answers(group.squared_tables(), histogram)
    return first, second


def _linear_cm_value(theta: np.ndarray, first: np.ndarray,
                     second: np.ndarray) -> np.ndarray:
    """``E[(theta - q)^2 / 4] = (theta² - 2·theta·<q,D> + <q²,D>) / 4``."""
    return 0.25 * (theta * theta - 2.0 * theta * first + second)


def _linear_cm_values(group: _Group, thetas,
                      histogram: Histogram) -> np.ndarray:
    """``E[(theta - q)^2 / 4]`` via first/second query moments."""
    theta = np.array([float(np.asarray(t, dtype=float).ravel()[0])
                      for t in thetas])
    first, second = _linear_cm_moments(group, histogram)
    return _linear_cm_value(theta, first, second)


def _linear_cm_minima(group: _Group,
                      histogram: Histogram) -> list[MinimizeResult]:
    """Exact minimizers ``clip(<q, D>, 0, 1)`` for a whole batch at once."""
    first, second = _linear_cm_moments(group, histogram)
    theta = np.clip(first, 0.0, 1.0)
    values = _linear_cm_value(theta, first, second)
    return [
        MinimizeResult(np.array([float(t)]), float(v), True)
        for t, v in zip(theta, values)
    ]


#: Universe rows per block in the margin-matrix evaluation. The block's
#: margin and value matrices (``block × B``) stay cache-resident, so the
#: batch streams the universe points exactly once instead of materializing
#: (and re-reading) two ``|X| × B`` temporaries — this blocking, not the
#: matmul alone, is where the ≥3x of ``benchmarks/bench_batch_engine.py``
#: comes from on cheap-link families.
GLM_BLOCK_ROWS = 2048


def _glm_values(losses, thetas, histogram: Histogram) -> np.ndarray:
    """Margin-matrix evaluation of a same-link GLM group, universe-blocked.

    Per block of universe rows: one ``block×d @ d×B`` matmul, one
    vectorized link evaluation, one ``wᵀV`` accumulation. Summation is
    reassociated across blocks (``~1e-15`` vs the scalar path).
    """
    universe = histogram.universe
    prototype = losses[0]
    for loss in losses:  # same incompatibility error as the scalar path
        loss.check_universe_dim(universe)
    parameters = kernels.glm_parameter_matrix(losses, thetas)
    points = universe.points
    # The prototype's own accessor, so an unlabeled universe raises the
    # same LossSpecificationError the scalar path would — batching must
    # not change which exception a caller handles.
    labels = prototype._labels(universe)
    weights = histogram.weights
    backend = backend_of(histogram)
    out = np.zeros(len(losses))
    for start in range(0, universe.size, GLM_BLOCK_ROWS):
        stop = min(start + GLM_BLOCK_ROWS, universe.size)
        margins = kernels.glm_margin_matrix(points[start:stop], parameters,
                                            backend=backend)
        block_labels = (labels[start:stop, None]
                        if labels is not None else None)
        values = prototype.link(margins, block_labels)
        out += weights[start:stop] @ values
    return out


def _squared_minima(losses, histogram: Histogram, *,
                    solver_steps: int) -> list[MinimizeResult]:
    """Squared-loss data minima sharing one universe-sized moment pass.

    ``E[(x Rᵀ)(x Rᵀ)ᵀ] = R E[x xᵀ] Rᵀ`` and ``E[y (R x)] = R E[y x]``, so
    the batch pays for the moments once and each member solves a ``d×d``
    trust-region subproblem. Members without the closed form's
    preconditions (non-ball domain, unlabeled universe) fall back to
    :func:`minimize_loss`, exactly as the scalar dispatch would.
    """
    universe = histogram.universe
    labels = universe.labels
    base_second = None
    results = []
    for loss in losses:
        loss.check_universe_dim(universe)  # scalar-path error parity
        if not isinstance(loss.domain, L2Ball) or labels is None:
            results.append(minimize_loss(loss, histogram,
                                         steps=solver_steps))
            continue
        if base_second is None:
            base_second = kernels.second_moment(universe.points, histogram)
            base_cross = kernels.cross_moment(universe.points, labels,
                                              histogram)
            label_second = float(histogram.weights @ (labels * labels))
        rotation = loss.rotation
        if rotation is None:
            second, cross = base_second, base_cross
        else:
            second = rotation @ base_second @ rotation.T
            cross = rotation @ base_cross
        c = loss.normalization
        theta = minimize_quadratic_over_ball(
            2.0 * c * second, -2.0 * c * cross, loss.domain)
        theta = loss.domain.project(np.asarray(theta, dtype=float))
        value = c * (theta @ second @ theta - 2.0 * (cross @ theta)
                     + label_second)
        results.append(MinimizeResult(theta, float(value), True))
    return results


# -- functional façade -----------------------------------------------------


def compile_batch(queries) -> CompiledBatch:
    """Group a query batch by kernel family (see :class:`CompiledBatch`)."""
    return CompiledBatch(queries)


def batch_answers(queries, histogram: Histogram) -> np.ndarray:
    """All linear-query answers ``<q_j, D>`` in one vectorized pass."""
    with trace.span("engine.batch_answers", queries=len(queries)):
        return compile_batch(queries).linear_answers(histogram)


def batch_loss_on(losses, thetas, histogram: Histogram) -> np.ndarray:
    """The batch ``[l_D(theta_j)]`` in one vectorized pass per family."""
    with trace.span("engine.batch_loss_on", losses=len(losses)):
        return compile_batch(losses).loss_values(thetas, histogram)


def batch_data_minima(losses, histogram: Histogram, *,
                      solver_steps: int = 400) -> list[MinimizeResult]:
    """Batched data-side minimizations (closed forms vectorized)."""
    with trace.span("engine.batch_minima", losses=len(losses)):
        return compile_batch(losses).data_minima(histogram,
                                                 solver_steps=solver_steps)


def closed_form_minima(queries, *, universe=None):
    """The subset of ``queries`` whose batched :func:`batch_data_minima`
    dispatch is a *shared* closed-form kernel (squared-family GLMs via
    one moment computation, embedded linear queries) rather than the
    per-query fallback solver.

    Consumers use this to decide which lane entries are worth
    batch-minimizing eagerly: for fallback-family losses an eager batch
    would pay the same per-query solves the lazy path pays — possibly
    more, since the lazy path can warm-start — so eager batching only
    wins where a kernel genuinely shares work. The filter mirrors
    :func:`_squared_minima`'s own preconditions: squared losses over a
    non-ball domain fall back per query, as do all of them when the
    ``universe`` the consumer will solve against carries no labels
    (pass it to enforce that; ``None`` skips the label check).
    """
    labeled = universe is None or universe.labels is not None
    keep = []
    for query in queries:
        kind = _family_key(query)[0]
        if kind == _LINEAR_CM:
            keep.append(query)
        elif (kind == _GLM and type(query) is SquaredLoss and labeled
                and isinstance(query.domain, L2Ball)):
            keep.append(query)
    return keep


def dedupe_by_fingerprint(queries, *, skip=()):
    """First occurrence of each fingerprintable query in a lane.

    Returns aligned ``(keys, uniques)`` lists, preserving lane order.
    Queries whose state cannot be fingerprinted are dropped (they cannot
    ride a fingerprint-keyed cache), as are keys in ``skip`` (typically
    the consumer's already-warm cache keys). Mechanism ``prewarm`` hooks
    use this so a coalesced gateway batch full of repeats costs one
    kernel entry per *distinct* query, not per request.
    """
    from repro.exceptions import LossSpecificationError

    keys: list[str] = []
    uniques: list = []
    seen = set(skip)
    for query in queries:
        fingerprint = getattr(query, "fingerprint", None)
        if fingerprint is None:
            continue
        try:
            key = fingerprint()
        except LossSpecificationError:
            continue
        if key in seen:
            continue
        seen.add(key)
        keys.append(key)
        uniques.append(query)
    return keys, uniques
