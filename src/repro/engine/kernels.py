"""Per-family kernels for the batched evaluation engine.

Every kernel here turns a *batch* of same-family queries into one or two
dense linear-algebra calls over the whole universe, instead of one pass
per query. The layouts:

- **Loss matrix** (linear queries): stack the ``B`` query tables into a
  matrix ``Q ∈ R^{B×|X|}``; all answers against a histogram ``w`` are the
  single matvec ``Q w``. Dominated by streaming ``Q`` once.
- **Margin matrix** (GLM families): a GLM loss in rotated features
  evaluates ``phi((X R_jᵀ) theta_j, y)`` per query — a ``|X|·d²`` matmul
  *per query* on the scalar path. But ``(X R_jᵀ) theta_j = X (R_jᵀ
  theta_j)``, so projecting every parameter first (``B`` tiny ``d×d``
  products) collapses the batch into one ``|X|×d @ d×B`` matmul producing
  the margin matrix ``M ∈ R^{|X|×B}``, followed by one vectorized link
  evaluation — roughly a factor-``d`` flop saving, which is what the
  ≥3x requirement of ``benchmarks/bench_batch_engine.py`` rides on.
- **Moment kernels** (squared-family closed forms): the data-side
  minimizer of a squared loss needs ``E[x xᵀ]`` and ``E[y x]`` in the
  *rotated* features — but ``R (E[x xᵀ]) Rᵀ`` lets a whole batch share
  one universe-sized moment computation, leaving only ``d×d`` work per
  query.

Kernels are pure functions over arrays; grouping queries into families is
:mod:`repro.engine.batch`'s job.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, backend_of
from repro.data.histogram import Histogram
from repro.exceptions import ValidationError
from repro.utils.validation import root_base

__all__ = [
    "stack_tables",
    "shared_table_matrix",
    "linear_answers",
    "glm_parameter_matrix",
    "glm_margin_matrix",
    "second_moment",
    "cross_moment",
]


def stack_tables(queries) -> np.ndarray:
    """Stack ``LinearQuery`` tables into the loss matrix ``Q ∈ R^{B×|X|}``.

    When the tables are already consecutive rows of one contiguous matrix
    (query families built that way — e.g.
    :func:`repro.experiments.workloads.large_universe_workload` — keep
    their tables as views), the shared matrix is returned **zero-copy**;
    stacking a 64-query batch over a 10^5-element universe would
    otherwise spend more time copying than the evaluation it enables.

    Raises if the tables disagree on universe size (a batch must target
    one universe).
    """
    tables = _validated_tables(queries)
    if not tables:
        return np.empty((0, 0))
    shared = _shared_row_matrix(tables)
    if shared is not None:
        return shared
    return np.vstack(tables)


def shared_table_matrix(queries) -> np.ndarray | None:
    """The zero-copy loss matrix for a batch, or ``None``.

    Returns the shared base matrix when the tables are exactly its rows
    in order (the :func:`stack_tables` fast path), without ever falling
    back to a copy — callers that cannot afford a ``B×|X|`` allocation
    (e.g. :meth:`repro.core.pmw_linear.PrivateMWLinear.answer_all` over a
    10^7-element universe) probe with this and keep per-query evaluation
    when it returns ``None``.
    """
    tables = _validated_tables(queries)
    if not tables:
        return np.empty((0, 0))
    return _shared_row_matrix(tables)


def _validated_tables(queries) -> list[np.ndarray]:
    tables = [np.asarray(query.table, dtype=float) for query in queries]
    if not tables:
        return tables
    size = tables[0].shape[0]
    for index, table in enumerate(tables):
        if table.shape != (size,):
            raise ValidationError(
                f"query {index} has table shape {table.shape}; batch "
                f"universe size is {size}"
            )
    return tables


def _shared_row_matrix(tables) -> np.ndarray | None:
    """The common base matrix, iff the tables are exactly its rows in order."""
    base = root_base(tables[0])
    size = tables[0].shape[0]
    if base.ndim != 2 or base.shape != (len(tables), size):
        return None
    if base.dtype != tables[0].dtype or base.strides[1] != base.itemsize:
        return None
    start = base.__array_interface__["data"][0]
    for row, table in enumerate(tables):
        if root_base(table) is not base:
            return None
        if table.strides != (base.itemsize,):
            return None
        if (table.__array_interface__["data"][0]
                != start + row * base.strides[0]):
            return None
    return base


def linear_answers(tables: np.ndarray, histogram: Histogram) -> np.ndarray:
    """All linear-query answers ``Q w`` in one matvec.

    Runs on the histogram's :class:`~repro.backend.base.ArrayBackend`
    (the NumPy default is the historical ``tables @ weights``)."""
    weights = histogram.weights
    if tables.size and tables.shape[1] != weights.shape[0]:
        raise ValidationError(
            f"loss matrix has {tables.shape[1]} columns but the histogram "
            f"universe has {weights.shape[0]} elements"
        )
    return backend_of(histogram).matvec(tables, weights)


def glm_parameter_matrix(losses, thetas) -> np.ndarray:
    """Project batch parameters into universe feature space: ``P ∈ R^{d×B}``.

    Column ``j`` is ``R_jᵀ theta_j`` (or ``theta_j`` for unrotated
    losses), so that ``X P`` is the whole batch's margin matrix. The
    per-column products are ``d×d`` — negligible next to the universe
    matmul they unlock.
    """
    columns = []
    for loss, theta in zip(losses, thetas):
        theta = np.asarray(theta, dtype=float)
        rotation = getattr(loss, "rotation", None)
        columns.append(theta if rotation is None else rotation.T @ theta)
    return np.column_stack(columns)


def glm_margin_matrix(points: np.ndarray, parameters: np.ndarray,
                      backend: ArrayBackend | None = None) -> np.ndarray:
    """The batch margin matrix ``M = X P ∈ R^{|X|×B}`` — one matmul.

    ``backend=None`` keeps the historical dense NumPy matmul; callers
    evaluating against a backend-carrying hypothesis pass its backend so
    the margin kernel follows the same arithmetic.
    """
    if points.shape[1] != parameters.shape[0]:
        raise ValidationError(
            f"universe dim {points.shape[1]} does not match projected "
            f"parameter dim {parameters.shape[0]}"
        )
    if backend is None:
        return points @ parameters
    return backend.matmul(points, parameters)


def second_moment(features: np.ndarray, histogram: Histogram) -> np.ndarray:
    """``E[x xᵀ]`` — shared across a squared-loss batch.

    Delegates to the histogram backend's moment kernel (the NumPy
    default is :func:`repro.losses.squared.weighted_second_moment`), so
    the batched closed form and the scalar one are the same math by
    construction.
    """
    return backend_of(histogram).second_moment(features, histogram.weights)


def cross_moment(features: np.ndarray, labels: np.ndarray,
                 histogram: Histogram) -> np.ndarray:
    """``E[y x]`` — shared across a squared-loss batch (same delegation
    as :func:`second_moment`)."""
    return backend_of(histogram).cross_moment(features, histogram.weights,
                                              labels)
