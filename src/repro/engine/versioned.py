"""Version-aware batch evaluation: compile once, invalidate by staleness.

A :class:`~repro.engine.batch.CompiledBatch` already separates *compiling*
a batch (grouping, table stacking) from *evaluating* it, so the layout is
reused across histograms. What it cannot know is whether a histogram it
saw before has changed since — every call pays a full evaluation.

:class:`VersionedBatchEvaluator` closes that gap for linear-answer
workloads against a version-stamped hypothesis (anything exposing
``weights`` plus a monotone ``version``, e.g.
:class:`~repro.data.log_histogram.LogHistogram`). Every answer slot is
stamped with the version it was computed at; a read at an unchanged
version is a cached lookup, and a version bump invalidates — and
recomputes — **only the stale entries**, not the compiled layout:

- :meth:`answers` refreshes exactly the stale rows in one sub-matmul;
- :meth:`answer` serves single queries with growing-block prefetch
  (blocks double while the version holds, reset when it moves — the
  tail of an update-sparse stream collapses into a few large matmuls,
  and an update throws away at most one block);
- :meth:`update_then_answers` fuses the two for callers that apply an
  update and immediately need the whole batch re-answered: one in-place
  log-domain MW accumulation followed by a stale-entry refresh at the
  new version.

:class:`PrivateMWLinear` streams its batched ``answer_all`` through
:meth:`answer` (its rounds consume answers one at a time, so it applies
updates directly and lets lazy staleness do the rest); the hot-loop
benchmark (``benchmarks/bench_hot_loop.py``) measures the win.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.exceptions import ValidationError

__all__ = ["VersionedBatchEvaluator"]


class VersionedBatchEvaluator:
    """Linear answers for one query batch, cached per hypothesis version.

    Parameters
    ----------
    tables:
        The stacked query tables, shape ``(batch, |X|)`` — e.g. from
        :func:`repro.engine.kernels.stack_tables` or a zero-copy shared
        matrix. Held by reference; must not be mutated afterwards.
    initial_block:
        First prefetch block size for :meth:`answer`; doubles while the
        hypothesis version holds still.
    backend:
        Optional :class:`~repro.backend.base.ArrayBackend` (or name);
        the tables are cast to its native dtype **once** at
        construction, so every refresh matmul runs at backend precision
        against the backend-native hypothesis weights. ``None`` keeps
        the historical ``float64`` layout. Answer slots are always
        ``float64`` — accelerated products widen on assignment, so
        callers see one answer dtype regardless of backend.

    The evaluator tracks one hypothesis stream: feed it monotonically
    observed versions of a single evolving hypothesis (version numbers
    from different hypotheses would alias).
    """

    def __init__(self, tables: np.ndarray, *, initial_block: int = 8,
                 backend: str | ArrayBackend | None = None) -> None:
        tables = np.asarray(tables, dtype=float)
        if tables.ndim != 2:
            raise ValidationError(
                f"tables must be 2-D (batch x universe), got shape "
                f"{tables.shape}"
            )
        if initial_block < 1:
            raise ValidationError(
                f"initial_block must be >= 1, got {initial_block}"
            )
        if backend is not None:
            tables = resolve_backend(backend).asarray(tables)
        self._tables = tables
        batch = tables.shape[0]
        self._answers = np.empty(batch)
        self._entry_versions = np.full(batch, -1, dtype=np.int64)
        self._initial_block = int(initial_block)
        self._block = self._initial_block
        self._last_version: int | None = None
        self._recomputed_rows = 0
        self._cached_hits = 0

    @classmethod
    def from_queries(cls, queries, *, initial_block: int = 8,
                     backend: str | ArrayBackend | None = None,
                     ) -> "VersionedBatchEvaluator":
        """Stack a :class:`LinearQuery` batch (zero-copy when shared)."""
        from repro.engine import kernels

        queries = list(queries)
        tables = kernels.shared_table_matrix(queries)
        if tables is None:
            tables = kernels.stack_tables(queries)
        return cls(tables, initial_block=initial_block, backend=backend)

    def __len__(self) -> int:
        return self._tables.shape[0]

    @property
    def recomputed_rows(self) -> int:
        """Total answer slots recomputed (stale at read time)."""
        return self._recomputed_rows

    @property
    def cached_hits(self) -> int:
        """Reads served from a same-version slot without any matmul."""
        return self._cached_hits

    # -- evaluation ---------------------------------------------------------

    def answers(self, weights: np.ndarray, version: int) -> np.ndarray:
        """All batch answers at ``version``, refreshing only stale slots.

        Returns a copy (callers may hold it across later refreshes).
        """
        version = self._observe(version)
        stale = self._entry_versions != version
        count = int(np.count_nonzero(stale))
        if count == self._entry_versions.shape[0]:
            # Everything is stale: one dense matmul, no fancy-index copy.
            # An accelerated-dtype product cannot target the float64
            # answer buffer directly; it widens on assignment instead.
            if self._tables.dtype == self._answers.dtype:
                np.matmul(self._tables, weights, out=self._answers)
            else:
                self._answers[:] = self._tables @ weights
            self._entry_versions[:] = version
        elif count:
            self._answers[stale] = self._tables[stale] @ weights
            self._entry_versions[stale] = version
        self._recomputed_rows += count
        self._cached_hits += self._entry_versions.shape[0] - count
        return self._answers.copy()

    def answer(self, weights: np.ndarray, version: int, index: int) -> float:
        """One answer at ``version``, with growing-block prefetch.

        Stream consumers call this in index order; a stale slot pulls in
        the next block (``initial_block``, doubling while the version
        holds), so an update invalidates at most one block of lookahead
        while update-free suffixes collapse into a few large matmuls.
        """
        version = self._observe(version)
        if not 0 <= index < self._entry_versions.shape[0]:
            raise ValidationError(
                f"index {index} out of range for batch of "
                f"{self._entry_versions.shape[0]}"
            )
        if self._entry_versions[index] != version:
            stop = min(self._entry_versions.shape[0], index + self._block)
            self._answers[index:stop] = self._tables[index:stop] @ weights
            self._entry_versions[index:stop] = version
            self._recomputed_rows += stop - index
            self._block *= 2
        else:
            self._cached_hits += 1
        return float(self._answers[index])

    def update_then_answers(self, core, direction: np.ndarray,
                            eta: float) -> np.ndarray:
        """Fused MW-update-then-evaluate against a log-domain core.

        Applies ``log w += eta * direction`` in place (bumping the
        core's version) and immediately refreshes the batch at the new
        version — the materialized weights move straight from the
        update's ``exp`` pass into the answer matmul, with the compiled
        table layout reused as-is.
        """
        core.apply_update(direction, eta)
        return self.answers(core.weights, core.version)

    # -- internals ----------------------------------------------------------

    def _observe(self, version: int) -> int:
        version = int(version)
        if version != self._last_version:
            self._block = self._initial_block
            self._last_version = version
        return version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedBatchEvaluator(batch={len(self)}, "
            f"last_version={self._last_version}, "
            f"recomputed={self._recomputed_rows}, "
            f"hits={self._cached_hits})"
        )
