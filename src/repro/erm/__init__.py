"""Single-query differentially private ERM oracles.

The paper's mechanism is parameterized by a black-box oracle ``A'`` that
answers *one* CM query with ``(eps0, delta0)``-DP and ``(alpha0, beta0)``
accuracy (Section 3.2). This package implements the oracles its Section 4
applications invoke, plus reference/diagnostic ones:

- :class:`NonPrivateOracle` — exact minimizer (``eps = inf`` ablation).
- :class:`OutputPerturbationOracle` — perturb the exact minimizer
  (Chaudhuri–Monteleoni–Sarwate style; needs strong convexity).
- :class:`ObjectivePerturbationOracle` — minimize a randomly tilted
  objective (Kifer–Smith–Thakurta style).
- :class:`NoisyGradientDescentOracle` — full-batch noisy projected gradient
  descent, our stand-in for BST14's noisy SGD (Theorems 4.1 / 4.5): same
  per-step sensitivity argument, same advanced-composition accounting,
  same ``~sqrt(d)/(n eps)`` excess-risk shape.
- :class:`GLMProjectionOracle` — Johnson–Lindenstrauss projection to a
  dimension-independent subspace plus noisy GD there, our stand-in for
  JT14 (Theorem 4.3).
- :class:`ExponentialMechanismOracle` — BLR-style sampling over a candidate
  net, valid for any bounded-range loss.

All oracles consume the *private* :class:`repro.data.Dataset` and expose
``epsilon`` / ``delta``; :func:`evaluate_oracle` measures realized excess
risk for the oracle-accuracy experiments (E9).
"""

from repro.erm.oracle import SingleQueryOracle, NonPrivateOracle, evaluate_oracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.erm.objective_perturbation import ObjectivePerturbationOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.exponential import ExponentialMechanismOracle

__all__ = [
    "SingleQueryOracle",
    "NonPrivateOracle",
    "evaluate_oracle",
    "OutputPerturbationOracle",
    "ObjectivePerturbationOracle",
    "NoisyGradientDescentOracle",
    "GLMProjectionOracle",
    "ExponentialMechanismOracle",
]
