"""Exponential-mechanism ERM over a candidate net.

The BLR-style baseline oracle: draw a (data-independent) net of candidate
parameters from the domain, score each by its negative empirical loss, and
sample with the exponential mechanism [MT07]. Valid for *any* loss whose
per-row values live in an interval of width ``S`` (the paper's scaling
condition guarantees this, Section 3.4.2): the utility
``u(D, theta) = -l_D(theta)`` then has sensitivity ``S/n``.

Pure ``(epsilon, 0)``-DP, no smoothness or convexity required — the most
robust oracle in the library, at the cost of error limited by the net
resolution.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.mechanisms import exponential_mechanism
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.utils.rng import as_generator
from repro.utils.rng import spawn_generators


class ExponentialMechanismOracle(SingleQueryOracle):
    """Sample ``theta`` from a domain net, biased toward low empirical loss.

    Parameters
    ----------
    epsilon:
        Pure-DP budget of one call (``delta = 0``).
    candidates:
        Net size. Error has two terms: net resolution (improves with more
        candidates) and exponential-mechanism concentration
        ``~ S log(candidates) / (n epsilon)``.
    net_seed:
        The net must be data-independent; it is drawn from this dedicated
        seed so reruns on adjacent datasets see the *same* net (required
        for the DP guarantee and asserted by the privacy tests).
    """

    def __init__(self, epsilon: float, candidates: int = 256,
                 net_seed: int = 0) -> None:
        super().__init__(epsilon, delta=0.0)
        if candidates < 1:
            raise LossSpecificationError(
                f"candidates must be >= 1, got {candidates}"
            )
        self.candidates = int(candidates)
        self.net_seed = int(net_seed)

    def candidate_net(self, loss: LossFunction) -> np.ndarray:
        """The data-independent candidate net, shape ``(candidates, dim)``."""
        net_rng, = spawn_generators(self.net_seed, 1)
        net = np.stack([
            loss.domain.random_point(net_rng) for _ in range(self.candidates)
        ])
        return net

    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        generator = as_generator(rng)
        histogram = dataset.histogram()
        net = self.candidate_net(loss)
        scores = np.array([
            -loss.loss_on(theta, histogram) for theta in net
        ])
        sensitivity = loss.scale_bound() / dataset.n
        choice = exponential_mechanism(scores, sensitivity, self.epsilon,
                                       rng=generator)
        return net[choice]
