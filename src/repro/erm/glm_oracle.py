"""Dimension-independent oracle for generalized linear models (JT14 stand-in).

Jain–Thakurta (Theorem 4.3) achieve excess risk independent of the ambient
dimension ``d`` for unconstrained GLMs. Their key structural insight is
that GLM losses depend on data only through inner products, so a random
projection preserves the objective. We implement exactly that recipe:

1. Draw a Johnson–Lindenstrauss matrix ``Phi in R^{m x d}`` with
   ``m = ceil(projection_scale / alpha_target^2)`` rows (data-independent,
   hence free of privacy cost).
2. Form the projected GLM with features ``Phi x`` (still a GLM), and run
   the noisy-GD oracle in ``R^m`` — so the noise norm scales with
   ``sqrt(m)``, not ``sqrt(d)``.
3. Lift ``theta = Phi^T theta_m`` back to ``R^d`` and project onto the
   original domain.

The privacy of the call is exactly the privacy of the inner noisy-GD run
(post-processing through the fixed ``Phi`` is free). The
dimension-independence of the excess risk is verified empirically in the
Table 1 row-3 benchmark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import LossSpecificationError
from repro.losses.glm import GeneralizedLinearLoss
from repro.optimize.projections import L2Ball
from repro.utils.rng import as_generator


class GLMProjectionOracle(SingleQueryOracle):
    """JL-project, solve privately in low dimension, lift back.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget (spent entirely by the inner noisy-GD run).
    projection_dim:
        Target dimension ``m``. The theory sets ``m ~ 1/alpha^2``;
        experiments fix a moderate constant and verify ``d``-independence.
    steps:
        Gradient steps of the inner solver.
    """

    def __init__(self, epsilon: float, delta: float, projection_dim: int = 16,
                 steps: int = 60) -> None:
        super().__init__(epsilon, delta)
        if projection_dim < 1:
            raise LossSpecificationError(
                f"projection_dim must be >= 1, got {projection_dim}"
            )
        self.projection_dim = int(projection_dim)
        self.steps = int(steps)

    def answer(self, loss, dataset: Dataset, rng=None) -> np.ndarray:
        if not isinstance(loss, GeneralizedLinearLoss):
            raise LossSpecificationError(
                f"GLM oracle requires a GeneralizedLinearLoss; got "
                f"{type(loss).__name__}"
            )
        generator = as_generator(rng)
        d = loss.domain.dim
        m = min(self.projection_dim, d)

        # JL matrix with unit-variance columns scaled by 1/sqrt(m) so that
        # ||Phi x|| ~ ||x|| in expectation; margin scales are preserved.
        phi = generator.standard_normal((m, d)) / math.sqrt(m)

        projected = _ProjectedGLM(loss, phi)
        inner = NoisyGradientDescentOracle(self.epsilon, self.delta,
                                           steps=self.steps)
        theta_m = inner.answer(projected, dataset, rng=generator)
        lifted = phi.T @ theta_m
        return loss.domain.project(lifted)


class _ProjectedGLM(GeneralizedLinearLoss):
    """The base GLM with features replaced by ``Phi (R x)``.

    Composes the original loss's rotation (if any) with the JL matrix so
    the projected problem is *the same* GLM over ``R^m``. Margins can grow
    by the JL distortion factor, so the Lipschitz bound carries a modest
    safety factor that the noise calibration uses.
    """

    def __init__(self, base: GeneralizedLinearLoss, phi: np.ndarray) -> None:
        m, d = phi.shape
        if base.rotation is not None:
            rotation = phi @ base.rotation
        else:
            rotation = phi
        # Domain: ball of radius matching the base domain scale. theta_m in
        # a radius-r ball lifts to ||Phi^T theta_m|| <~ r, then projected.
        radius = base.domain.diameter() / 2.0
        super().__init__(L2Ball(m, radius=radius), rotation=rotation,
                         name=f"{base.name}@jl{m}")
        self._base = base
        self.link_derivative_bound = base.link_derivative_bound
        self.requires_labels = base.requires_labels
        # JL can inflate feature norms by ~(1 + distortion); use a 2x
        # safety factor on the declared Lipschitz constant.
        base_lipschitz = base.lipschitz_bound or base.link_derivative_bound
        self.lipschitz_bound = 2.0 * base_lipschitz
        self.strong_convexity = base.strong_convexity

    def link(self, margins, labels):
        return self._base.link(margins, labels)

    def link_derivative(self, margins, labels):
        return self._base.link_derivative(margins, labels)

    def _features(self, universe):
        return universe.points @ self.rotation.T
