"""Noisy gradient descent — the BST14 stand-in (Theorems 4.1 and 4.5).

Bassily–Smith–Thakurta's optimal algorithm is noisy stochastic gradient
descent. We implement the full-batch variant: ``T`` projected gradient
steps where each released gradient of the *average* loss has L2 sensitivity
``2L/n`` and is masked with Gaussian noise whose scale is set by advanced
composition (Theorem 3.10) across the ``T`` steps.

This substitution preserves what the paper consumes from BST14:

- **privacy** — per-step Gaussian mechanism + advanced composition is the
  same accounting BST14 uses (minus subsampling amplification, which only
  improves constants);
- **accuracy shape** — excess risk ``O(sqrt(d) * polylog / (n * epsilon))``
  for Lipschitz losses over the unit ball, and the ``1/(sigma n epsilon)``
  improvement for ``sigma``-strongly-convex losses, both verified
  empirically in the oracle benchmarks (E9).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.composition import per_round_budget
from repro.dp.mechanisms import gaussian_sigma
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.utils.rng import as_generator


class NoisyGradientDescentOracle(SingleQueryOracle):
    """DP-ERM by noisy full-batch projected gradient descent.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget for the whole optimization (split over steps by
        advanced composition).
    steps:
        Number of gradient steps ``T``. More steps reduce optimization
        error but increase per-step noise; the default balances the two at
        the moderate ``n`` used in experiments.
    averaging:
        ``"suffix"`` (default) returns the average of the last half of the
        trajectory; ``"last"`` returns the final iterate (better for
        strongly convex losses with the ``1/(sigma t)`` schedule).
    """

    def __init__(self, epsilon: float, delta: float, steps: int = 60,
                 averaging: str = "suffix") -> None:
        super().__init__(epsilon, delta)
        if steps < 1:
            raise LossSpecificationError(f"steps must be >= 1, got {steps}")
        if averaging not in ("suffix", "last"):
            raise LossSpecificationError(
                f"averaging must be 'suffix' or 'last', got {averaging!r}"
            )
        self.steps = int(steps)
        self.averaging = averaging

    def noise_sigma(self, loss: LossFunction, n: int) -> float:
        """Per-step Gaussian noise scale for the gradient release."""
        if loss.lipschitz_bound is None:
            raise LossSpecificationError(
                f"noisy GD requires a Lipschitz bound; {loss.name} declares none"
            )
        per_step = per_round_budget(self.epsilon, max(self.delta, 1e-12),
                                    self.steps)
        sensitivity = 2.0 * loss.lipschitz_bound / n
        return gaussian_sigma(sensitivity, per_step.epsilon,
                              max(per_step.delta, 1e-15))

    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        generator = as_generator(rng)
        histogram = dataset.histogram()
        domain = loss.domain
        sigma = self.noise_sigma(loss, dataset.n)
        lipschitz = loss.lipschitz_bound
        diameter = domain.diameter()
        # Step schedule accounts for the noise magnitude: the effective
        # gradient bound is L plus the typical noise norm.
        noise_norm = sigma * math.sqrt(domain.dim)
        effective_lipschitz = lipschitz + noise_norm

        theta = domain.center()
        total = np.zeros_like(theta)
        count = 0
        for t in range(1, self.steps + 1):
            gradient = loss.gradient_on(theta, histogram)
            gradient = gradient + generator.normal(0.0, sigma, size=gradient.shape)
            if loss.strong_convexity > 0.0:
                step = 1.0 / (loss.strong_convexity * t)
            else:
                step = diameter / (effective_lipschitz * math.sqrt(t))
            theta = domain.project(theta - step * gradient)
            if t > self.steps // 2:
                total += theta
                count += 1
        if self.averaging == "last":
            return theta
        return domain.project(total / max(count, 1))
