"""Objective perturbation.

Kifer–Smith–Thakurta [KST12] style: minimize the empirical objective plus a
random linear tilt,

    ``theta_hat = argmin_theta  l_D(theta) + (lam/2)||theta||^2 + <b, theta>/n``

with ``b ~ N(0, sigma_b^2 I)``, ``sigma_b`` calibrated to the per-row
gradient range ``2L``. The added ridge term (``lam``) supplies the strong
convexity the privacy argument needs; when the loss is already strongly
convex, ``lam = 0`` is used. The tilt is the only data-independent
randomness, so the minimization itself can be run to any precision without
affecting privacy.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.mechanisms import gaussian_sigma
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.optimize.gradient_descent import projected_gradient_descent
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


class ObjectivePerturbationOracle(SingleQueryOracle):
    """Minimize the randomly tilted, (optionally) ridge-stabilized objective.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget of one call.
    ridge:
        Regularization weight ``lam`` added when the loss is not already
        strongly convex. Larger values improve privacy robustness at the
        cost of bias toward the origin.
    solver_steps:
        Gradient-descent budget for the tilted objective.
    """

    def __init__(self, epsilon: float, delta: float, ridge: float = 0.1,
                 solver_steps: int = 400) -> None:
        super().__init__(epsilon, delta)
        self.ridge = check_positive(ridge, "ridge")
        self.solver_steps = solver_steps

    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        if loss.lipschitz_bound is None:
            raise LossSpecificationError(
                f"objective perturbation requires a Lipschitz bound; "
                f"{loss.name} declares none"
            )
        generator = as_generator(rng)
        histogram = dataset.histogram()
        n = dataset.n
        lam = 0.0 if loss.strong_convexity > 0.0 else self.ridge
        effective_sigma = loss.strong_convexity + lam

        # One row's gradient contribution to the average objective moves by
        # at most 2L/n; the tilt b/n must mask that, so b is calibrated to
        # sensitivity 2L at the chosen (epsilon, delta).
        sigma_b = gaussian_sigma(2.0 * loss.lipschitz_bound, self.epsilon,
                                 max(self.delta, 1e-12))
        tilt = generator.normal(0.0, sigma_b, size=loss.domain.dim) / n

        def tilted_gradient(theta: np.ndarray) -> np.ndarray:
            return loss.gradient_on(theta, histogram) + lam * theta + tilt

        lipschitz = (loss.lipschitz_bound + lam * loss.domain.diameter() / 2.0
                     + float(np.linalg.norm(tilt)))
        theta = projected_gradient_descent(
            tilted_gradient,
            loss.domain,
            steps=self.solver_steps,
            lipschitz=max(lipschitz, 1e-9),
            strong_convexity=effective_sigma,
        )
        return theta
