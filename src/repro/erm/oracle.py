"""The single-query oracle contract and the non-private reference oracle."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.losses.base import LossFunction
from repro.optimize.minimize import minimize_loss
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability


class SingleQueryOracle(ABC):
    """An algorithm ``A'`` answering one CM query under ``(eps, delta)``-DP.

    The contract is Section 3.2's: given the private dataset ``D`` and a
    loss ``l``, return ``theta`` in the loss's domain such that
    ``err_l(D, theta) <= alpha0`` with probability ``1 - beta0``, while the
    whole call is ``(epsilon, delta)``-DP in ``D``.
    """

    def __init__(self, epsilon: float, delta: float) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_probability(delta, "delta")

    @abstractmethod
    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        """Return a private approximate minimizer of ``l`` on ``dataset``."""

    def with_budget(self, epsilon: float, delta: float) -> "SingleQueryOracle":
        """A copy of this oracle recalibrated to a different budget.

        PMW (Figure 3) re-budgets the supplied oracle to its per-round
        ``(eps0, delta0)``; oracles support that by rebuilding themselves.
        """
        clone = self._clone()
        clone.epsilon = check_positive(epsilon, "epsilon")
        clone.delta = check_probability(delta, "delta")
        return clone

    def _clone(self) -> "SingleQueryOracle":
        import copy

        return copy.copy(self)


class NonPrivateOracle(SingleQueryOracle):
    """Exact (non-private) minimization — the ``eps -> inf`` ablation.

    Declares an arbitrarily large ``epsilon`` so that budget arithmetic
    still works; :attr:`is_private` is ``False`` and experiment reports
    must flag results produced with it.
    """

    is_private = False

    def __init__(self, solver_steps: int = 400) -> None:
        super().__init__(epsilon=1e9, delta=0.0)
        self.solver_steps = solver_steps

    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        result = minimize_loss(loss, dataset.histogram(), steps=self.solver_steps)
        return result.theta


@dataclass(frozen=True)
class OracleEvaluation:
    """Excess-risk statistics of an oracle over repeated trials."""

    mean_excess_risk: float
    max_excess_risk: float
    std_excess_risk: float
    trials: int


def evaluate_oracle(oracle: SingleQueryOracle, loss: LossFunction,
                    dataset: Dataset, trials: int = 10, rng=None,
                    solver_steps: int = 400) -> OracleEvaluation:
    """Measure realized excess empirical risk of ``oracle`` on one query.

    Computes ``err_l(D, theta_hat) = l_D(theta_hat) - min_theta l_D(theta)``
    (Definition 2.2) over ``trials`` independent oracle runs. Used by the
    Theorem 4.1/4.3/4.5 oracle-accuracy experiments.
    """
    generator = as_generator(rng)
    histogram = dataset.histogram()
    optimum = minimize_loss(loss, histogram, steps=solver_steps).value
    excesses = []
    for _ in range(max(1, trials)):
        theta = oracle.answer(loss, dataset, rng=generator)
        excesses.append(float(loss.loss_on(theta, histogram)) - optimum)
    excess_array = np.asarray(excesses)
    # Solver slack can make tiny negative excesses; clamp at zero.
    excess_array = np.clip(excess_array, 0.0, None)
    return OracleEvaluation(
        mean_excess_risk=float(excess_array.mean()),
        max_excess_risk=float(excess_array.max()),
        std_excess_risk=float(excess_array.std()),
        trials=len(excesses),
    )
