"""Output perturbation for strongly convex losses.

Chaudhuri–Monteleoni–Sarwate [CMS11] style: compute the exact empirical
minimizer and release it with Gaussian noise calibrated to its sensitivity.
For an ``L``-Lipschitz, ``sigma``-strongly-convex loss the argmin has L2
sensitivity at most ``2L / (sigma n)`` (changing one of ``n`` rows moves
the average loss's gradient by ``<= 2L/n``, and strong convexity converts
gradient perturbation to argmin perturbation at rate ``1/sigma``).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.dp.mechanisms import gaussian_sigma
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.optimize.minimize import minimize_loss
from repro.utils.rng import as_generator


class OutputPerturbationOracle(SingleQueryOracle):
    """Release ``argmin + N(0, sigma^2 I)``, projected back onto the domain.

    Requires ``loss.strong_convexity > 0`` and a declared Lipschitz bound;
    raises :class:`LossSpecificationError` otherwise, because without
    strong convexity the argmin has unbounded sensitivity and the release
    would not be differentially private.
    """

    def __init__(self, epsilon: float, delta: float,
                 solver_steps: int = 400) -> None:
        super().__init__(epsilon, delta)
        self.solver_steps = solver_steps

    def argmin_sensitivity(self, loss: LossFunction, n: int) -> float:
        """The L2 sensitivity bound ``2L / (sigma n)``."""
        if loss.strong_convexity <= 0.0:
            raise LossSpecificationError(
                f"output perturbation requires strong convexity; "
                f"{loss.name} declares sigma=0"
            )
        if loss.lipschitz_bound is None:
            raise LossSpecificationError(
                f"output perturbation requires a Lipschitz bound; "
                f"{loss.name} declares none"
            )
        return 2.0 * loss.lipschitz_bound / (loss.strong_convexity * n)

    def answer(self, loss: LossFunction, dataset: Dataset, rng=None) -> np.ndarray:
        generator = as_generator(rng)
        sensitivity = self.argmin_sensitivity(loss, dataset.n)
        result = minimize_loss(loss, dataset.histogram(), steps=self.solver_steps)
        sigma = gaussian_sigma(sensitivity, self.epsilon, max(self.delta, 1e-12))
        noisy = result.theta + generator.normal(0.0, sigma, size=result.theta.shape)
        return loss.domain.project(noisy)
