"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class. Sub-classes mark the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class UniverseError(ReproError):
    """A data universe is malformed or incompatible with an operation."""


class PrivacyBudgetExhausted(ReproError):
    """A mechanism was asked to spend more privacy budget than it holds.

    Interactive mechanisms raise this instead of silently degrading their
    differential-privacy guarantee.
    """

    def __init__(self, message: str, *, epsilon_spent: float = float("nan"),
                 epsilon_budget: float = float("nan")) -> None:
        super().__init__(message)
        self.epsilon_spent = epsilon_spent
        self.epsilon_budget = epsilon_budget


class MechanismHalted(ReproError):
    """An online mechanism has halted and cannot answer further queries.

    The sparse-vector algorithm halts after ``T`` above-threshold answers
    (Theorem 3.1, property 2); the PMW mechanism halts with it.
    """


class OptimizationError(ReproError):
    """A convex-minimization subroutine failed to produce a solution."""


class Shed(ReproError):
    """Base class for typed request refusals by the serving stack.

    Every shed carries a machine-readable ``reason`` string — the same
    vocabulary the gateway's ``gateway.shed`` Prometheus counter is
    labelled with — so callers and dashboards can distinguish *why* a
    request was refused without parsing messages. The shared contract:
    a shed request **never entered a mechanism stream**, so it consumed
    no privacy budget, no stream slot, and no ledger record, and
    retrying it is always privacy-safe (see
    :class:`repro.serve.resilience.ResilientClient` for a retry policy
    that is also *spend*-safe across shard deaths).
    """

    def __init__(self, message: str, *, session_id: str | None = None,
                 reason: str = "shed") -> None:
        super().__init__(message)
        self.session_id = session_id
        self.reason = reason


class Overloaded(Shed):
    """A request was shed by admission control before touching any state.

    Raised by the serving gateway when a per-session queue is at its
    depth bound, the gateway-wide in-flight limit is reached, or the
    gateway is draining. Shedding happens strictly *before* the request
    enters a mechanism stream, so a shed request never consumes privacy
    budget, a stream slot, or a ledger record — callers can safely retry.
    """

    def __init__(self, message: str, *, session_id: str | None = None,
                 reason: str = "overload") -> None:
        super().__init__(message, session_id=session_id, reason=reason)


class RequestTimeout(Shed):
    """A queued request timed out before a worker claimed it.

    Only *unclaimed* requests time out: once a worker has claimed a
    request into a coalesced batch, the batch runs to completion and its
    write-ahead ledger spends are journaled — the answer is delivered
    even if the waiter has stopped listening. A ``RequestTimeout``
    therefore guarantees the request never entered the mechanism stream.
    """

    def __init__(self, message: str, *, session_id: str | None = None,
                 waited: float = float("nan")) -> None:
        super().__init__(message, session_id=session_id, reason="timeout")
        self.waited = waited


class DeadlineUnmeetable(Shed):
    """A request was refused at enqueue because its deadline is hopeless.

    Raised by deadline-aware admission control when the estimated queue
    wait for the request's lane (a quantile of the lane's observed
    queue-wait histogram) already exceeds the request's remaining
    deadline. Unlike :class:`RequestTimeout` — which fires *after* the
    request sat in a queue for its whole deadline — this shed happens
    synchronously at submit time, so a doomed request costs the caller
    nothing but the round trip and frees the queue slot for a request
    that can still make it.
    """

    def __init__(self, message: str, *, session_id: str | None = None,
                 deadline_remaining: float = float("nan"),
                 estimated_wait: float = float("nan")) -> None:
        super().__init__(message, session_id=session_id, reason="deadline")
        self.deadline_remaining = deadline_remaining
        self.estimated_wait = estimated_wait


class ShardUnavailable(Shed):
    """A request was routed to a shard process that is dead or unreachable.

    Raised by the sharded serving layer
    (:class:`repro.serve.shard.ShardedService`) when the worker process
    owning a session has exited — killed, crashed, or mid-restore — or
    when its RPC channel broke while a request was in flight. The
    guarantee mirrors :class:`Overloaded`: a shed request never entered
    the mechanism stream, so retrying after the shard is restored is
    safe. A request that died *in flight* may or may not have journaled
    its write-ahead spend — the restored shard's ledger is the
    authority, and re-asking the same query replays any answer the dead
    shard released (and cached/checkpointed) before dying.
    """

    def __init__(self, message: str, *, shard_id: str | None = None,
                 session_id: str | None = None,
                 reason: str = "dead") -> None:
        super().__init__(message, session_id=session_id, reason=reason)
        self.shard_id = shard_id


class LossSpecificationError(ReproError):
    """A loss function violates the contract it declared.

    For example, a loss registered as 1-Lipschitz whose gradients exceed
    norm 1 on the supplied universe.
    """


class FrameError(ReproError):
    """Base class for shard wire-protocol (binary frame) failures.

    Raised by :mod:`repro.serve.shard.frames` when a frame cannot be
    decoded. A frame error on a live pipe means the two ends have lost
    byte-level agreement, so the supervisor retires the shard handle
    (the pipe cannot be resynchronized) rather than guessing.
    """


class FrameTruncated(FrameError):
    """A frame ended before its declared payload did (torn write/read)."""


class FrameCorrupt(FrameError):
    """A frame's bytes are structurally invalid (bad magic, unknown type
    tag, length fields that disagree with the buffer, or a pickled
    section where the decoder was told to refuse pickles)."""


class FrameVersionMismatch(FrameError):
    """The peer speaks a different frame-protocol version.

    Version negotiation is deliberately absent: supervisor and workers
    are always the same build (workers are spawned from the supervisor's
    interpreter), so a mismatch means mixed installs — refuse loudly
    instead of misreading payloads.
    """

    def __init__(self, message: str, *, got: int | None = None,
                 expected: int | None = None) -> None:
        super().__init__(message)
        self.got = got
        self.expected = expected
