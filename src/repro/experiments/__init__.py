"""Experiment harness: runners, sweeps, and report formatting.

Every benchmark in ``benchmarks/`` is a thin wrapper over an experiment
function defined here, so experiments are importable, testable library code
and the paper-vs-measured tables can be regenerated from Python directly:

    >>> from repro.experiments import table1
    >>> print(table1.run_lipschitz_row().format())  # doctest: +SKIP
"""

from repro.experiments.runner import TrialStats, run_trials
from repro.experiments.sweep import SweepResult, sweep
from repro.experiments.report import (
    ExperimentReport,
    fit_power_law,
    format_table,
)

__all__ = [
    "run_trials",
    "TrialStats",
    "sweep",
    "SweepResult",
    "format_table",
    "fit_power_law",
    "ExperimentReport",
]
