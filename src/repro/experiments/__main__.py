"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.experiments                # run everything
    python -m repro.experiments e1 e5 e12      # run selected experiments
    python -m repro.experiments --list         # show what exists
    python -m repro.experiments --out results/ # also save reports

Each experiment prints the same paper-vs-measured report the benchmark
suite archives under ``benchmarks/results/``.

Three operator verbs manage a deployed service's durability and
observability artifacts (see :mod:`repro.serve.checkpoint` and
:mod:`repro.obs`)::

    # rotate a budget journal offline (archive + RLE baselines)
    python -m repro.experiments compact --ledger budget.jsonl

    # recovery readiness: checkpoint generations, stamps, replay suffix
    python -m repro.experiments checkpoint --dir checkpoints/ \\
        --ledger budget.jsonl

    # re-render a saved MetricsRegistry snapshot for a scrape endpoint
    python -m repro.experiments metrics --snapshot metrics.json \\
        --format prometheus

    # failover readiness of a sharded deployment (topology + per-shard
    # checkpoint/journal state, see repro.serve.shard)
    python -m repro.experiments shards --dir /var/lib/repro/deploy
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.experiments.backend_demo import run_backend_demo
from repro.experiments.crossover import run_crossover
from repro.experiments.diagnostics import (
    run_dual_certificate_check,
    run_sensitivity_check,
    run_update_count,
    run_update_rule_ablation,
)
from repro.experiments.generalization import run_generalization
from repro.experiments.observability import run_observability_demo
from repro.experiments.offline_online import run_offline_online
from repro.experiments.oracles import run_oracle_sweep
from repro.experiments.recovery import (
    checkpoint_status,
    compact_ledger,
    run_recovery_demo,
)
from repro.experiments.resilience import run_resilience_demo
from repro.experiments.runtime import run_runtime_profile
from repro.experiments.serving import run_gateway_demo
from repro.experiments.sharding import run_sharding_demo, shard_status
from repro.experiments.table1 import (
    run_linear_row,
    run_lipschitz_row,
    run_strongly_convex_row,
    run_uglm_row,
)

EXPERIMENTS = {
    "e1": ("Table 1 row: linear queries", run_linear_row),
    "e2": ("Table 1 row: Lipschitz d-bounded", run_lipschitz_row),
    "e3": ("Table 1 row: UGLM", run_uglm_row),
    "e4": ("Table 1 row: strongly convex", run_strongly_convex_row),
    "e5": ("composition-vs-PMW crossover", run_crossover),
    "e6": ("update count vs Figure 3 budget", run_update_count),
    "e7": ("Claim 3.5 dual certificate", run_dual_certificate_check),
    "e8": ("sensitivity lemma 3S/n", run_sensitivity_check),
    "e9": ("single-query oracle sweep", run_oracle_sweep),
    "e10": ("adaptive generalization", run_generalization),
    "e11": ("runtime vs |X|", run_runtime_profile),
    "e12": ("update-rule ablation", run_update_rule_ablation),
    "e13": ("offline vs online variant", run_offline_online),
    "e14": ("gateway load demo: coalescing + admission-control metrics",
            run_gateway_demo),
    "e15": ("crash-recovery demo: checkpoint + suffix replay + compaction",
            run_recovery_demo),
    "e16": ("observability demo: span latencies, trace trees, budget gauges",
            run_observability_demo),
    "e22": ("sharded-failover demo: consistent-hash routing, SIGKILL + "
            "auto-restore with exact budget totals", run_sharding_demo),
    "e23": ("resilience demo: priority lanes, deadline shedding, "
            "exactly-once retries across a mid-reply kill",
            run_resilience_demo),
    "e24": ("numeric-backend demo: MW hot-path agreement + speed per "
            "registered ArrayBackend", run_backend_demo),
}


def _run_verb(argv) -> int:
    """The ``checkpoint``/``compact``/``metrics``/``shards`` verbs."""
    verb, rest = argv[0], argv[1:]
    if verb == "metrics":
        return _run_metrics_verb(rest)
    if verb == "shards":
        parser = argparse.ArgumentParser(
            prog="python -m repro.experiments shards",
            description="failover readiness of a sharded deployment "
                        "directory (topology, per-shard checkpoints, "
                        "replay suffixes)",
        )
        parser.add_argument("--dir", required=True,
                            help="ShardedService deployment directory "
                                 "(holds topology.json)")
        args = parser.parse_args(rest)
        return shard_status(args.dir)
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {verb}",
        description=("inspect checkpoint/ledger recovery readiness"
                     if verb == "checkpoint"
                     else "rotate a budget journal offline"),
    )
    if verb == "checkpoint":
        parser.add_argument("--dir", required=True,
                            help="checkpoint directory (Checkpointer's)")
        parser.add_argument("--ledger", default=None,
                            help="budget journal to diff the stamp against")
        args = parser.parse_args(rest)
        return checkpoint_status(args.dir, ledger_path=args.ledger)
    parser.add_argument("--ledger", required=True,
                        help="budget journal (JSONL) to compact in place")
    parser.add_argument("--archive-dir", default=None,
                        help="directory for the archived old segment "
                             "(default: alongside the journal)")
    args = parser.parse_args(rest)
    compact_ledger(args.ledger, archive_dir=args.archive_dir)
    return 0


def _run_metrics_verb(rest) -> int:
    """Re-render a saved :class:`~repro.obs.MetricsRegistry` snapshot.

    A service dumps its registry with ``registry.to_json(path)``; this
    verb turns that file back into Prometheus text exposition (for a
    textfile-collector scrape) or re-serialized JSON — proving the
    snapshot round-trips without the service running.
    """
    import json

    from repro.obs import MetricsRegistry

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments metrics",
        description="render a saved MetricsRegistry snapshot",
    )
    parser.add_argument("--snapshot", required=True,
                        help="registry snapshot JSON "
                             "(MetricsRegistry.to_json output)")
    parser.add_argument("--format", choices=("prometheus", "json"),
                        default="prometheus",
                        help="output format (default: prometheus)")
    args = parser.parse_args(rest)
    with open(args.snapshot, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    registry = MetricsRegistry.from_snapshot(state)
    if args.format == "prometheus":
        sys.stdout.write(registry.render_prometheus())
    else:
        sys.stdout.write(registry.to_json() + "\n")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("checkpoint", "compact", "metrics", "shards"):
        return _run_verb(argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation (Table 1 + theorem "
                    "claims) as measured experiments.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to save report text files into")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--backend", default=None,
                        help="numeric backend for every mechanism built in "
                             "this run (sets REPRO_BACKEND; e.g. 'numpy', "
                             "'float32', 'jax')")
    args = parser.parse_args(argv)

    if args.backend is not None:
        # Exported rather than threaded through each runner: backend
        # resolution happens wherever a mechanism or histogram is built,
        # and the env var is the one knob they all consult.
        os.environ["REPRO_BACKEND"] = args.backend

    if args.list:
        for key, (description, _) in EXPERIMENTS.items():
            print(f"  {key:5s} {description}")
        return 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; "
                     f"known: {list(EXPERIMENTS)}")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for key in selected:
        description, runner = EXPERIMENTS[key]
        print(f"[{key}] {description} ...", flush=True)
        started = time.perf_counter()
        report = runner(rng=args.seed)
        elapsed = time.perf_counter() - started
        text = report.render()
        print(text)
        print(f"[{key}] done in {elapsed:.1f}s\n", flush=True)
        if args.out is not None:
            (args.out / f"{key}.txt").write_text(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
