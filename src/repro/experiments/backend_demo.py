"""E24 — numeric-backend demo: agreement and speed of the MW hot path.

Runs the same deterministic MW workload — fused log-weight
accumulation, deferred normalization, inverse-CDF sampling, and a
linear-answer matvec — once per registered
:class:`~repro.backend.base.ArrayBackend` available on this machine,
and reports each accelerated backend against the bitwise-default NumPy
backend:

- ``max|Δw|``: worst per-element deviation of the materialized
  hypothesis weights (the numeric-tolerance contract says ≤ 1e-6);
- ``answer Δ``: worst linear-query answer deviation;
- ``sample agree``: fraction of inverse-CDF draws landing on the same
  universe index under a fixed seed;
- hot-loop wall time and speedup vs NumPy (demo-sized — the committed
  numbers live in ``benchmarks/bench_backend.py``).

A full end-to-end check rides along: a ``PMWService`` session opened
with each backend answers the same query stream, demonstrating the
``backend=`` plumbing through mechanism construction (select globally
with ``--backend`` / ``REPRO_BACKEND``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import available_backends, get_backend
from repro.data.log_histogram import hypothesis_core
from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport

#: The documented agreement band for accelerated backends.
TOLERANCE = 1e-6


def _hot_loop(backend_name: str, universe_size: int, rounds: int,
              seed: int):
    """The measured unit: MW updates + materialize + sample + answer.

    Directions and queries are drawn from a generator seeded
    identically for every backend, so deviations are purely arithmetic.
    """
    backend = get_backend(backend_name)
    rng = np.random.default_rng(seed)
    directions = rng.standard_normal((rounds, universe_size))
    query = rng.random(universe_size)

    from repro.data.universe import Universe

    universe = Universe(np.arange(universe_size, dtype=float)[:, None],
                        name="e24")
    core = hypothesis_core(universe, backend=backend)
    started = time.perf_counter()
    for direction in directions:
        core.apply_update(direction, 0.05)
    weights = np.asarray(core.weights, dtype=float)
    elapsed = time.perf_counter() - started
    answer = float(query @ weights)
    samples = core.freeze().sample_indices(
        2048, rng=np.random.default_rng(seed + 1))
    return weights, answer, samples, elapsed


def _service_answers(backend_name: str, task, seed: int):
    """One PMWService session per backend, same seeded query stream."""
    from repro.losses.linear import LinearQuery
    from repro.serve.service import PMWService

    tables = np.random.default_rng(seed).random(
        (6, task.dataset.universe.size))
    queries = [LinearQuery(table, name=f"q{j}")
               for j, table in enumerate(tables)]
    with PMWService(task.dataset, backend=backend_name,
                    rng=np.random.default_rng(seed)) as service:
        sid = service.open_session("pmw-linear", alpha=0.3, epsilon=2.0,
                                   delta=1e-6, max_updates=3,
                                   rng=np.random.default_rng(seed))
        results = service.serve_session_batch(sid, queries)
        backend_label = service.session(sid).mechanism.backend_name
    return [float(result.value) for result in results], backend_label


def run_backend_demo(*, universe_size: int = 20000, rounds: int = 12,
                     rng=0) -> ExperimentReport:
    """Compare every available backend on the MW hot path."""
    seed = int(rng) if not isinstance(rng, np.random.Generator) else 0
    report = ExperimentReport(
        name="E24: pluggable numeric backend (MW hot path)")
    names = available_backends()
    report.add(f"available backends: {names} "
               f"(select with --backend or REPRO_BACKEND)")

    baseline = _hot_loop("numpy", universe_size, rounds, seed)
    base_weights, base_answer, base_samples, base_elapsed = baseline
    rows = []
    worst = 0.0
    for name in names:
        weights, answer, samples, elapsed = _hot_loop(
            name, universe_size, rounds, seed)
        delta_w = float(np.max(np.abs(weights - base_weights)))
        delta_a = abs(answer - base_answer)
        agree = float(np.mean(samples == base_samples))
        worst = max(worst, delta_w, delta_a)
        rows.append([
            name, np.dtype(get_backend(name).dtype).name,
            "yes" if get_backend(name).fused else "no",
            delta_w, delta_a, f"{agree:.1%}",
            f"{elapsed * 1e3:.1f}ms",
            f"{base_elapsed / elapsed:.2f}x" if elapsed > 0 else "-",
        ])
    report.add_table(
        ["backend", "dtype", "fused", "max|dw| vs numpy",
         "answer delta", "sample agree", "hot loop", "vs numpy"],
        rows,
        title=f"MW hot path at |X|={universe_size}, {rounds} updates",
    )
    report.add(
        f"worst deviation {worst:.3g} vs tolerance {TOLERANCE:g} -> "
        f"{'OK' if worst <= TOLERANCE else 'VIOLATION'} "
        f"(numpy row is bitwise zero by construction)"
    )

    task = make_classification_dataset(n=300, d=2, universe_size=64,
                                       rng=seed)
    service_rows = []
    reference = None
    for name in names:
        values, label = _service_answers(name, task, seed)
        if reference is None:
            reference = values
        spread = max(abs(a - b) for a, b in zip(values, reference))
        service_rows.append([name, label, f"{values[0]:.6f}", spread])
    report.add_table(
        ["requested", "mechanism.backend_name", "first answer",
         "max answer spread"],
        service_rows,
        title="PMWService sessions opened with backend=...",
    )
    return report
