"""E5: the composition-vs-PMW crossover.

The introduction's core claim: answering k CM queries by independent
composition "renders the answers meaningless after a small number of
queries (roughly n^2 in most natural settings)", while PMW's error depends
only polylogarithmically on k. This experiment races the two mechanisms on
the same workload and budget as k grows, locating the crossover.
"""

from __future__ import annotations

from repro.core.composition_baseline import CompositionBaseline
from repro.core import theory
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import run_trials
from repro.experiments.workloads import (
    classification_workload,
    family_max_error,
    pmw_max_error,
)
from repro.losses.families import random_logistic_family
from repro.utils.rng import as_generator


def run_crossover(*, ks=(4, 16, 64, 256), n: int = 60_000, d: int = 4,
                  alpha: float = 0.25, epsilon: float = 1.0,
                  delta: float = 1e-6, trials: int = 2,
                  rng=0) -> ExperimentReport:
    """Race PMW-CM against the composition baseline as k grows.

    Both get the same total ``(epsilon, delta)``; both answer the same
    logistic-family workload. Expected shape: composition error grows
    ``~sqrt(k)`` (each call's budget shrinks), PMW error stays ~flat, and
    PMW wins beyond a moderate crossover k.
    """
    report = ExperimentReport("E5 crossover: PMW-CM vs composition in k")
    master = as_generator(rng)
    rows = []
    pmw_series, comp_series = [], []
    for k in ks:
        def pmw_trial(generator, k=k):
            workload = classification_workload(
                n=n, d=d, k=k, family_builder=random_logistic_family,
                universe_size=150, rng=generator,
            )
            oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=delta,
                                                steps=40)
            error, _ = pmw_max_error(workload, oracle, alpha=alpha,
                                     epsilon=epsilon, delta=delta,
                                     max_updates=25, rng=generator)
            return error

        def composition_trial(generator, k=k):
            workload = classification_workload(
                n=n, d=d, k=k, family_builder=random_logistic_family,
                universe_size=150, rng=generator,
            )
            oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=delta,
                                                steps=40)
            baseline = CompositionBaseline(
                workload.dataset, oracle, planned_queries=k,
                epsilon=epsilon, delta=delta, rng=generator,
            )
            answers = baseline.answer_all(workload.losses)
            return family_max_error(
                workload.losses, workload.dataset.histogram(),
                [a.theta for a in answers],
            )

        pmw_stats = run_trials(pmw_trial, trials=trials,
                               rng=int(master.integers(2**31)))
        comp_stats = run_trials(composition_trial, trials=trials,
                                rng=int(master.integers(2**31)))
        pmw_series.append(pmw_stats.mean)
        comp_series.append(comp_stats.mean)
        winner = "PMW" if pmw_stats.mean < comp_stats.mean else "composition"
        rows.append([k, f"{pmw_stats:.3g}", f"{comp_stats:.3g}", winner])

    report.add_table(
        ["k", "PMW-CM max err", "composition max err", "winner"],
        rows, title=f"logistic family, n={n}, d={d}, eps={epsilon}",
    )
    report.add_shape_check("composition error vs k", ks, comp_series,
                           expected_slope=theory.composition_error_exponent(),
                           tolerance=0.4)
    report.add_shape_check("pmw error vs k", ks, pmw_series,
                           expected_slope=theory.pmw_error_exponent(),
                           tolerance=0.35)
    crossover_k = next(
        (k for k, p, c in zip(ks, pmw_series, comp_series) if p < c), None
    )
    report.add(
        f"first k where PMW wins: {crossover_k} (paper: composition becomes "
        f"vacuous at k ~ n^2-ish; PMW handles exponentially many)."
    )
    return report
