"""Diagnostic experiments: E6 (update count), E7 (dual certificate),
E8 (sensitivity / privacy accounting), E12 (update-rule ablation).

These verify the paper's *internal* quantities — the claims the analysis
chains together — rather than end-to-end accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core import theory
from repro.core.accuracy import empirical_error_query_sensitivity
from repro.core.pmw_cm import PrivateMWConvex
from repro.core.update import claim_3_5_slack, dual_certificate, mw_step
from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.erm.oracle import NonPrivateOracle
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball
from repro.utils.rng import as_generator


def run_update_count(*, alphas=(0.2, 0.3, 0.45), cube_dim: int = 6,
                     n: int = 50_000, pool_size: int = 40,
                     queries: int = 120, rng=0) -> ExperimentReport:
    """E6: measured MW updates vs the Figure 3 budget T = 64 S^2 log|X|/a^2.

    Streams a large pool of quadratic queries against a skewed dataset and
    counts updates at several accuracy targets. The measured count must
    stay within the budget (Claim 3.7's non-termination argument); the
    report also shows how loose the worst-case 64-constant is in practice.
    """
    report = ExperimentReport("E6 update count vs Figure 3 budget")
    universe = signed_cube(cube_dim)
    master = as_generator(rng)
    skew = master.dirichlet(np.full(universe.size, 0.2))
    dataset = Dataset(universe, master.choice(universe.size, size=n, p=skew))
    losses = random_quadratic_family(universe, pool_size, rng=master)
    scale = max(loss.scale_bound() for loss in losses)

    rows = []
    for alpha in alphas:
        paper_budget = theory.update_budget(scale, universe.size, alpha)
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(200), scale=scale, alpha=alpha,
            epsilon=2.0, delta=1e-6, schedule="calibrated",
            max_updates=min(paper_budget, 200), solver_steps=150,
            rng=master,
        )
        stream = [losses[i % pool_size] for i in range(queries)]
        mechanism.answer_all(stream, on_halt="hypothesis")
        rows.append([alpha, mechanism.updates_performed,
                     mechanism.config.max_updates, paper_budget])
    report.add_table(
        ["alpha", "measured updates", "calibrated T", "paper T (64S^2log|X|/a^2)"],
        rows,
        title=f"quadratic pool of {pool_size} on {universe.name}, "
              f"{queries} queries",
    )
    measured = [row[1] for row in rows]
    budgets = [row[3] for row in rows]
    report.add(
        f"all runs within the paper budget: "
        f"{all(m <= b for m, b in zip(measured, budgets))}; the worst-case "
        f"constant 64 is loose by ~{min(b / max(m, 1) for m, b in zip(measured, budgets)):.0f}x "
        f"on this structured workload."
    )
    return report


def run_dual_certificate_check(*, samples: int = 200, cube_dim: int = 3,
                               rng=0) -> ExperimentReport:
    """E7: Claim 3.5 over random (data, hypothesis, oracle-answer) triples.

    Reports the minimum slack of ``<u, Dhat - D> - (l_D(theta_hat) -
    l_D(theta))`` — non-negative means the inequality held every time.
    """
    report = ExperimentReport("E7 Claim 3.5 dual-certificate inequality")
    universe = signed_cube(cube_dim)
    loss = QuadraticLoss(L2Ball(cube_dim))
    generator = as_generator(rng)
    slacks, inners = [], []
    for _ in range(samples):
        data = Histogram(universe,
                         generator.dirichlet(np.full(universe.size, 0.5)))
        hypothesis = Histogram(universe,
                               generator.dirichlet(np.full(universe.size, 0.5)))
        theta_oracle = loss.domain.random_point(generator)
        certificate = dual_certificate(loss, hypothesis, theta_oracle)
        slacks.append(claim_3_5_slack(loss, certificate, data, hypothesis))
        inners.append(certificate.hypothesis_inner)
    slacks, inners = np.asarray(slacks), np.asarray(inners)
    report.add_table(
        ["quantity", "min", "mean", "violations"],
        [
            ["Claim 3.5 slack", float(slacks.min()), float(slacks.mean()),
             int((slacks < -1e-8).sum())],
            ["<u, Dhat> (eq. 3)", float(inners.min()), float(inners.mean()),
             int((inners < -1e-8).sum())],
        ],
        title=f"{samples} random triples, quadratic losses, {universe.name}",
    )
    report.add(
        "zero violations ⇒ the paper's key lemma holds exactly on every "
        "sampled instance (as it must — it is a theorem; this guards the "
        "implementation)."
    )
    return report


def run_sensitivity_check(*, pairs: int = 60, cube_dim: int = 4,
                          n: int = 500, rng=0) -> ExperimentReport:
    """E8: the Section 3.4.2 sensitivity lemma, empirically.

    Samples adjacent dataset pairs and random hypotheses and measures the
    realized ``|err_l(D, H) - err_l(D', H)|`` against the proof's ``3S/n``
    (and against the often-quoted looser view of what one row can do).
    """
    report = ExperimentReport("E8 error-query sensitivity <= 3S/n")
    universe = signed_cube(cube_dim)
    loss = QuadraticLoss(L2Ball(cube_dim))
    generator = as_generator(rng)
    bound = 3.0 * loss.scale_bound() / n
    realized = []
    for _ in range(pairs):
        dataset = Dataset(universe, generator.integers(0, universe.size,
                                                       size=n))
        neighbor = dataset.random_neighbor(rng=generator)
        hypothesis = Histogram(
            universe, generator.dirichlet(np.full(universe.size, 0.5))
        )
        realized.append(empirical_error_query_sensitivity(
            loss, dataset.histogram(), neighbor.histogram(), hypothesis
        ))
    realized = np.asarray(realized)
    report.add_table(
        ["quantity", "value"],
        [
            ["3S/n bound", bound],
            ["max realized", float(realized.max())],
            ["mean realized", float(realized.mean())],
            ["violations", int((realized > bound + 1e-9).sum())],
        ],
        title=f"{pairs} adjacent pairs, n={n}, S={loss.scale_bound():g}",
    )
    return report


def run_update_rule_ablation(*, updates: int = 300, cube_dim: int = 3,
                             rng=0) -> ExperimentReport:
    """E12: the dual-certificate update vs two ablations.

    Compares hypothesis-error decay under:

    1. the regret-consistent dual-certificate update (ours / the analysis);
    2. Figure 3's printed ``+`` sign (moves the hypothesis the wrong way);
    3. a naive per-point loss-difference direction
       ``u(x) = l_x(theta_hat) - l_x(theta)`` — linear in the histogram but
       not a first-order certificate, so it lacks the Claim 3.5 guarantee.
    """
    report = ExperimentReport("E12 ablation: update direction & sign")
    universe = signed_cube(cube_dim)
    loss = QuadraticLoss(L2Ball(cube_dim))
    generator = as_generator(rng)
    weights = generator.dirichlet(np.full(universe.size, 0.08))
    data = Histogram(universe, weights)
    theta_star = minimize_loss(loss, data).theta
    scale = loss.scale_bound()

    def final_error(mode: str) -> float:
        hypothesis = Histogram.uniform(universe)
        for _ in range(updates):
            certificate = dual_certificate(loss, hypothesis, theta_star)
            separation = certificate.hypothesis_inner - data.dot(
                certificate.direction
            )
            eta = max(separation, 1e-3) / (2.0 * scale)
            if mode == "paper_sign":
                hypothesis = mw_step(hypothesis, certificate, eta=eta,
                                     scale=scale, paper_sign=True)
            elif mode == "loss_difference":
                direction = (loss.values(certificate.theta_hat, universe)
                             - loss.values(theta_star, universe))
                width = max(float(np.max(np.abs(direction))), 1e-9)
                hypothesis = hypothesis.multiplicative_update(
                    -direction / width, eta
                )
            else:
                hypothesis = mw_step(hypothesis, certificate, eta=eta,
                                     scale=scale)
        theta_final = minimize_loss(loss, hypothesis).theta
        return float(loss.loss_on(theta_final, data)
                     - loss.loss_on(theta_star, data))

    initial_hypothesis = Histogram.uniform(universe)
    theta0 = minimize_loss(loss, initial_hypothesis).theta
    initial = float(loss.loss_on(theta0, data)
                    - loss.loss_on(theta_star, data))
    rows = [
        ["initial (uniform hypothesis)", initial],
        ["dual certificate (ours)", final_error("dual")],
        ["Figure 3 printed sign (+)", final_error("paper_sign")],
        ["naive loss-difference", final_error("loss_difference")],
    ]
    report.add_table(["update rule", f"error after {updates} updates"], rows,
                     title=f"quadratic loss, {universe.name}")
    report.add(
        "expected: dual certificate converges; the printed '+' sign "
        "diverges (error grows above initial); the naive direction may "
        "make progress but without the Claim 3.5 guarantee."
    )
    return report
