"""E10: adaptive generalization (Section 1.3).

[BSSU15] plug the paper's mechanism into the DP→generalization transfer:
answers to adaptively chosen CM queries that are accurate on the sample are
also accurate on the population. We measure both errors for PMW answers
under an adaptive worst-case analyst and contrast with naive (non-private)
empirical minimization on a small sample, where adaptivity can overfit.
"""

from __future__ import annotations

import numpy as np

from repro.adaptive.analysts import WorstCaseAnalyst
from repro.adaptive.game import play_accuracy_game
from repro.adaptive.generalization import population_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.data.builders import signed_cube
from repro.erm.oracle import NonPrivateOracle
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.optimize.minimize import minimize_loss
from repro.utils.rng import as_generator


def run_generalization(*, n: int = 60, cube_dim: int = 5,
                       pool_size: int = 30, k: int = 20,
                       trials: int = 3, rng=0) -> ExperimentReport:
    """Population vs sample error of adaptive answers, DP vs naive.

    Uses a deliberately small ``n`` so sample noise is visible, quadratic
    queries so all errors are exact, and the worst-case analyst so queries
    chase the sample's idiosyncrasies.
    """
    report = ExperimentReport("E10 adaptive generalization (Sec 1.3)")
    universe = signed_cube(cube_dim)
    master = as_generator(rng)

    dp_sample, dp_population = [], []
    naive_sample, naive_population = [], []
    for _ in range(trials):
        generator = as_generator(int(master.integers(2**31)))
        population = Histogram(
            universe, generator.dirichlet(np.full(universe.size, 0.3))
        )
        dataset = Dataset(universe, generator.choice(
            universe.size, size=n, p=population.weights))
        sample = dataset.histogram()
        pool = random_quadratic_family(universe, pool_size, rng=generator)

        # DP mechanism under an adaptive analyst.
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(150), scale=4.0, alpha=0.2,
            epsilon=2.0, delta=1e-6, schedule="calibrated", max_updates=20,
            solver_steps=150, rng=generator,
        )
        analyst = WorstCaseAnalyst(pool, sample, solver_steps=100)
        result = play_accuracy_game(mechanism, analyst, k=k,
                                    solver_steps=150)
        dp_sample.append(result.max_error)
        # Population side: we cannot replay the exact stream cheaply, so we
        # score every pool member against the final hypothesis — a
        # conservative (worst-over-pool) population-side measurement.
        pop_errors = []
        for loss in pool:
            theta = minimize_loss(loss, mechanism.hypothesis,
                                  steps=150).theta
            pop_errors.append(population_error(loss, population, theta,
                                               solver_steps=150))
        dp_population.append(max(pop_errors))

        # Naive: exact sample minimizers for every pool query.
        naive_s, naive_p = [], []
        for loss in pool:
            theta = minimize_loss(loss, sample, steps=150).theta
            naive_s.append(float(loss.loss_on(theta, sample)
                                 - minimize_loss(loss, sample,
                                                 steps=150).value))
            naive_p.append(population_error(loss, population, theta,
                                            solver_steps=150))
        naive_sample.append(max(naive_s))
        naive_population.append(max(naive_p))

    def mean(values):
        return float(np.mean(values))

    report.add_table(
        ["mechanism", "max sample err", "max population err",
         "generalization gap"],
        [
            ["PMW (DP)", mean(dp_sample), mean(dp_population),
             mean(dp_population) - mean(dp_sample)],
            ["naive empirical", mean(naive_sample), mean(naive_population),
             mean(naive_population) - mean(naive_sample)],
        ],
        title=f"n={n}, |X|={universe.size}, {pool_size}-query pool, "
              f"{trials} trials",
    )
    report.add(
        "the naive mechanism is exact on the sample (err 0) but pays the "
        "full sampling gap on the population; the DP mechanism's "
        "population error stays comparable to its sample error — the "
        "transfer phenomenon of Section 1.3."
    )
    return report
