"""E16 — observability demo: unified metrics, traces, budget telemetry.

Not a paper experiment but a serving-layer diagnostic: run a small
served workload with full instrumentation on — a shared
:class:`~repro.obs.registry.MetricsRegistry` behind the gateway's
:class:`~repro.serve.metrics.GatewayMetrics` façade, a process tracer
(:func:`repro.obs.trace.install`), and a pull of the domain gauges
(:func:`repro.obs.telemetry.publish_service`) — then print what an
operator would scrape:

- the per-phase span latency breakdown (interpolated quantiles from the
  registry's log-scale histograms),
- one request's indented trace tree (gateway execute -> plan -> session
  round -> fingerprint / cache probe / solve / SVT / MW update),
- the per-session privacy-budget gauges, cross-checked **bitwise**
  against a fresh replay of the budget ledger (the telemetry pillar's
  correctness claim), and
- an excerpt of the Prometheus text exposition.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.obs import MetricsRegistry, publish_service, trace
from repro.serve.ledger import replay_ledger
from repro.serve.metrics import GatewayMetrics
from repro.serve.service import PMWService


def run_observability_demo(*, analysts: int = 3,
                           queries_per_analyst: int = 8,
                           rng=0) -> ExperimentReport:
    """Serve an instrumented workload and report the unified telemetry."""
    task = make_classification_dataset(n=400, d=3, universe_size=60,
                                       rng=rng)
    registry = MetricsRegistry()
    tracer = trace.install(registry=registry)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            ledger_path = os.path.join(tmp, "budget.jsonl")
            service = PMWService(task.dataset, ledger_path=ledger_path,
                                 cache_policy="track-hypothesis",
                                 rng=np.random.default_rng(rng))
            sessions = [
                service.open_session(
                    "pmw-convex", analyst=f"analyst-{index}",
                    oracle="non-private", scale=4.0, alpha=0.4,
                    epsilon=2.0, delta=1e-6, max_updates=4,
                    solver_steps=40,
                )
                for index in range(analysts)
            ]
            losses = random_quadratic_family(
                task.universe, queries_per_analyst, rng=rng + 1)
            with service.gateway(
                    workers=2, metrics=GatewayMetrics(registry=registry),
            ) as gateway:
                futures = [gateway.submit_async(sid, loss)
                           for sid in sessions for loss in losses]
                # Duplicate tail: exercises cache hits and trace reuse.
                futures += [gateway.submit_async(sessions[0], losses[0])
                            for _ in range(queries_per_analyst)]
                results = [f.result(timeout=120) for f in futures]
                gateway.drain()

            publish_service(registry, service, gateway=None)
            replayed = replay_ledger(ledger_path)
            budget_rows = []
            exact = True
            for sid in service.session_ids:
                gauge = registry.get("budget.epsilon_spent",
                                     {"session": sid}).value
                ledger_sum = sum(
                    s["epsilon"] for s in replayed.spends.get(sid, []))
                match = (gauge == ledger_sum)
                exact = exact and match
                budget_rows.append([
                    sid, gauge, ledger_sum,
                    "bitwise-equal" if match else "MISMATCH",
                ])
            service.close()
    finally:
        trace.uninstall()

    report = ExperimentReport(
        "E16 observability demo (registry + tracing + budget telemetry)")
    report.add(
        f"{analysts} analysts x {queries_per_analyst} queries served with "
        f"full instrumentation on one shared MetricsRegistry; "
        f"{len(results)} answers delivered."
    )

    span_rows = []
    for (name, labels), histogram in sorted(
            registry.collect("histogram").items()):
        if not name.startswith("span.") or histogram.count == 0:
            continue
        span_rows.append([
            name[len("span."):], histogram.count,
            histogram.quantile(0.5) * 1e3, histogram.quantile(0.99) * 1e3,
            histogram.max * 1e3,
        ])
    report.add_table(
        ["phase", "spans", "p50 (ms)", "p99 (ms)", "max (ms)"],
        span_rows, title="per-phase span latencies (interpolated quantiles)",
    )

    finished = tracer.finished()
    mechanism_traces = [r["trace_id"] for r in finished
                        if r["name"] == "mechanism.mw_update"]
    if mechanism_traces:
        report.add(tracer.render_tree(mechanism_traces[0]))

    report.add_table(
        ["session", "epsilon_spent gauge", "ledger replay sum", "check"],
        budget_rows, title="budget gauges vs ledger replay",
    )
    report.add(
        "budget-gauge exactness: "
        + ("PASS — every session's epsilon_spent gauge equals its "
           "journal-ordered ledger replay sum bitwise." if exact
           else "FAIL — at least one gauge diverged from the ledger.")
    )

    exposition = registry.render_prometheus()
    budget_lines = [line for line in exposition.splitlines()
                    if line.startswith(("# TYPE budget", "budget_"))]
    report.add("Prometheus exposition excerpt (budget family):\n"
               + "\n".join(budget_lines))
    report.add(
        f"full exposition: {len(exposition.splitlines())} lines, "
        f"{len(registry.collect('counter'))} counters, "
        f"{len(registry.collect('gauge'))} gauges, "
        f"{len(registry.collect('histogram'))} histograms."
    )
    return report


__all__ = ["run_observability_demo"]
