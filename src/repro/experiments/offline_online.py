"""E13: offline vs online PMW-CM (Section 1.2).

The paper presents the online algorithm but sketches its offline
(MWEM-style) variant. This experiment runs both on the same workload and
budget and compares max error and oracle usage: offline selection
(exponential mechanism over the whole workload) targets the worst query
each round, while the online mechanism reacts to the stream order.
"""

from __future__ import annotations

from repro.core.accuracy import answer_error
from repro.core.offline import OfflineMWConvex
from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import run_trials
from repro.experiments.workloads import classification_workload
from repro.losses.families import random_logistic_family
from repro.utils.rng import as_generator


def run_offline_online(*, n: int = 60_000, d: int = 4, k: int = 30,
                       rounds: int = 12, alpha: float = 0.25,
                       epsilon: float = 1.0, delta: float = 1e-6,
                       trials: int = 3, rng=0) -> ExperimentReport:
    """Race the two variants on one logistic workload and budget."""
    report = ExperimentReport("E13 offline vs online PMW-CM")
    master = as_generator(rng)

    def online_trial(generator):
        workload = classification_workload(
            n=n, d=d, k=k, family_builder=random_logistic_family,
            universe_size=150, rng=generator,
        )
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=delta,
                                            steps=40)
        mechanism = PrivateMWConvex(
            workload.dataset, oracle, scale=workload.scale, alpha=alpha,
            epsilon=epsilon, delta=delta, schedule="calibrated",
            max_updates=rounds, solver_steps=200, rng=generator,
        )
        answers = mechanism.answer_all(workload.losses, on_halt="hypothesis")
        data = workload.dataset.histogram()
        worst = max(
            answer_error(loss, data, a.theta, solver_steps=200)
            for loss, a in zip(workload.losses, answers)
        )
        return worst, mechanism.updates_performed

    def offline_trial(generator):
        workload = classification_workload(
            n=n, d=d, k=k, family_builder=random_logistic_family,
            universe_size=150, rng=generator,
        )
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=delta,
                                            steps=40)
        mechanism = OfflineMWConvex(
            workload.dataset, workload.losses, oracle, scale=workload.scale,
            rounds=rounds, epsilon=epsilon, delta=delta, solver_steps=200,
            rng=generator,
        )
        result = mechanism.run()
        return mechanism.max_error(result), rounds

    online_err = run_trials(lambda g: online_trial(g)[0], trials=trials,
                            rng=int(master.integers(2**31)))
    online_updates = run_trials(lambda g: float(online_trial(g)[1]),
                                trials=trials,
                                rng=int(master.integers(2**31)))
    offline_err = run_trials(lambda g: offline_trial(g)[0], trials=trials,
                             rng=int(master.integers(2**31)))

    report.add_table(
        ["variant", "max excess risk", "oracle calls"],
        [
            ["online (Figure 3)", f"{online_err:.3g}",
             f"{online_updates.mean:.1f} (adaptive)"],
            ["offline (Sec 1.2 / MWEM-style)", f"{offline_err:.3g}",
             f"{rounds} (fixed)"],
        ],
        title=f"k={k} logistic queries, n={n}, eps={epsilon}, "
              f"T={rounds} rounds",
    )
    report.add(
        "both variants should land near the alpha target; online spends "
        "oracle budget only when the stream forces it (sparse vector), "
        "offline spends a fixed T rounds but targets the globally worst "
        "query each round."
    )
    return report


__all__ = ["run_offline_online"]
