"""E9: single-query oracle accuracy sweeps (Theorems 4.1, 4.3, 4.5).

Measures the excess empirical risk of each DP-ERM oracle as ``n`` grows and
prints the fitted decay exponents next to the theorems' predictions.
"""

from __future__ import annotations

from repro.data.synthetic import make_classification_dataset
from repro.erm.exponential import ExponentialMechanismOracle
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.objective_perturbation import ObjectivePerturbationOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.experiments.report import ExperimentReport, fit_power_law
from repro.experiments.runner import run_trials
from repro.experiments.workloads import single_query_excess
from repro.losses.families import random_logistic_family, random_ridge_family
from repro.utils.rng import as_generator


def run_oracle_sweep(*, ns=(1_000, 4_000, 16_000, 64_000), d: int = 3,
                     epsilon: float = 0.3, delta: float = 1e-6,
                     trials: int = 3, rng=0) -> ExperimentReport:
    """Excess risk vs n for every oracle in the library.

    Lipschitz oracles (noisy GD, objective perturbation, GLM projection,
    exponential mechanism) run a logistic query; the strongly-convex oracle
    (output perturbation) runs a ridge query. Expected decay: roughly
    ``n^-1`` for the gradient-based oracles (BST14's ``sqrt(d)/(n eps)``),
    faster for output perturbation on strongly convex losses.
    """
    report = ExperimentReport("E9 single-query oracle accuracy vs n")
    master = as_generator(rng)

    oracle_builders = {
        "noisy-GD (BST14)": lambda: NoisyGradientDescentOracle(
            epsilon, delta, steps=40),
        "objective-pert (KST12)": lambda: ObjectivePerturbationOracle(
            epsilon, delta, solver_steps=200),
        "GLM-projection (JT14)": lambda: GLMProjectionOracle(
            epsilon, delta, projection_dim=3, steps=40),
        "exp-mech net (BLR)": lambda: ExponentialMechanismOracle(
            epsilon, candidates=256),
        "output-pert (CMS11, ridge)": lambda: OutputPerturbationOracle(
            epsilon, delta),
    }

    headers = ["oracle"] + [f"n={n}" for n in ns] + ["fitted slope"]
    rows = []
    for name, builder in oracle_builders.items():
        strongly_convex = "ridge" in name
        means = []
        for n in ns:
            def trial(generator, n=n, strongly_convex=strongly_convex,
                      builder=builder):
                task = make_classification_dataset(
                    n=n, d=d, universe_size=120, rng=generator)
                if strongly_convex:
                    loss = random_ridge_family(task.universe, 1, lam=1.0,
                                               rng=generator)[0]
                else:
                    loss = random_logistic_family(task.universe, 1,
                                                  rng=generator)[0]
                return single_query_excess(loss, task.dataset, builder(),
                                           rng=generator)

            stats = run_trials(trial, trials=trials,
                               rng=int(master.integers(2**31)))
            means.append(stats.mean)
        slope, _ = fit_power_law(ns, means)
        rows.append([name] + [f"{m:.4g}" for m in means] + [f"{slope:.2f}"])
    report.add_table(headers, rows,
                     title=f"d={d}, eps={epsilon}, logistic/ridge queries")
    report.add(
        "paper shapes: gradient-based oracles decay ~n^-1 until the "
        "non-private optimization floor; the exponential-mechanism net "
        "flattens at its resolution; output perturbation on 1-strongly-"
        "convex losses decays ~n^-2 (squared noise)."
    )
    return report
