"""E15 — crash-recovery demo, plus the `checkpoint`/`compact` CLI verbs.

Not a paper experiment but a serving-layer diagnostic: build a ledgered
service, serve traffic, checkpoint, serve a post-checkpoint crash
window, "crash", and restore through every tier — asserting bitwise
budget exactness at each step and reporting restart costs. This is the
end-to-end story of :mod:`repro.serve.checkpoint` in one report.

The module also backs two operator verbs of ``python -m
repro.experiments``:

- ``compact --ledger PATH`` — offline journal rotation
  (:func:`compact_ledger`): heals a torn tail, folds the spend history
  into baseline records, archives the old segment;
- ``checkpoint --dir DIR [--ledger PATH]`` — recovery-readiness
  inspection (:func:`checkpoint_status`): lists checkpoint generations
  and stamps, and reports how much journal a restart would replay.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.checkpoint import (
    Checkpointer,
    checkpoint_stamp,
    discover_checkpoints,
)
from repro.serve.ledger import replay_ledger
from repro.serve.service import PMWService


def run_recovery_demo(*, analysts: int = 4, queries_per_analyst: int = 6,
                      rng=0) -> ExperimentReport:
    """Checkpoint, crash, and restore a small service; report the tiers."""
    report = ExperimentReport(
        "E15 crash recovery: checkpoint + suffix replay + compaction")
    task = make_classification_dataset(n=600, d=3, universe_size=80,
                                       rng=rng)
    losses = random_quadratic_family(task.universe, queries_per_analyst,
                                     rng=rng + 1)
    with tempfile.TemporaryDirectory(prefix="recovery-demo-") as workdir:
        ledger_path = os.path.join(workdir, "budget.jsonl")
        checkpoint_dir = os.path.join(workdir, "checkpoints")
        service = PMWService(task.dataset, ledger_path=ledger_path,
                             rng=np.random.default_rng(rng))
        sids = [
            service.open_session(
                "pmw-convex", analyst=f"analyst-{index}",
                oracle="non-private", scale=4.0, alpha=0.4, epsilon=2.0,
                delta=1e-6, max_updates=4, solver_steps=40,
            )
            for index in range(analysts)
        ]
        with service.gateway(workers=2) as gateway:
            checkpointer = Checkpointer(service, checkpoint_dir,
                                        gateway=gateway, every_records=8)
            for sid in sids:
                for loss in losses[:queries_per_analyst // 2]:
                    gateway.submit(sid, loss)
                checkpointer.maybe_checkpoint()
            path = checkpointer.checkpoint()
            stamp = checkpoint_stamp(path)
            # The crash window: spends the checkpoint has not seen.
            for sid in sids:
                for loss in losses[queries_per_analyst // 2:]:
                    gateway.submit(sid, loss)
        expected = {sid: service.session(sid).accountant.to_records()
                    for sid in sids}
        last_seq = service.ledger.last_seq
        journal_lines = sum(1 for _ in open(ledger_path, "rb"))
        service.close()  # the crash

        started = time.perf_counter()
        restored = Checkpointer.restore(task.dataset, checkpoint_dir,
                                        ledger_path=ledger_path)
        restore_seconds = time.perf_counter() - started
        exact = all(restored.session(sid).accountant.to_records()
                    == expected[sid] for sid in sids)
        checkpoints = len(Checkpointer(restored, checkpoint_dir)
                          .checkpoints())
        report.add_table(
            ["sessions", "journal lines", "checkpoint stamp",
             "ledger last seq", "suffix replayed", "restore (ms)",
             "totals bitwise-exact"],
            [[analysts, journal_lines, stamp, last_seq,
              last_seq - stamp, restore_seconds * 1e3, exact]],
            title="restart from checkpoint + ledger-suffix replay "
                  f"({checkpoints} checkpoint generations on disk)",
        )

        before_bytes = os.path.getsize(ledger_path)
        checkpointer = Checkpointer(restored, checkpoint_dir)
        _, archive = checkpointer.compact()
        after_bytes = os.path.getsize(ledger_path)
        restored.close()
        recheck = Checkpointer.restore(task.dataset, checkpoint_dir,
                                       ledger_path=ledger_path)
        still_exact = all(recheck.session(sid).accountant.to_records()
                          == expected[sid] for sid in sids)
        recheck.close()
        report.add_table(
            ["journal bytes before", "after", "ratio", "archive",
             "post-compaction totals exact"],
            [[before_bytes, after_bytes, before_bytes / after_bytes,
              os.path.basename(archive), still_exact]],
            title="ledger compaction (rotation with RLE baseline records)",
        )
        report.add(
            "checks: every restore tier reproduced the pre-crash "
            "accountant records bitwise; the gateway quiesced around "
            "each checkpoint so stamps are race-free."
        )
        if not (exact and still_exact):
            raise AssertionError("restored budget totals diverged")
    return report


# -- operator verbs -----------------------------------------------------------


def compact_ledger(ledger_path: str, *, archive_dir=None) -> str:
    """Offline journal rotation; prints a summary, returns the archive
    path. Safe on a crashed service's journal (heals the torn tail)."""
    from repro.serve.ledger import BudgetLedger

    before_bytes = os.path.getsize(ledger_path)
    before_lines = sum(1 for _ in open(ledger_path, "rb"))
    with BudgetLedger(ledger_path) as ledger:
        archive = ledger.compact(archive_dir=archive_dir)
    after_bytes = os.path.getsize(ledger_path)
    after_lines = sum(1 for _ in open(ledger_path, "rb"))
    print(f"compacted {ledger_path}: {before_lines} -> {after_lines} "
          f"records, {before_bytes} -> {after_bytes} bytes "
          f"({before_bytes / max(1, after_bytes):.1f}x)")
    print(f"archived old segment -> {archive}")
    return archive


def checkpoint_status(directory: str, *, ledger_path=None) -> int:
    """Recovery-readiness report for a checkpoint directory; returns 0
    when a restart would succeed from the newest checkpoint."""
    paths = discover_checkpoints(directory)
    if not paths:
        print(f"no checkpoints under {directory}"
              + (" (a restart would cold-resume from the ledger alone)"
                 if ledger_path else ""))
        return 1
    stamps = {}
    for path in paths:
        stamps[path] = checkpoint_stamp(path)
        print(f"  {os.path.basename(path)}: ledger stamp {stamps[path]}")
    newest = os.path.basename(paths[-1])
    stamp = stamps[paths[-1]]
    if ledger_path is None:
        if stamp >= 0:
            print(f"newest checkpoint {newest} is stamped at seq {stamp}; "
                  f"pass --ledger to report the replay suffix")
        return 0
    state = replay_ledger(ledger_path,
                          from_seq=stamp if stamp >= 0 else None)
    suffix = state.last_seq - stamp
    print(f"ledger {ledger_path}: last seq {state.last_seq}")
    if state.last_seq < stamp:
        print(f"ERROR: ledger ends before the newest checkpoint's stamp "
              f"({state.last_seq} < {stamp}) — wrong or truncated ledger")
        return 1
    if state.compacted_through >= stamp >= 0:
        print(f"journal was compacted at-or-after the stamp "
              f"(through seq {state.compacted_through}): restore will use "
              f"full-replay authority on the rotated (small) journal")
    else:
        print(f"a restart replays {suffix} suffix records past the "
              f"checkpoint stamp")
    return 0


__all__ = ["run_recovery_demo", "compact_ledger", "checkpoint_status"]
