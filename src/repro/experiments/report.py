"""Report formatting: ascii tables and scaling-shape fits.

The paper's evaluation is a table of asymptotic bounds, so the reproduction
prints tables too: measured series next to the paper's predicted shapes,
plus fitted power-law slopes for quantitative shape comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an ascii table with column alignment.

    Cells are stringified with ``format(cell, '.4g')`` for floats.
    """
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def fit_power_law(xs, ys) -> tuple[float, float]:
    """Fit ``y ~ c * x^slope`` by least squares in log-log space.

    Returns ``(slope, r_squared)``. Non-positive values are dropped
    (power laws are only meaningful on the positive orthant).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    keep = (xs > 0) & (ys > 0)
    xs, ys = xs[keep], ys[keep]
    if xs.size < 2:
        return float("nan"), float("nan")
    log_x, log_y = np.log(xs), np.log(ys)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(r_squared)


@dataclass
class ExperimentReport:
    """A named report accumulating sections; benches print its ``render()``."""

    name: str
    sections: list[str] = field(default_factory=list)

    def add(self, text: str) -> None:
        """Append one section (a table or paragraph)."""
        self.sections.append(text)

    def add_table(self, headers: list[str], rows: list[list],
                  title: str = "") -> None:
        """Append a formatted table section."""
        self.sections.append(format_table(headers, rows, title=title))

    def add_shape_check(self, label: str, xs, ys, expected_slope: float,
                        tolerance: float = 0.6) -> bool:
        """Fit a slope, record it against the paper's expectation.

        Returns whether ``|fitted - expected| <= tolerance`` — the loose
        criterion appropriate for noisy small-scale scaling fits.
        """
        slope, r_squared = fit_power_law(xs, ys)
        ok = bool(abs(slope - expected_slope) <= tolerance) if np.isfinite(slope) else False
        self.sections.append(
            f"shape[{label}]: fitted slope {slope:.3f} "
            f"(R^2={r_squared:.3f}), paper predicts ~{expected_slope:.3f} "
            f"-> {'OK' if ok else 'MISMATCH'}"
        )
        return ok

    def render(self) -> str:
        """The full report as text."""
        bar = "=" * max(30, len(self.name) + 10)
        body = "\n\n".join(self.sections)
        return f"{bar}\n== {self.name}\n{bar}\n{body}\n"
