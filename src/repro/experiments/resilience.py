"""E23 — resilience demo: lanes, deadlines, exactly-once retries.

Not a paper experiment but the serving-layer robustness story of
:mod:`repro.serve.resilience` in one report, in two acts:

1. **priority lanes + deadline shedding** — a lane-aware gateway under
   a flood of fresh pmw-convex queries (each a multiplicative-weights
   update) keeps cached reads on the ``"fast"`` lane with a reserved
   worker, and refuses already-unmeetable deadlines at enqueue with a
   typed :class:`~repro.exceptions.DeadlineUnmeetable`.
2. **kill + exactly-once retry** — a shard SIGKILLs itself after
   journaling a spend + answer but before replying; the
   :class:`~repro.serve.resilience.ResilientClient` retries with the
   same minted idempotency key and receives the *recorded* answer from
   the restored shard. Budget totals are asserted bitwise-equal to a
   crash-free single-process oracle run: zero double-spends.

The heavyweight, gated version of this story is
``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.data.synthetic import make_classification_dataset
from repro.exceptions import DeadlineUnmeetable
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.resilience import Deadline, ResilientClient
from repro.serve.service import PMWService
from repro.serve.shard import FaultPlan, ShardedService, read_shard_health

_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=4.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


def _open(service, sid):
    service.open_session("pmw-convex", session_id=sid, analyst=sid,
                         rng=1000 + sum(sid.encode()), **_PARAMS)


def _lane_act(task, workdir, report):
    reader, bulk = "reader", "bulk-0"
    with PMWService(task.dataset, ledger_path=f"{workdir}/lanes.jsonl",
                    ledger_fsync=False) as service:
        for sid in (reader, bulk):
            _open(service, sid)
        reads = random_quadratic_family(task.universe, 3, rng=7)
        with service.gateway(workers=2, fast_workers=1) as gateway:
            for query in reads:          # warm: first pass rides bulk
                gateway.submit(reader, query)
            for index, query in enumerate(reads * 4):
                gateway.submit(reader, query)           # cached -> fast
                gateway.submit(bulk, random_quadratic_family(
                    task.universe, 1, rng=100 + index)[0])
            shed = 0
            for index in range(3):
                lapsed = Deadline.after(1e-4)
                time.sleep(0.002)
                try:
                    gateway.submit(bulk, random_quadratic_family(
                        task.universe, 1, rng=900 + index)[0],
                        deadline=lapsed)
                except DeadlineUnmeetable:
                    shed += 1
            snapshot = gateway.metrics.snapshot()
    lanes = snapshot["queue_wait_lanes"]
    report.add_table(
        ["fast served", "fast p99 (ms)", "bulk served", "bulk p99 (ms)",
         "expired deadlines shed"],
        [[lanes["fast"]["count"], lanes["fast"]["p99_seconds"] * 1e3,
          lanes["bulk"]["count"], lanes["bulk"]["p99_seconds"] * 1e3,
          shed]],
        title="act 1 — cached reads auto-classify onto the fast lane "
              "(reserved worker); unmeetable deadlines shed at enqueue "
              "with typed DeadlineUnmeetable",
    )
    if shed != 3:
        raise AssertionError("an expired deadline was admitted")


def _retry_act(task, workdir, report):
    sid = "analyst-0"
    queries = [random_quadratic_family(task.universe, 1, rng=i)[0]
               for i in range(3)]

    with PMWService(task.dataset, ledger_path=f"{workdir}/oracle.jsonl",
                    ledger_fsync=False) as oracle:
        _open(oracle, sid)
        want = [oracle.submit(sid, q, on_halt="hypothesis").value
                for q in queries]
        oracle_records = oracle.session(sid).accountant.to_records()

    service = ShardedService(
        task.dataset, f"{workdir}/dep", shards=1, checkpoint_every=1,
        ledger_fsync=False, rng=0, auto_restore=True,
        fault_plans={"shard-00": FaultPlan(exit_before_reply=2)})
    try:
        _open(service, sid)
        client = ResilientClient(service, rng=0, max_attempts=8,
                                 base_delay=0.2, max_delay=1.0,
                                 breaker_failures=6, client_id="demo")
        got = [client.submit(sid, q, on_halt="hypothesis").value
               for q in queries]
        records = service.budget_records()[sid]
        health = read_shard_health(service.directory)["shard-00"]
    finally:
        service.close()

    exact = (records == oracle_records
             and all(np.array_equal(np.asarray(a), np.asarray(b))
                     for a, b in zip(got, want)))
    report.add_table(
        ["requests", "attempts", "retries", "deaths", "restarts",
         "breaker", "bitwise vs oracle"],
        [[client.stats["requests"], client.stats["attempts"],
          client.stats["retries"], health["deaths"], health["restarts"],
          health["breaker"], exact]],
        title="act 2 — SIGKILL after journal, before reply: the retry "
              "(same idempotency key) replays the recorded answer; "
              "budget totals match a crash-free oracle run bitwise",
    )
    if not exact:
        raise AssertionError("retried run diverged from the oracle")


def run_resilience_demo(*, rng=1) -> ExperimentReport:
    """Lanes + deadline shedding, then kill + exactly-once retry."""
    report = ExperimentReport(
        "E23 resilience: priority lanes, deadline shedding, "
        "exactly-once retries")
    task = make_classification_dataset(n=500, d=3, universe_size=80,
                                       rng=int(rng))
    with tempfile.TemporaryDirectory(prefix="resilience-demo-") as workdir:
        _lane_act(task, workdir, report)
        _retry_act(task, workdir, report)
    report.add(
        "checks: every expired deadline shed at enqueue with a typed "
        "error; the mid-reply kill was retried under the same "
        "idempotency key and produced bitwise-oracle answers and "
        "budget records (zero double-spends)."
    )
    return report


__all__ = ["run_resilience_demo"]
