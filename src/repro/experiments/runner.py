"""Trial averaging for stochastic experiments.

Mechanisms are randomized, so every reported number is a mean over seeded
independent trials with its spread. :func:`run_trials` owns the seeding
discipline: trial ``i`` receives a child generator derived from the master
seed, so adding trials never perturbs earlier ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class TrialStats:
    """Summary statistics of a repeated scalar measurement."""

    mean: float
    std: float
    minimum: float
    maximum: float
    trials: int
    values: tuple

    def __format__(self, spec: str) -> str:
        spec = spec or ".4g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def run_trials(experiment: Callable[[np.random.Generator], float],
               trials: int = 5, rng=0) -> TrialStats:
    """Run ``experiment(generator)`` over independent seeded trials.

    ``experiment`` must return a scalar measurement; the master ``rng``
    seeds one child generator per trial.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    generators = spawn_generators(rng, trials)
    values = [float(experiment(generator)) for generator in generators]
    array = np.asarray(values)
    return TrialStats(
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
        trials=trials,
        values=tuple(values),
    )
