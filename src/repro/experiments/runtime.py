"""E11: running-time profile (Section 4.3).

The paper's complexity discussion: each round costs (1) sparse vector —
poly(n, d), (2) a single-query oracle call — poly(n, d), (3) the histogram
update — O(|X|); the |X| dependence is inherent. We measure per-round
wall-clock as |X| grows and check the polynomial shape.
"""

from __future__ import annotations

import time

from repro.core.pmw_cm import PrivateMWConvex
from repro.data.synthetic import make_classification_dataset
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.experiments.report import ExperimentReport, fit_power_law
from repro.losses.families import random_logistic_family
from repro.utils.rng import as_generator


def run_runtime_profile(*, universe_sizes=(100, 400, 1600), d: int = 3,
                        n: int = 20_000, k: int = 10,
                        rng=0) -> ExperimentReport:
    """Wall-clock per query vs |X| for the full mechanism.

    Uses planted classification data (so updates actually occur and the
    |X|-dependent update step is exercised). Expect roughly linear growth
    in |X|: every inner minimization is a vectorized pass over the
    universe — the paper's poly(|X|) model, whose sub-|X| improvement is
    cryptographically hard (Section 4.3).
    """
    report = ExperimentReport("E11 running time vs |X| (Sec 4.3)")
    master = as_generator(rng)
    rows, sizes, per_query_times = [], [], []
    for base_size in universe_sizes:
        generator = as_generator(int(master.integers(2**31)))
        task = make_classification_dataset(n=n, d=d, universe_size=base_size,
                                           rng=generator)
        losses = random_logistic_family(task.universe, k, rng=generator)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6,
                                            steps=30)
        mechanism = PrivateMWConvex(
            task.dataset, oracle, scale=2.0, alpha=0.15, epsilon=1.0,
            delta=1e-6, schedule="calibrated", max_updates=10,
            solver_steps=150, rng=generator,
        )
        start = time.perf_counter()
        mechanism.answer_all(losses, on_halt="hypothesis")
        elapsed = time.perf_counter() - start
        per_query = elapsed / k
        sizes.append(task.universe.size)
        per_query_times.append(per_query)
        rows.append([task.universe.size, f"{elapsed:.3f}",
                     f"{per_query * 1e3:.1f}", mechanism.updates_performed])
    report.add_table(
        ["|X|", "total sec", "ms/query", "updates"], rows,
        title=f"logistic queries, n={n}, k={k}, d={d}",
    )
    slope, r2 = fit_power_law(sizes, per_query_times)
    report.add(
        f"per-query time vs |X| slope: {slope:.2f} (R^2={r2:.2f}); the "
        f"paper's model predicts polynomial (≈linear here, since every "
        f"step is one vectorized pass over the universe)."
    )
    return report
