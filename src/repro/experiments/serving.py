"""E14 — gateway load demo: coalescing, admission control, metrics.

Not a paper experiment but a serving-layer diagnostic: drive a burst of
concurrent analysts through a :class:`~repro.serve.gateway.ServiceGateway`
and print the :class:`~repro.serve.metrics.GatewayMetrics` snapshot —
the JSON document an operator's dashboard would poll. The run also
exercises admission control (a deliberately tight queue bound sheds part
of a second burst) so the shed counters are non-trivial.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.data.synthetic import make_classification_dataset
from repro.exceptions import Overloaded
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.service import PMWService


def run_gateway_demo(*, analysts: int = 8, queries_per_analyst: int = 10,
                     rng=0) -> ExperimentReport:
    """Serve a concurrent burst through the gateway and report metrics."""
    task = make_classification_dataset(n=600, d=3, universe_size=80,
                                       rng=rng)
    service = PMWService(task.dataset, rng=np.random.default_rng(rng))
    sessions = [
        service.open_session(
            "pmw-convex", analyst=f"analyst-{index}", oracle="non-private",
            scale=4.0, alpha=0.4, epsilon=2.0, delta=1e-6, max_updates=4,
            solver_steps=40,
        )
        for index in range(analysts)
    ]
    losses = random_quadratic_family(task.universe, queries_per_analyst,
                                     rng=rng + 1)

    shed_count = 0
    with service.gateway(workers=4, max_queue_depth=queries_per_analyst,
                         max_coalesce=queries_per_analyst) as gateway:
        # Burst 1: every analyst floods its full stream at once — the
        # coalescer merges each queue into engine-prewarmed batches.
        futures = []

        def flood(sid):
            for loss in losses:
                futures.append(gateway.submit_async(sid, loss))

        threads = [threading.Thread(target=flood, args=(sid,))
                   for sid in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [future.result(timeout=60) for future in list(futures)]

        # Burst 2: overload one session's queue past its depth bound so
        # admission control sheds (duplicate queries: the survivors are
        # free cache replays).
        target = sessions[0]
        for _ in range(3 * queries_per_analyst):
            try:
                futures.append(gateway.submit_async(target, losses[0]))
            except Overloaded:
                shed_count += 1
        gateway.drain()
        snapshot = gateway.metrics.snapshot()
        description = gateway.metrics.describe()
        metrics_json = gateway.metrics.to_json()

    report = ExperimentReport(
        "E14 gateway load demo (coalescing + admission control)")
    report.add(
        f"{analysts} analysts x {queries_per_analyst} queries flooded "
        f"concurrently, then one session overloaded with "
        f"{3 * queries_per_analyst} duplicate submissions."
    )
    report.add_table(
        ["submitted", "completed", "shed(overload)", "batches",
         "coalesced batches", "coalesced requests", "cache hits"],
        [[snapshot["submitted"], snapshot["completed"],
          snapshot["shed"]["overload"], snapshot["batches"],
          snapshot["coalesced_batches"], snapshot["coalesced_requests"],
          snapshot["sources"].get("cache", 0)]],
        title="gateway counters",
    )
    report.add_table(
        ["stage", "p50 (ms)", "p99 (ms)", "max (ms)"],
        [[stage,
          snapshot[stage]["p50_seconds"] * 1e3,
          snapshot[stage]["p99_seconds"] * 1e3,
          snapshot[stage]["max_seconds"] * 1e3]
         for stage in ("queue_wait", "end_to_end")],
        title="latency histograms (bucketed upper-edge estimates)",
    )
    report.add(description)
    report.add("metrics snapshot (JSON):\n" + metrics_json)

    paid = sum(1 for result in results if not result.free)
    report.add(
        f"checks: {len(results)} answers delivered, {paid} paid rounds, "
        f"{shed_count} submissions shed by admission control "
        f"(every shed happened before any mechanism state was touched)."
    )
    return report


__all__ = ["run_gateway_demo"]
