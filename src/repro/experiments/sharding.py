"""E22 — sharded-failover demo, plus the `shards` CLI verb.

Not a paper experiment but the serving-layer story of
:mod:`repro.serve.shard` in one report: spin up a multi-process
deployment, route analyst sessions across shards by consistent hash,
SIGKILL one shard mid-run, let the supervisor auto-restore it from
checkpoint + journal suffix, and assert the per-session budget totals
are bitwise what replaying each shard's write-ahead journal produces.

The module also backs the ``shards`` operator verb of ``python -m
repro.experiments``::

    # failover readiness of a sharded deployment directory
    python -m repro.experiments shards --dir /var/lib/repro/deploy

which reports the pinned topology and, per shard, checkpoint
generations, stamps, how much journal a restart would replay, and the
supervisor's persisted circuit-breaker health (state, death/restart
counts, last-death timestamp) — exiting nonzero when any breaker is
open, so the verb can gate a deploy script.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.data.synthetic import make_classification_dataset
from repro.experiments.report import ExperimentReport
from repro.losses.families import random_quadratic_family
from repro.serve.checkpoint import checkpoint_stamp, discover_checkpoints
from repro.serve.ledger import replay_ledger
from repro.serve.shard import ShardedService, read_shard_health
from repro.serve.shard.worker import CHECKPOINT_DIR, LEDGER_NAME


def run_sharding_demo(*, shards: int = 2, analysts: int = 4,
                      rounds: int = 2, rng=0) -> ExperimentReport:
    """Kill and restore a shard mid-run; report routing and exactness."""
    report = ExperimentReport(
        "E22 session sharding: consistent-hash routing + shard failover")
    task = make_classification_dataset(n=600, d=3, universe_size=80,
                                       rng=int(rng))
    with tempfile.TemporaryDirectory(prefix="sharding-demo-") as workdir:
        with ShardedService(task.dataset, workdir, shards=shards,
                            checkpoint_every=2, ledger_fsync=False,
                            rng=int(rng), auto_restore=True) as service:
            sids = [
                service.open_session(
                    "pmw-convex", session_id=f"analyst-{index}",
                    analyst=f"analyst-{index}", rng=1000 + index,
                    oracle="non-private", scale=4.0, alpha=0.4,
                    epsilon=2.0, delta=1e-6, max_updates=4,
                    solver_steps=40)
                for index in range(analysts)
            ]
            placement = {sid: service.shard_of(sid) for sid in sids}
            victim = placement[sids[0]]

            served = 0
            started = time.perf_counter()
            for round_index in range(rounds):
                for sid in sids:
                    queries = random_quadratic_family(
                        task.universe, 2, rng=round_index * 100 + served)
                    service.serve_session_batch(sid, queries)
                    served += len(queries)
            serve_seconds = time.perf_counter() - started

            kill_started = time.perf_counter()
            service.kill_shard(victim)
            service.wait_alive(victim)
            restore_seconds = time.perf_counter() - kill_started

            # Post-restore traffic proves the new worker serves.
            for sid in sids:
                queries = random_quadratic_family(task.universe, 2,
                                                  rng=9000 + served)
                service.serve_session_batch(sid, queries)
                served += len(queries)

            records = service.budget_records()
            exact = True
            for shard_id in service.shard_ids:
                ledger_path = os.path.join(service.shard_dir(shard_id),
                                           LEDGER_NAME)
                state = replay_ledger(ledger_path)
                for sid in state.session_ids:
                    if (state.accountant_for(sid).to_records()
                            != records[sid]):
                        exact = False
            snapshot = service.metrics_snapshot()
            counters = {
                (record["name"], record["labels"].get("shard")):
                    record["value"]
                for record in snapshot["counters"]
            }

        per_shard = {shard_id: sum(1 for owner in placement.values()
                                   if owner == shard_id)
                     for shard_id in sorted(set(placement.values()))}
        report.add_table(
            ["shards", "analysts", "placement", "victim"],
            [[shards, analysts,
              ", ".join(f"{k}:{v}" for k, v in per_shard.items()),
              victim]],
            title="consistent-hash session routing (pure function of "
                  "session id + pinned topology)",
        )
        report.add_table(
            ["queries served", "serve (s)", "deaths", "restarts",
             "restore (ms)", "totals bitwise-exact"],
            [[served, serve_seconds,
              counters.get(("shard.deaths", victim), 0),
              counters.get(("shard.restarts", victim), 0),
              restore_seconds * 1e3, exact]],
            title="SIGKILL + auto-restore: the shard came back from "
                  "checkpoint + journal suffix and kept serving",
        )
        report.add(
            "checks: every session's accountant is bitwise equal to a "
            "replay of its shard's write-ahead journal, across a kill "
            "and an automatic restore."
        )
        if not exact:
            raise AssertionError("restored shard budget totals diverged")
    return report


# -- operator verb ------------------------------------------------------------


def _health_summary(health: dict) -> str:
    """One human line of breaker + death accounting for a shard."""
    breaker = health.get("breaker", "unknown")
    parts = [f"breaker {breaker}"]
    deaths = health.get("deaths", 0)
    if deaths:
        parts.append(f"{deaths} death(s)")
        last = health.get("last_death_unix")
        if last is not None:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(last))
            parts.append(f"last died {stamp}")
    restarts = health.get("restarts", 0)
    if restarts:
        parts.append(f"{restarts} restart(s)")
    return ", ".join(parts)


def shard_status(directory: str) -> int:
    """Failover-readiness report for a sharded deployment directory;
    returns 0 when every shard could restore from its newest checkpoint
    (or cold-resume from its journal alone) **and** no supervisor-side
    circuit breaker is open — an open breaker means the supervisor saw
    the shard die and it has not come back, so the deployment is
    serving degraded."""
    topology_path = os.path.join(directory, "topology.json")
    if not os.path.exists(topology_path):
        print(f"no topology.json under {directory} — not a sharded "
              f"deployment directory")
        return 1
    with open(topology_path, encoding="utf-8") as handle:
        topology = json.load(handle)
    shard_ids = topology.get("shards", [])
    health = read_shard_health(directory)
    print(f"topology: {len(shard_ids)} shards x "
          f"{topology.get('vnodes')} vnodes ({topology.get('format')})")
    status = 0
    for shard_id in shard_ids:
        shard_dir = os.path.join(directory, shard_id)
        ledger_path = os.path.join(shard_dir, LEDGER_NAME)
        checkpoint_dir = os.path.join(shard_dir, CHECKPOINT_DIR)
        shard_health = health.get(shard_id, {})
        summary = _health_summary(shard_health)
        if shard_health.get("breaker") == "open":
            status = 1
        if not os.path.isdir(shard_dir):
            print(f"  {shard_id}: never started (no directory)")
            continue
        paths = discover_checkpoints(checkpoint_dir) \
            if os.path.isdir(checkpoint_dir) else []
        stamp = checkpoint_stamp(paths[-1]) if paths else -1
        if not os.path.exists(ledger_path):
            print(f"  {shard_id}: {len(paths)} checkpoint(s), no journal"
                  f" — {summary}")
            continue
        state = replay_ledger(ledger_path)
        suffix = state.last_seq - stamp if stamp >= 0 else state.last_seq
        if state.last_seq < stamp:
            print(f"  {shard_id}: ERROR — journal ends before the newest "
                  f"checkpoint stamp ({state.last_seq} < {stamp})")
            status = 1
            continue
        print(f"  {shard_id}: {len(state.session_ids)} session(s), "
              f"journal seq {state.last_seq}, {len(paths)} checkpoint(s)"
              + (f", restart replays {suffix} suffix record(s)"
                 if paths else ", cold-resume from journal alone")
              + f" — {summary}")
    if status and any(h.get("breaker") == "open" for h in health.values()):
        print("DEGRADED: at least one circuit breaker is open (a shard "
              "died and was not restored)")
    return status


__all__ = ["run_sharding_demo", "shard_status"]
