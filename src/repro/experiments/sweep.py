"""Parameter sweeps.

A sweep maps a parameter grid through an experiment function and collects
labeled records; the report module turns records into tables and fitted
scaling exponents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.runner import TrialStats, run_trials


@dataclass(frozen=True)
class SweepResult:
    """The records of one parameter sweep."""

    parameter: str
    records: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Extract one column across records."""
        return [record[key] for record in self.records]

    def series(self, value_key: str = "stats") -> tuple[list, list]:
        """``(parameter values, measurement means)`` for shape fitting."""
        xs = self.column(self.parameter)
        ys = []
        for record in self.records:
            value = record[value_key]
            ys.append(value.mean if isinstance(value, TrialStats) else float(value))
        return xs, ys


def sweep(parameter: str, values, experiment: Callable[..., float], *,
          trials: int = 3, rng=0, extra: dict | None = None) -> SweepResult:
    """Sweep ``parameter`` over ``values``; each point averaged over trials.

    ``experiment(value, generator)`` returns a scalar. ``extra`` is merged
    into every record (fixed workload parameters, for the report header).
    """
    records = []
    for offset, value in enumerate(values):
        stats = run_trials(
            lambda generator, v=value: experiment(v, generator),
            trials=trials,
            rng=(rng + 7919 * offset if isinstance(rng, int) else rng),
        )
        record = {parameter: value, "stats": stats}
        if extra:
            record.update(extra)
        records.append(record)
    return SweepResult(parameter=parameter, records=records)
