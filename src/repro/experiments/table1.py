"""Table 1 experiments (E1-E4): one driver per row of the paper's table.

The paper's evaluation is Table 1 — sample-complexity bounds for four loss
families, single-query vs k-query. Each driver here measures the empirical
counterparts at laptop scale and checks the *shapes* the bounds predict:

- E1 linear row: PMW answers k linear queries with error growing only
  polylogarithmically in k, while per-query Laplace under composition
  degrades like ``sqrt(k)``.
- E2 Lipschitz row: the BST14-style oracle's single-query error grows like
  ``sqrt(d)``; PMW-CM turns it into k-query answers whose error is flat in
  ``k``; error decreases with ``n``.
- E3 UGLM row: the JT14-style GLM oracle's error is flat in ``d`` where
  the generic oracle's grows ``~sqrt(d)``.
- E4 strongly convex row: with ``sigma``-strong convexity the oracle error
  improves with ``sigma`` and decays faster in ``n``.

All runs use genuinely private parameters (noise_multiplier = 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.pmw_linear import PrivateMWLinear
from repro.core import theory
from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.dp.composition import per_round_budget
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.experiments.report import ExperimentReport, fit_power_law
from repro.experiments.runner import run_trials
from repro.experiments.workloads import (
    classification_workload,
    pmw_max_error,
    single_query_excess,
)
from repro.losses.families import (
    random_halfspace_queries,
    random_logistic_family,
    random_ridge_family,
    random_squared_family,
)
from repro.utils.rng import as_generator


# ---------------------------------------------------------------------------
# E1 — Table 1 row "Linear Queries"
# ---------------------------------------------------------------------------

def run_linear_row(*, n: int = 20_000, cube_dim: int = 6,
                   ks=(16, 64, 256, 1024, 4096), alpha: float = 0.1,
                   epsilon: float = 1.0, delta: float = 1e-6,
                   max_updates: int = 24, trials: int = 3,
                   rng=0) -> ExperimentReport:
    """E1: max error of PMW vs per-query Laplace as k grows.

    Paper prediction (row 1): PMW needs ``n ~ sqrt(log|X|) log k / alpha^2``
    — error at fixed ``n`` grows ~``log k`` (power-law slope ~0), while the
    composition baseline's error grows like ``sqrt(k)`` (slope ~0.5).
    """
    report = ExperimentReport("E1 Table1[linear]: PMW vs composition in k")
    universe = signed_cube(cube_dim)
    master = as_generator(rng)
    skew = master.dirichlet(np.full(universe.size, 0.4))

    rows = []
    pmw_errors, laplace_errors = [], []
    for k in ks:
        def one_trial(generator, k=k):
            dataset = Dataset(universe, generator.choice(
                universe.size, size=n, p=skew))
            queries = random_halfspace_queries(universe, k, rng=generator)
            mechanism = PrivateMWLinear(
                dataset, alpha=alpha, epsilon=epsilon, delta=delta,
                schedule="calibrated", max_updates=max_updates, rng=generator,
            )
            answers = mechanism.answer_all(queries, on_halt="hypothesis")
            data = dataset.histogram()
            return max(
                abs(q.answer(data) - a.value)
                for q, a in zip(queries, answers)
            )

        def laplace_trial(generator, k=k):
            dataset = Dataset(universe, generator.choice(
                universe.size, size=n, p=skew))
            queries = random_halfspace_queries(universe, k, rng=generator)
            per_call = per_round_budget(epsilon, delta, k)
            data = dataset.histogram()
            return max(
                abs(float(generator.laplace(
                    0.0, 1.0 / (n * per_call.epsilon)
                )))
                for _ in queries
            )

        pmw_stats = run_trials(one_trial, trials=trials, rng=int(master.integers(2**31)))
        lap_stats = run_trials(laplace_trial, trials=trials,
                               rng=int(master.integers(2**31)))
        pmw_errors.append(pmw_stats.mean)
        laplace_errors.append(lap_stats.mean)
        rows.append([k, f"{pmw_stats:.3g}", f"{lap_stats:.3g}",
                     theory.k_query_n("linear", alpha=alpha, k=k,
                                      universe_size=universe.size)])
    report.add_table(
        ["k", "PMW max err", "Laplace-composition max err", "paper n-shape"],
        rows, title=f"linear queries on {universe.name}, n={n}, eps={epsilon}",
    )
    report.add_shape_check("pmw error vs k", ks, pmw_errors,
                           expected_slope=theory.pmw_error_exponent(),
                           tolerance=0.35)
    report.add_shape_check("laplace error vs k", ks, laplace_errors,
                           expected_slope=theory.composition_error_exponent(),
                           tolerance=0.35)
    return report


# ---------------------------------------------------------------------------
# E2 — Table 1 row "Lipschitz, d-Bounded"
# ---------------------------------------------------------------------------

def run_lipschitz_row(*, dims=(4, 8, 16, 32), ns=(4_000, 32_000, 256_000),
                      d_fixed: int = 4, k: int = 30,
                      alpha_grid=(0.4, 0.3, 0.22, 0.16, 0.12, 0.09, 0.06),
                      epsilon: float = 1.0, delta: float = 1e-6,
                      trials: int = 2, rng=0) -> ExperimentReport:
    """E2: Lipschitz d-bounded losses (GLM families, noisy-GD oracle).

    Measures (a) single-query oracle excess risk vs ``d`` at a tight
    budget, on squared losses whose reference optimum is exact (paper:
    n ~ sqrt(d)/alpha, so error at fixed n grows ~sqrt(d)); (b) the
    smallest accuracy target ``alpha`` the k-query mechanism achieves as
    ``n`` grows (Table 1 semantics: n needed for a given alpha; expect
    achievable alpha to shrink with n).
    """
    report = ExperimentReport("E2 Table1[lipschitz]: sqrt(d) oracle, n-decay PMW")
    master = as_generator(rng)

    # (a) single-query oracle error vs d. A small epsilon makes the DP
    # noise dominate the optimization floor; the squared loss's exact
    # minimizer removes reference-solver error from the measurement.
    oracle_rows, oracle_errors = [], []
    for d in dims:
        def trial(generator, d=d):
            task = make_classification_dataset(n=20_000, d=d,
                                               universe_size=150,
                                               rng=generator)
            loss = random_squared_family(task.universe, 1, rng=generator)[0]
            oracle = NoisyGradientDescentOracle(epsilon=0.3, delta=delta,
                                                steps=60)
            return single_query_excess(loss, task.dataset, oracle,
                                       rng=generator)

        stats = run_trials(trial, trials=trials, rng=int(master.integers(2**31)))
        oracle_errors.append(stats.mean)
        oracle_rows.append([d, f"{stats:.3g}",
                            theory.single_query_n("lipschitz", alpha=0.25,
                                                  d=d)])
    report.add_table(["d", "oracle excess risk", "paper n-shape (sqrt(d)/a)"],
                     oracle_rows,
                     title="single-query noisy-GD oracle (BST14 stand-in), "
                           "eps=0.3")
    report.add_shape_check("oracle error vs d", dims, oracle_errors,
                           expected_slope=0.5, tolerance=0.5)

    # (b) smallest achievable alpha vs n for the k-query mechanism.
    pmw_rows, achieved = [], []
    for n in ns:
        def trial(generator, n=n):
            workload = classification_workload(
                n=n, d=d_fixed, k=k, family_builder=random_logistic_family,
                universe_size=150, rng=generator,
            )
            oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=delta,
                                                steps=40)
            best = float(alpha_grid[0])
            for alpha in alpha_grid:
                error, _ = pmw_max_error(workload, oracle, alpha=alpha,
                                         epsilon=epsilon, delta=delta,
                                         max_updates=25, rng=generator)
                if error <= alpha:
                    best = alpha
                else:
                    break
            return best

        stats = run_trials(trial, trials=trials, rng=int(master.integers(2**31)))
        achieved.append(stats.mean)
        pmw_rows.append([n, f"{stats:.3g}"])
    report.add_table(["n", "smallest achieved alpha"], pmw_rows,
                     title=f"PMW-CM, k={k} logistic queries, d={d_fixed}")
    slope, r2 = fit_power_law(ns, achieved)
    report.add(
        f"achievable alpha-vs-n slope: {slope:.3f} (R^2={r2:.3f}); "
        f"Theorem 3.8's n ~ 1/alpha^2 predicts alpha ~ n^(-1/2) until the "
        f"oracle/solver floor."
    )
    return report


# ---------------------------------------------------------------------------
# E3 — Table 1 row "UGLM"
# ---------------------------------------------------------------------------

def run_uglm_row(*, dims=(4, 8, 16, 32), n: int = 20_000,
                 epsilon: float = 0.3, delta: float = 1e-6,
                 trials: int = 2, rng=0) -> ExperimentReport:
    """E3: the GLM oracle's dimension-independence (JT14, Theorem 4.3).

    Paper prediction: the generic Lipschitz oracle needs ``n ~ sqrt(d)``
    while the UGLM oracle's requirement is dimension-free — so at fixed
    ``n`` the generic oracle's error grows with ``d`` and the GLM oracle's
    stays flat.
    """
    report = ExperimentReport("E3 Table1[uglm]: dimension-independent GLM oracle")
    master = as_generator(rng)
    generic_errors, glm_errors, rows = [], [], []
    for d in dims:
        def generic_trial(generator, d=d):
            task = make_classification_dataset(n=n, d=d, universe_size=150,
                                               rng=generator)
            loss = random_logistic_family(task.universe, 1, rng=generator)[0]
            oracle = NoisyGradientDescentOracle(epsilon=epsilon, delta=delta,
                                                steps=50)
            return single_query_excess(loss, task.dataset, oracle,
                                       rng=generator)

        def glm_trial(generator, d=d):
            task = make_classification_dataset(n=n, d=d, universe_size=150,
                                               rng=generator)
            loss = random_logistic_family(task.universe, 1, rng=generator)[0]
            oracle = GLMProjectionOracle(epsilon=epsilon, delta=delta,
                                         projection_dim=6, steps=50)
            return single_query_excess(loss, task.dataset, oracle,
                                       rng=generator)

        generic = run_trials(generic_trial, trials=trials,
                             rng=int(master.integers(2**31)))
        glm = run_trials(glm_trial, trials=trials,
                         rng=int(master.integers(2**31)))
        generic_errors.append(generic.mean)
        glm_errors.append(glm.mean)
        rows.append([d, f"{generic:.3g}", f"{glm:.3g}"])
    report.add_table(
        ["d", "generic oracle excess", "GLM-projection oracle excess"],
        rows, title=f"logistic single query, n={n}, eps={epsilon}",
    )
    generic_slope, _ = fit_power_law(dims, generic_errors)
    glm_slope, _ = fit_power_law(dims, glm_errors)
    report.add(
        f"error-vs-d slopes: generic {generic_slope:.3f} (paper ~0.5), "
        f"GLM {glm_slope:.3f} (paper ~0, dimension-independent)."
    )
    return report


# ---------------------------------------------------------------------------
# E4 — Table 1 row "Strongly Convex"
# ---------------------------------------------------------------------------

def run_strongly_convex_row(*, sigmas=(0.25, 0.5, 1.0, 2.0),
                            ns=(2_000, 8_000, 32_000), n_fixed: int = 20_000,
                            d: int = 4, k: int = 30, alpha: float = 0.25,
                            epsilon: float = 1.0, delta: float = 1e-6,
                            trials: int = 2, rng=0) -> ExperimentReport:
    """E4: sigma-strongly-convex losses (ridge family, output perturbation).

    Paper prediction (Theorem 4.5): single-query error improves with
    ``sigma`` and decays faster in ``n`` than the merely-Lipschitz case;
    the k-query mechanism (Theorem 4.6) inherits the oracle improvement.
    """
    report = ExperimentReport("E4 Table1[strongly convex]: sigma and n scaling")
    master = as_generator(rng)

    # (a) oracle error vs sigma at fixed n.
    sigma_rows, sigma_errors = [], []
    for sigma in sigmas:
        def trial(generator, sigma=sigma):
            task = make_classification_dataset(n=n_fixed, d=d,
                                               universe_size=150,
                                               rng=generator)
            loss = random_ridge_family(task.universe, 1, lam=sigma,
                                       rng=generator)[0]
            oracle = OutputPerturbationOracle(epsilon=0.3, delta=delta)
            return single_query_excess(loss, task.dataset, oracle,
                                       rng=generator)

        stats = run_trials(trial, trials=trials, rng=int(master.integers(2**31)))
        sigma_errors.append(stats.mean)
        sigma_rows.append([sigma, f"{stats:.3g}",
                           theory.single_query_n("strongly_convex",
                                                 alpha=alpha, d=d,
                                                 sigma=sigma)])
    report.add_table(["sigma", "oracle excess risk", "paper n-shape"],
                     sigma_rows,
                     title=f"output perturbation, n={n_fixed}, d={d}")
    sigma_slope, _ = fit_power_law(sigmas, sigma_errors)
    report.add(
        f"error-vs-sigma slope: {sigma_slope:.3f} (negative = improves "
        f"with strong convexity; output perturbation predicts ~ -1)."
    )

    # (b) oracle error vs n.
    n_rows, n_errors = [], []
    for n in ns:
        def trial(generator, n=n):
            task = make_classification_dataset(n=n, d=d, universe_size=150,
                                               rng=generator)
            loss = random_ridge_family(task.universe, 1, lam=1.0,
                                       rng=generator)[0]
            oracle = OutputPerturbationOracle(epsilon=0.3, delta=delta)
            return single_query_excess(loss, task.dataset, oracle,
                                       rng=generator)

        stats = run_trials(trial, trials=trials, rng=int(master.integers(2**31)))
        n_errors.append(stats.mean)
        n_rows.append([n, f"{stats:.3g}"])
    report.add_table(["n", "oracle excess risk"], n_rows,
                     title="output perturbation vs n (sigma=1)")
    n_slope, _ = fit_power_law(ns, n_errors)
    report.add(
        f"error-vs-n slope: {n_slope:.3f} (output perturbation's excess "
        f"risk ~ n^-2 from the squared noise; merely-Lipschitz row decays "
        f"only ~ n^-1)."
    )

    # (c) k-query PMW with the strongly convex family.
    def pmw_trial(generator):
        workload = classification_workload(
            n=n_fixed, d=d, k=k,
            family_builder=lambda u, kk, rng: random_ridge_family(
                u, kk, lam=1.0, rng=rng),
            universe_size=150, rng=generator,
        )
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=delta)
        error, updates = pmw_max_error(workload, oracle, alpha=alpha,
                                       epsilon=epsilon, delta=delta,
                                       max_updates=25, rng=generator)
        return error

    stats = run_trials(pmw_trial, trials=trials, rng=int(master.integers(2**31)))
    report.add(
        f"PMW-CM over k={k} ridge queries (sigma=1, n={n_fixed}): max "
        f"excess risk {stats:.4g} (target alpha={alpha})."
    )
    return report
