"""Shared workload builders for the Table 1 experiments.

Each builder returns a dataset + query family sized for laptop-scale runs
with *genuinely private* parameters: the sample size ``n`` is chosen large
enough that the sparse-vector and oracle noise are small relative to the
accuracy targets (cheap here, because all mechanism-side computation is
histogram-based and independent of ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
)
from repro.data.universe import Universe
from repro.erm.oracle import SingleQueryOracle
from repro.core.pmw_cm import PrivateMWConvex
from repro.core.accuracy import answer_error
from repro.losses.base import LossFunction
from repro.optimize.minimize import minimize_loss


@dataclass(frozen=True)
class Workload:
    """A dataset plus a loss family and the family's scale bound."""

    dataset: Dataset
    universe: Universe
    losses: list
    scale: float
    description: str


def classification_workload(n: int, d: int, k: int, family_builder, *,
                            universe_size: int = 200, rng=0,
                            description: str = "") -> Workload:
    """Classification data + a ``family_builder(universe, k, rng)`` family."""
    task = make_classification_dataset(n=n, d=d, universe_size=universe_size,
                                       rng=rng)
    losses = family_builder(task.universe, k, rng=rng)
    scale = max(loss.scale_bound() for loss in losses)
    return Workload(dataset=task.dataset, universe=task.universe,
                    losses=losses, scale=scale,
                    description=description or f"classification(n={n}, d={d})")


def regression_workload(n: int, d: int, k: int, family_builder, *,
                        universe_size: int = 200, rng=0,
                        description: str = "") -> Workload:
    """Regression data + a loss family."""
    task = make_regression_dataset(n=n, d=d, universe_size=universe_size,
                                   rng=rng)
    losses = family_builder(task.universe, k, rng=rng)
    scale = max(loss.scale_bound() for loss in losses)
    return Workload(dataset=task.dataset, universe=task.universe,
                    losses=losses, scale=scale,
                    description=description or f"regression(n={n}, d={d})")


def pmw_max_error(workload: Workload, oracle: SingleQueryOracle, *,
                  alpha: float, epsilon: float = 1.0, delta: float = 1e-6,
                  max_updates: int | None = 30, solver_steps: int = 200,
                  rng=None) -> tuple[float, int]:
    """Run PMW-CM over the whole workload; return (max excess risk, #updates).

    Uses ``on_halt="hypothesis"`` so an exhausted update budget degrades
    gracefully instead of aborting the measurement (the halt is reflected
    in higher measured error, which is the honest outcome).
    """
    mechanism = PrivateMWConvex(
        workload.dataset, oracle, scale=workload.scale, alpha=alpha,
        epsilon=epsilon, delta=delta, schedule="calibrated",
        max_updates=max_updates, solver_steps=solver_steps, rng=rng,
    )
    answers = mechanism.answer_all(workload.losses, on_halt="hypothesis")
    data = workload.dataset.histogram()
    worst = 0.0
    for loss, answer in zip(workload.losses, answers):
        worst = max(worst, answer_error(loss, data, answer.theta,
                                        solver_steps=solver_steps))
    return worst, mechanism.updates_performed


def family_max_error(losses, data, thetas, *, solver_steps: int = 200) -> float:
    """Max excess risk of precomputed answers over a family."""
    worst = 0.0
    for loss, theta in zip(losses, thetas):
        worst = max(worst, answer_error(loss, data, theta,
                                        solver_steps=solver_steps))
    return worst


def single_query_excess(loss: LossFunction, dataset: Dataset,
                        oracle: SingleQueryOracle, *, rng=None,
                        solver_steps: int = 300) -> float:
    """Excess empirical risk of one oracle call (for the E9 sweeps)."""
    histogram = dataset.histogram()
    optimum = minimize_loss(loss, histogram, steps=solver_steps).value
    theta = oracle.answer(loss, dataset, rng=rng)
    return max(0.0, float(loss.loss_on(np.asarray(theta, dtype=float),
                                       histogram)) - optimum)
