"""Shared workload builders for the Table 1 experiments.

Each builder returns a dataset + query family sized for laptop-scale runs
with *genuinely private* parameters: the sample size ``n`` is chosen large
enough that the sparse-vector and oracle noise are small relative to the
accuracy targets (cheap here, because all mechanism-side computation is
histogram-based and independent of ``n``).

:func:`large_universe_workload` is the exception to "laptop-scale": it
builds a linear-query workload over a universe big enough that the dense
hypothesis path stops being the right default, and
:func:`sharded_linear_max_error` runs it end to end through
:class:`~repro.core.pmw_linear.PrivateMWLinear` with a sharded hypothesis
(:class:`~repro.data.sharded.ShardedHistogram`) and the batched
evaluation engine (:mod:`repro.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.builders import interval_grid
from repro.data.dataset import Dataset
from repro.data.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
)
from repro.data.universe import Universe
from repro.erm.oracle import SingleQueryOracle
from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.core.accuracy import answer_error
from repro.losses.base import LossFunction
from repro.losses.linear import LinearQuery
from repro.optimize.minimize import minimize_loss
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Workload:
    """A dataset plus a loss family and the family's scale bound."""

    dataset: Dataset
    universe: Universe
    losses: list
    scale: float
    description: str


def classification_workload(n: int, d: int, k: int, family_builder, *,
                            universe_size: int = 200, rng=0,
                            description: str = "") -> Workload:
    """Classification data + a ``family_builder(universe, k, rng)`` family."""
    task = make_classification_dataset(n=n, d=d, universe_size=universe_size,
                                       rng=rng)
    losses = family_builder(task.universe, k, rng=rng)
    scale = max(loss.scale_bound() for loss in losses)
    return Workload(dataset=task.dataset, universe=task.universe,
                    losses=losses, scale=scale,
                    description=description or f"classification(n={n}, d={d})")


def regression_workload(n: int, d: int, k: int, family_builder, *,
                        universe_size: int = 200, rng=0,
                        description: str = "") -> Workload:
    """Regression data + a loss family."""
    task = make_regression_dataset(n=n, d=d, universe_size=universe_size,
                                   rng=rng)
    losses = family_builder(task.universe, k, rng=rng)
    scale = max(loss.scale_bound() for loss in losses)
    return Workload(dataset=task.dataset, universe=task.universe,
                    losses=losses, scale=scale,
                    description=description or f"regression(n={n}, d={d})")


@dataclass(frozen=True)
class LinearWorkload:
    """A linear-query workload: dataset + query tables over one universe."""

    dataset: Dataset
    universe: Universe
    queries: list
    shards: int
    description: str


def large_universe_workload(universe_size: int = 200_000, k: int = 64,
                            n: int = 100_000, *, shards: int = 8,
                            interval_scale: float = 0.35, rng=0,
                            description: str = "") -> LinearWorkload:
    """A large-universe interval-query workload for the sharded path.

    Builds a 1-D grid universe of ``universe_size`` points on ``[-1, 1]``,
    a bell-shaped dataset of ``n`` rows over it, and ``k`` random interval
    (range-counting) queries — the classic PMW workload shape, at a
    universe size where the engine's loss-matrix layout and the sharded
    hypothesis (``shards`` contiguous shards) earn their keep. Everything
    is built vectorized, so the construction itself stays cheap at
    ``universe_size >= 10^6`` (memory is dominated by the ``k ×
    universe_size`` query tables).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    check_positive(interval_scale, "interval_scale")
    universe = interval_grid(universe_size)
    generator = as_generator(rng)
    raw = np.clip(generator.normal(0.0, interval_scale, size=n), -1.0, 1.0)
    indices = np.rint((raw + 1.0) / 2.0 * (universe_size - 1)).astype(int)
    dataset = Dataset(universe, indices)
    grid = universe.points[:, 0]
    lows = generator.uniform(-1.0, 1.0, size=k)
    highs = np.minimum(lows + generator.uniform(0.05, 1.0, size=k), 1.0)
    # One contiguous (k, |X|) table matrix, frozen so each query keeps its
    # row as a view and the engine's loss-matrix layout is zero-copy for
    # this family (see repro.engine.kernels.stack_tables; LinearQuery
    # only aliases read-only buffers).
    tables = ((grid[None, :] >= lows[:, None])
              & (grid[None, :] <= highs[:, None])).astype(float)
    tables.setflags(write=False)
    queries = [
        LinearQuery(tables[j], name=f"interval-{j}") for j in range(k)
    ]
    return LinearWorkload(
        dataset=dataset, universe=universe, queries=queries, shards=shards,
        description=description or (
            f"intervals(|X|={universe_size}, k={k}, shards={shards})"
        ),
    )


def sharded_linear_max_error(workload: LinearWorkload, *, alpha: float = 0.1,
                             epsilon: float = 1.0, delta: float = 1e-6,
                             max_updates: int | None = 20,
                             workers: int | None = None,
                             rng=None) -> tuple[float, int]:
    """Run PMW-linear end to end with a sharded hypothesis.

    The mechanism's hypothesis is a
    :class:`~repro.data.sharded.ShardedHistogram` (``workload.shards``
    shards, optionally threaded shard passes via ``workers``), the stream
    is answered through the engine's segment-batched
    :meth:`~repro.core.pmw_linear.PrivateMWLinear.answer_all`, and the
    ground truth comes from one batched loss-matrix pass. Returns
    ``(max absolute answer error, update rounds used)``.
    """
    from repro.engine import batch_answers

    mechanism = PrivateMWLinear(
        workload.dataset, alpha=alpha, epsilon=epsilon, delta=delta,
        max_updates=max_updates, shards=workload.shards,
        histogram_workers=workers, rng=rng,
    )
    answers = mechanism.answer_all(workload.queries, on_halt="hypothesis")
    truth = batch_answers(workload.queries, workload.dataset.histogram())
    worst = max(
        abs(answer.value - true)
        for answer, true in zip(answers, truth)
    )
    return float(worst), mechanism.updates_performed


def pmw_max_error(workload: Workload, oracle: SingleQueryOracle, *,
                  alpha: float, epsilon: float = 1.0, delta: float = 1e-6,
                  max_updates: int | None = 30, solver_steps: int = 200,
                  rng=None) -> tuple[float, int]:
    """Run PMW-CM over the whole workload; return (max excess risk, #updates).

    Uses ``on_halt="hypothesis"`` so an exhausted update budget degrades
    gracefully instead of aborting the measurement (the halt is reflected
    in higher measured error, which is the honest outcome).
    """
    mechanism = PrivateMWConvex(
        workload.dataset, oracle, scale=workload.scale, alpha=alpha,
        epsilon=epsilon, delta=delta, schedule="calibrated",
        max_updates=max_updates, solver_steps=solver_steps, rng=rng,
    )
    answers = mechanism.answer_all(workload.losses, on_halt="hypothesis")
    data = workload.dataset.histogram()
    worst = 0.0
    for loss, answer in zip(workload.losses, answers):
        worst = max(worst, answer_error(loss, data, answer.theta,
                                        solver_steps=solver_steps))
    return worst, mechanism.updates_performed


def family_max_error(losses, data, thetas, *, solver_steps: int = 200) -> float:
    """Max excess risk of precomputed answers over a family."""
    worst = 0.0
    for loss, theta in zip(losses, thetas):
        worst = max(worst, answer_error(loss, data, theta,
                                        solver_steps=solver_steps))
    return worst


def single_query_excess(loss: LossFunction, dataset: Dataset,
                        oracle: SingleQueryOracle, *, rng=None,
                        solver_steps: int = 300) -> float:
    """Excess empirical risk of one oracle call (for the E9 sweeps)."""
    histogram = dataset.histogram()
    optimum = minimize_loss(loss, histogram, steps=solver_steps).value
    theta = oracle.answer(loss, dataset, rng=rng)
    return max(0.0, float(loss.loss_on(np.asarray(theta, dtype=float),
                                       histogram)) - optimum)
