"""Convex loss functions (CM queries) and query families.

Implements every loss family the paper names: linear queries (native and as
CM queries), Lipschitz bounded losses, generalized linear models (squared,
logistic, hinge, Huber), and strongly convex losses (quadratics, ridge),
plus reproducible random-family generators for the benchmarks.
"""

from repro.losses.base import LossFunction
from repro.losses.linear import LinearQuery, LinearQueryAsCM
from repro.losses.glm import GeneralizedLinearLoss
from repro.losses.squared import SquaredLoss
from repro.losses.logistic import LogisticLoss
from repro.losses.hinge import HingeLoss, HuberLoss
from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.robust import ExponentialLoss, PinballLoss, SmoothedHingeLoss
from repro.losses.structured_queries import (
    interval_queries,
    marginal_queries,
    threshold_queries,
)
from repro.losses.scaling import (
    empirical_value_width,
    family_scale_bound,
    validate_family,
)
from repro.losses.families import (
    linear_queries_as_cm,
    random_halfspace_queries,
    random_hinge_family,
    random_linear_queries,
    random_logistic_family,
    random_quadratic_family,
    random_ridge_family,
    random_squared_family,
)

__all__ = [
    "LossFunction",
    "LinearQuery",
    "LinearQueryAsCM",
    "GeneralizedLinearLoss",
    "SquaredLoss",
    "LogisticLoss",
    "HingeLoss",
    "HuberLoss",
    "QuadraticLoss",
    "RidgeRegularized",
    "PinballLoss",
    "SmoothedHingeLoss",
    "ExponentialLoss",
    "family_scale_bound",
    "empirical_value_width",
    "validate_family",
    "random_linear_queries",
    "random_halfspace_queries",
    "linear_queries_as_cm",
    "random_logistic_family",
    "random_squared_family",
    "random_hinge_family",
    "random_quadratic_family",
    "random_ridge_family",
    "marginal_queries",
    "threshold_queries",
    "interval_queries",
]
