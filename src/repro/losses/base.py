"""The convex-minimization query abstraction.

A CM query (Section 2.2) is a convex loss ``l : Theta × X -> R``; its answer
on a dataset is ``argmin_theta E_{x~D}[l(theta; x)]``. :class:`LossFunction`
is the library-wide contract: a loss evaluates its value and gradient
*vectorized over the whole universe*, so dataset losses are histogram dot
products — exactly the representation the paper's algorithm works in.

Traits a loss declares (used by Figure 3's parameter schedule and by the
Section 4 applications):

- ``lipschitz_bound`` — ``L`` with ``||grad l_x(theta)||_2 <= L``;
- ``strong_convexity`` — ``sigma`` (0 for merely convex losses);
- ``is_glm`` — whether ``l(theta; (x, y)) = phi(<theta, x>, y)``
  (the UGLM family of Theorem 4.3);
- ``scale_bound()`` — the paper's scaling parameter
  ``S >= max |<theta - theta', grad l_x(theta)>|``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import LossSpecificationError, ValidationError
from repro.optimize.projections import Domain
from repro.utils.rng import as_generator


class LossFunction(ABC):
    """A convex loss ``l(theta; x)`` over a parameter domain ``Theta``.

    Subclasses implement :meth:`values` and :meth:`gradients`; everything
    else (dataset losses, scale bounds, empirical trait checks) is derived.
    """

    #: Declared gradient-norm bound ``L`` (``None`` if unknown/unbounded).
    lipschitz_bound: float | None = None
    #: Declared strong-convexity modulus ``sigma`` (0 if merely convex).
    strong_convexity: float = 0.0
    #: Whether the loss is a generalized linear model in ``<theta, x>``.
    is_glm: bool = False

    def __init__(self, domain: Domain, name: str = "loss") -> None:
        self.domain = domain
        self.name = name

    # -- the contract -------------------------------------------------------

    @abstractmethod
    def values(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        """Per-element losses ``[l(theta; x) for x in universe]``, shape ``(|X|,)``."""

    @abstractmethod
    def gradients(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        """Per-element gradients ``grad_theta l(theta; x)``, shape ``(|X|, dim)``.

        For non-differentiable losses any subgradient selection is valid
        (the paper notes this suffices throughout).
        """

    def exact_minimizer(self, histogram: Histogram) -> np.ndarray | None:
        """Closed-form ``argmin_theta l(theta; D)`` if one exists, else ``None``.

        Hook consumed by :func:`repro.optimize.minimize.minimize_loss`.
        """
        return None

    def fingerprint(self) -> str:
        """Stable digest of the mathematical query this loss represents.

        Equal-parameter losses fingerprint identically across objects and
        processes; display names are ignored. Used as the cache and ledger
        key throughout :mod:`repro.serve` and by the mechanism's data-side
        minimization cache. See :mod:`repro.losses.fingerprint`.

        The digest is memoized on first call (hashing walks every
        parameter array, and serving paths fingerprint each query more
        than once); losses are treated as immutable values — mutating a
        loss after fingerprinting it is unsupported.
        """
        from repro.losses.fingerprint import memoized_fingerprint

        return memoized_fingerprint(self)

    # -- derived dataset-level evaluations ------------------------------------

    def loss_on(self, theta: np.ndarray, histogram: Histogram) -> float:
        """``l(theta; D) = sum_x D(x) l(theta; x)`` (the paper's ``l_D``)."""
        return histogram.dot(self.values(theta, histogram.universe))

    def gradient_on(self, theta: np.ndarray, histogram: Histogram) -> np.ndarray:
        """``grad l_D(theta) = sum_x D(x) grad l_x(theta)`` (gradient linearity)."""
        gradients = self.gradients(theta, histogram.universe)
        if gradients.ndim != 2 or gradients.shape[0] != histogram.universe.size:
            raise LossSpecificationError(
                f"{self.name}: gradients returned shape {gradients.shape}, "
                f"expected ({histogram.universe.size}, {self.domain.dim})"
            )
        return gradients.T @ histogram.weights

    # -- the scaling parameter S (Section 3.2) ---------------------------------

    def scale_bound(self) -> float:
        """An upper bound on ``S = max |<theta - theta', grad l_x(theta)>|``.

        By Cauchy–Schwarz, ``S <= diameter(Theta) * L``. Losses without a
        declared Lipschitz bound must override this or use
        :meth:`estimate_scale`.
        """
        if self.lipschitz_bound is None:
            raise LossSpecificationError(
                f"{self.name}: no Lipschitz bound declared; use "
                f"estimate_scale() or override scale_bound()"
            )
        diameter = self.domain.diameter()
        if not np.isfinite(diameter):
            raise LossSpecificationError(
                f"{self.name}: domain has infinite diameter; scale bound "
                f"requires a bounded domain"
            )
        return float(diameter * self.lipschitz_bound)

    def estimate_scale(self, universe: Universe, samples: int = 256,
                       rng=None) -> float:
        """Monte-Carlo lower estimate of the scale parameter ``S``.

        Samples parameter pairs and maximizes ``|<theta - theta',
        grad l_x(theta)>|`` over the whole universe. Useful to check that a
        declared :meth:`scale_bound` is not vacuously loose.
        """
        generator = as_generator(rng)
        best = 0.0
        for _ in range(samples):
            theta = self.domain.random_point(generator)
            theta_prime = self.domain.random_point(generator)
            gradients = self.gradients(theta, universe)
            inner = gradients @ (theta - theta_prime)
            best = max(best, float(np.max(np.abs(inner))))
        return best

    # -- empirical trait verification (used by tests & guards) -----------------

    def max_gradient_norm(self, universe: Universe, samples: int = 64,
                          rng=None) -> float:
        """Largest observed ``||grad l_x(theta)||_2`` over sampled ``theta``."""
        generator = as_generator(rng)
        worst = 0.0
        for _ in range(samples):
            theta = self.domain.random_point(generator)
            gradients = self.gradients(theta, universe)
            worst = max(worst, float(np.max(np.linalg.norm(gradients, axis=1))))
        return worst

    def check_convexity(self, universe: Universe, samples: int = 64,
                        rng=None, tol: float = 1e-7) -> bool:
        """Spot-check the first-order convexity inequality on random pairs.

        Verifies ``l(theta'; x) >= l(theta; x) + <grad l_x(theta),
        theta' - theta> + (sigma/2)||theta' - theta||^2`` for the declared
        ``sigma`` on sampled ``(theta, theta', x)`` triples.
        """
        generator = as_generator(rng)
        for _ in range(samples):
            theta = self.domain.random_point(generator)
            theta_prime = self.domain.random_point(generator)
            values = self.values(theta, universe)
            values_prime = self.values(theta_prime, universe)
            gradients = self.gradients(theta, universe)
            linear = gradients @ (theta_prime - theta)
            quadratic = 0.5 * self.strong_convexity * float(
                np.dot(theta_prime - theta, theta_prime - theta)
            )
            if np.any(values_prime + tol < values + linear + quadratic):
                return False
        return True

    # -- misc -------------------------------------------------------------------

    def _check_theta(self, theta) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.domain.dim,):
            raise ValidationError(
                f"{self.name}: theta has shape {theta.shape}, expected "
                f"({self.domain.dim},)"
            )
        return theta

    @staticmethod
    def _require_labels(universe: Universe, name: str) -> np.ndarray:
        if universe.labels is None:
            raise LossSpecificationError(
                f"{name} requires a labeled universe (elements are (x, y) pairs)"
            )
        return universe.labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, dim={self.domain.dim})"
