"""Generators for large families of distinct queries.

The paper's headline is answering *k* queries for huge *k*; experiments
therefore need programmatic families of genuinely distinct queries. Each
generator derives per-query structure (random predicates, random orthogonal
feature rotations) from a seed, so families are reproducible and can be
streamed at any size.

Family types map onto Table 1's rows:

- :func:`random_linear_queries`, :func:`random_halfspace_queries` — row 1;
- :func:`random_logistic_family`, :func:`random_squared_family` — rows 2-3
  (Lipschitz / UGLM; squared and logistic are both GLMs);
- :func:`random_quadratic_family`, :func:`random_ridge_family` — row 4
  (strongly convex).
"""

from __future__ import annotations

import numpy as np

from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.losses.hinge import HingeLoss
from repro.losses.linear import LinearQuery, LinearQueryAsCM
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.squared import SquaredLoss
from repro.optimize.projections import L2Ball
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


def random_linear_queries(universe: Universe, k: int, rng=None,
                          density: float = 0.5) -> list[LinearQuery]:
    """``k`` random 0/1 predicates, each including ~``density`` of the universe."""
    _check_k(k)
    generator = as_generator(rng)
    queries = []
    for j in range(k):
        table = (generator.random(universe.size) < density).astype(float)
        queries.append(LinearQuery(table, name=f"rand-linear-{j}"))
    return queries


def random_halfspace_queries(universe: Universe, k: int, rng=None) -> list[LinearQuery]:
    """``k`` halfspace predicates ``1[<w, x> >= b]`` with random ``(w, b)``.

    Halfspace counting queries are the structured family typically used in
    PMW evaluations; unlike iid-random predicates they correlate across the
    universe, which is what lets MW generalize from few updates.
    """
    _check_k(k)
    generator = as_generator(rng)
    queries = []
    norms = np.linalg.norm(universe.points, axis=1)
    scale = float(np.median(norms)) or 1.0
    for j in range(k):
        direction = generator.standard_normal(universe.dim)
        direction /= np.linalg.norm(direction)
        offset = generator.uniform(-0.5, 0.5) * scale
        table = (universe.points @ direction >= offset).astype(float)
        queries.append(LinearQuery(table, name=f"halfspace-{j}"))
    return queries


def linear_queries_as_cm(queries) -> list[LinearQueryAsCM]:
    """Wrap native linear queries as 1-D CM queries (Table 1's inclusion)."""
    return [LinearQueryAsCM(query) for query in queries]


def random_logistic_family(universe: Universe, k: int, rng=None) -> list[LogisticLoss]:
    """``k`` logistic losses, each in randomly rotated features ``R_j x``.

    Requires a ``{-1, +1}``-labeled universe. Each member is 1-Lipschitz
    over the unit ball (rotations are orthogonal, preserving feature norms)
    and an unconstrained-GLM in the rotated features — the Theorem 4.4
    workload.
    """
    _check_k(k)
    generator = as_generator(rng)
    domain = L2Ball(universe.dim)
    return [
        LogisticLoss(domain, rotation=_random_rotation(universe.dim, generator),
                     name=f"logistic-{j}")
        for j in range(k)
    ]


def random_squared_family(universe: Universe, k: int, rng=None,
                          normalization: float = 0.25) -> list[SquaredLoss]:
    """``k`` squared-loss regressions in randomly rotated features."""
    _check_k(k)
    generator = as_generator(rng)
    domain = L2Ball(universe.dim)
    return [
        SquaredLoss(domain, rotation=_random_rotation(universe.dim, generator),
                    normalization=normalization, name=f"squared-{j}")
        for j in range(k)
    ]


def random_hinge_family(universe: Universe, k: int, rng=None) -> list[HingeLoss]:
    """``k`` SVM hinge losses in randomly rotated features (non-smooth row 2)."""
    _check_k(k)
    generator = as_generator(rng)
    domain = L2Ball(universe.dim)
    return [
        HingeLoss(domain, rotation=_random_rotation(universe.dim, generator),
                  name=f"hinge-{j}")
        for j in range(k)
    ]


def random_quadratic_family(universe: Universe, k: int, rng=None) -> list[QuadraticLoss]:
    """``k`` quadratics ``(1/2)||theta - P_j x||^2`` with random orthogonal ``P_j``.

    Each is 1-strongly convex with a closed-form minimizer (the projected
    mean of ``P_j x``), so the family doubles as exact ground truth for
    integration tests: the true answer is computable to machine precision.
    """
    _check_k(k)
    generator = as_generator(rng)
    domain = L2Ball(universe.dim)
    return [
        QuadraticLoss(domain, transform=_random_rotation(universe.dim, generator),
                      name=f"quadratic-{j}")
        for j in range(k)
    ]


def random_ridge_family(universe: Universe, k: int, lam: float = 0.5,
                        rng=None) -> list[RidgeRegularized]:
    """``k`` ridge-regularized squared losses — the Theorem 4.6 workload.

    Each member is ``lam``-strongly convex with a closed-form minimizer
    over the ball.
    """
    _check_k(k)
    check_positive(lam, "lam")
    generator = as_generator(rng)
    bases = random_squared_family(universe, k, rng=generator)
    return [
        RidgeRegularized(base, lam=lam, name=f"ridge-{j}")
        for j, base in enumerate(bases)
    ]


def _random_rotation(dim: int, generator: np.random.Generator) -> np.ndarray:
    """A Haar-random orthogonal matrix via QR with sign correction."""
    if dim == 1:
        return np.array([[1.0 if generator.random() < 0.5 else -1.0]])
    gaussian = generator.standard_normal((dim, dim))
    q_matrix, r_matrix = np.linalg.qr(gaussian)
    signs = np.sign(np.diag(r_matrix))
    signs[signs == 0.0] = 1.0
    return q_matrix * signs[None, :]


def _check_k(k: int) -> None:
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
