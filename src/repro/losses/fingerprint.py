"""Canonical fingerprints for queries.

A fingerprint is a stable hex digest identifying the *mathematical* query a
loss object represents — class, domain, and numerical parameters — while
ignoring cosmetic state such as display names. Two loss objects built with
the same parameters fingerprint identically even across processes, which is
what makes the digest usable as

- the key of :class:`PrivateMWConvex`'s data-side minimization cache
  (repeated queries hit the cache even when the analyst rebuilt an equal
  loss object), and
- the key of the serving layer's answer cache and ledger entries
  (:mod:`repro.serve`), where keys must survive snapshot/restart.

The encoding walks the object graph (nested losses, linear-query tables,
domains, numpy arrays) and feeds a type-tagged canonical byte stream to
SHA-256. Floats are hashed by their IEEE-754 bytes, so the digest is exact,
not repr-rounded.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.exceptions import LossSpecificationError

#: Attributes that never influence the mathematical query (display names
#: and the memoized digest itself).
_COSMETIC_ATTRIBUTES = frozenset({"name", "_fingerprint_digest"})


def fingerprint_of(obj) -> str:
    """SHA-256 fingerprint of a query object's canonical state."""
    hasher = hashlib.sha256()
    _feed(hasher, obj)
    return hasher.hexdigest()


def memoized_fingerprint(obj) -> str:
    """``fingerprint_of`` cached on the instance as ``_fingerprint_digest``.

    Query objects are treated as immutable values — mutating one after it
    was fingerprinted is unsupported. The memo attribute is excluded from
    the hashed state, so memoized and fresh objects digest identically.
    """
    digest = getattr(obj, "_fingerprint_digest", None)
    if digest is None:
        digest = fingerprint_of(obj)
        obj._fingerprint_digest = digest
    return digest


def _feed(hasher, obj) -> None:
    """Feed one object to the hasher with an unambiguous type tag."""
    if obj is None:
        hasher.update(b"N")
    elif isinstance(obj, bool):
        hasher.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        encoded = str(int(obj)).encode()
        hasher.update(b"I" + struct.pack("<q", len(encoded)) + encoded)
    elif isinstance(obj, (float, np.floating)):
        hasher.update(b"F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        encoded = obj.encode()
        hasher.update(b"S" + struct.pack("<q", len(encoded)) + encoded)
    elif isinstance(obj, bytes):
        hasher.update(b"Y" + struct.pack("<q", len(obj)) + obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            # tobytes() on object arrays would hash PyObject pointers —
            # nondeterministic across processes and aliasing-prone.
            raise LossSpecificationError(
                "cannot fingerprint an object-dtype array; use a numeric "
                "dtype or give the owner a fingerprint_state() method"
            )
        array = np.ascontiguousarray(obj)
        dtype = array.dtype.str.encode()
        hasher.update(b"A" + struct.pack("<q", len(dtype)) + dtype)
        hasher.update(struct.pack("<q", array.ndim))
        hasher.update(struct.pack(f"<{array.ndim}q", *array.shape))
        hasher.update(array.tobytes())
    elif isinstance(obj, (list, tuple)):
        hasher.update(b"L" + struct.pack("<q", len(obj)))
        for item in obj:
            _feed(hasher, item)
    elif isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda pair: str(pair[0]))
        hasher.update(b"D" + struct.pack("<q", len(items)))
        for key, value in items:
            _feed(hasher, str(key))
            _feed(hasher, value)
    elif hasattr(obj, "fingerprint_state"):
        _feed_object(hasher, obj, obj.fingerprint_state())
    elif _is_plain_state_object(obj):
        _feed_object(hasher, obj, _instance_state(obj))
    else:
        raise LossSpecificationError(
            f"cannot fingerprint object of type {type(obj).__qualname__}; "
            f"give it a fingerprint_state() method returning its canonical "
            f"parameters"
        )


def _feed_object(hasher, obj, state: dict) -> None:
    tag = f"{type(obj).__module__}.{type(obj).__qualname__}".encode()
    hasher.update(b"O" + struct.pack("<q", len(tag)) + tag)
    _feed(hasher, state)


def _is_plain_state_object(obj) -> bool:
    """Whether the object's ``__dict__`` fully determines it.

    True for the library's losses, queries, and domains: their instance
    dictionaries hold only scalars, arrays, and further such objects.
    """
    from repro.losses.base import LossFunction
    from repro.optimize.projections import Domain

    # Local import breaks the base <-> fingerprint module cycle; LinearQuery
    # lives in a module that itself imports base.
    from repro.losses.linear import LinearQuery

    return isinstance(obj, (LossFunction, Domain, LinearQuery))


def _instance_state(obj) -> dict:
    state = {
        key: value
        for key, value in vars(obj).items()
        if key not in _COSMETIC_ATTRIBUTES
    }
    # Class-level trait declarations (e.g. strong_convexity, lipschitz_bound
    # set on the class, not the instance) are part of the query definition;
    # fold in the ones the mechanism's schedule reads.
    for trait in ("lipschitz_bound", "strong_convexity", "is_glm",
                  "link_derivative_bound"):
        if trait not in state and hasattr(obj, trait):
            state[trait] = getattr(obj, trait)
    return state
