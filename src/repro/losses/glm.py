"""Generalized linear model losses.

Theorem 4.3's family: ``l(theta; (x, y)) = phi(<theta, x>, y)`` for a convex
scalar link ``phi``. :class:`GeneralizedLinearLoss` implements the shared
machinery (vectorized inner products, chain-rule gradients, optional feature
rotation used to generate large families of *distinct* GLM queries); the
concrete links live in :mod:`repro.losses.squared`,
:mod:`repro.losses.logistic`, and :mod:`repro.losses.hinge`.
"""

from __future__ import annotations

import numpy as np

from repro.data.universe import Universe
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.optimize.projections import Domain
from repro.utils.validation import check_finite_array


class GeneralizedLinearLoss(LossFunction):
    """Base class for losses of the form ``phi(<theta, R x>, y)``.

    Parameters
    ----------
    domain:
        The parameter domain ``Theta`` (dimension must match the rotated
        feature dimension).
    rotation:
        Optional matrix ``R`` applied to features before the inner product;
        ``None`` means identity. Distinct rotations give distinct queries
        from the same link, which is how the benchmark families are built
        (each query is still a GLM, now in features ``R x``).
    link_derivative_bound:
        Bound ``c`` on ``|phi'(z, y)|``. Combined with the rotated feature
        norm this yields the Lipschitz bound ``c * max_x ||R x||``.

    Subclasses implement :meth:`link` and :meth:`link_derivative`
    (vectorized over a margin array) and declare whether labels are needed.
    """

    is_glm = True
    requires_labels = True
    link_derivative_bound: float = 1.0

    def __init__(self, domain: Domain, rotation: np.ndarray | None = None,
                 name: str = "glm") -> None:
        super().__init__(domain, name=name)
        if rotation is not None:
            rotation = check_finite_array(rotation, "rotation", ndim=2)
            if rotation.shape[0] != domain.dim:
                raise LossSpecificationError(
                    f"{name}: rotation output dim {rotation.shape[0]} must "
                    f"match domain dim {domain.dim}"
                )
        self.rotation = rotation

    # -- link contract --------------------------------------------------------

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        """``phi(z, y)`` elementwise over margins ``z``."""
        raise NotImplementedError

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        """``d phi / d z`` elementwise (any subgradient selection is fine)."""
        raise NotImplementedError

    # -- LossFunction implementation -------------------------------------------

    def values(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        features = self._features(universe)
        labels = self._labels(universe)
        return self.link(features @ theta, labels)

    def gradients(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        features = self._features(universe)
        labels = self._labels(universe)
        slopes = self.link_derivative(features @ theta, labels)
        return slopes[:, None] * features

    # -- helpers -----------------------------------------------------------------

    def check_universe_dim(self, universe: Universe) -> None:
        """Raise the canonical incompatibility error for a wrong universe.

        Shared by the scalar path (:meth:`_features`) and the batched
        engine's moment/margin kernels, so batching never changes which
        exception a caller handles.
        """
        expected = (self.rotation.shape[1] if self.rotation is not None
                    else self.domain.dim)
        if universe.points.shape[1] != expected:
            raise LossSpecificationError(
                f"{self.name}: universe dim {universe.points.shape[1]} "
                f"incompatible with loss dim {self.domain.dim}"
            )

    def _features(self, universe: Universe) -> np.ndarray:
        self.check_universe_dim(universe)
        points = universe.points
        if self.rotation is None:
            return points
        return points @ self.rotation.T

    def _labels(self, universe: Universe) -> np.ndarray | None:
        if self.requires_labels:
            return self._require_labels(universe, self.name)
        return universe.labels

    def effective_lipschitz(self, universe: Universe) -> float:
        """``max_x |phi'| * ||R x||`` — the realized Lipschitz constant."""
        features = self._features(universe)
        max_norm = float(np.max(np.linalg.norm(features, axis=1)))
        return self.link_derivative_bound * max_norm
