"""Hinge (SVM) and Huber losses.

Hinge is the paper's third motivating example (support vector machines) and
is the canonical *non-differentiable* convex loss: the library follows the
paper's remark that every ``grad`` can be replaced by an arbitrary
subgradient, and the hinge implementation selects one explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LossSpecificationError
from repro.losses.glm import GeneralizedLinearLoss
from repro.optimize.projections import Domain
from repro.utils.validation import check_positive


class HingeLoss(GeneralizedLinearLoss):
    """SVM hinge loss ``max(0, 1 - y <theta, R x>)`` with labels in ``{-1,+1}``.

    Subgradient selection: ``-y * x`` on the active branch
    (``y <theta, x> < 1``), ``0`` elsewhere (including the kink itself,
    where ``0`` is a valid subgradient only from the flat side; we pick the
    active-side subgradient at the kink, which is also valid).
    """

    link_derivative_bound = 1.0

    def __init__(self, domain: Domain, rotation: np.ndarray | None = None,
                 name: str = "hinge") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.lipschitz_bound = 1.0

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        return np.maximum(0.0, 1.0 - labels * margins)

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        active = labels * margins <= 1.0
        return np.where(active, -labels, 0.0)

    @staticmethod
    def _check_labels(labels: np.ndarray | None) -> None:
        if labels is None:
            raise LossSpecificationError("hinge loss requires labels")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise LossSpecificationError("hinge loss requires labels in {-1, +1}")


class HuberLoss(GeneralizedLinearLoss):
    """Huber regression loss on the residual ``r = <theta, R x> - y``.

    ``phi(r) = r^2/2`` for ``|r| <= delta``, ``delta(|r| - delta/2)``
    otherwise. Smooth, ``delta``-Lipschitz in the margin, robust to label
    outliers — a standard intermediate between squared and absolute loss.
    """

    def __init__(self, domain: Domain, delta: float = 0.5,
                 rotation: np.ndarray | None = None, name: str = "huber") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.delta = check_positive(delta, "delta")
        self.link_derivative_bound = self.delta
        self.lipschitz_bound = self.delta

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        if labels is None:
            raise LossSpecificationError("huber loss requires labels")
        residuals = margins - labels
        absolute = np.abs(residuals)
        quadratic = 0.5 * residuals * residuals
        linear = self.delta * (absolute - 0.5 * self.delta)
        return np.where(absolute <= self.delta, quadratic, linear)

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        if labels is None:
            raise LossSpecificationError("huber loss requires labels")
        return np.clip(margins - labels, -self.delta, self.delta)
