"""Linear queries, and linear queries expressed as CM queries.

Linear queries ("what fraction of rows satisfy predicate p?") are the
special case the original PMW mechanism [HR10] handles and the first row of
Table 1. Two representations:

- :class:`LinearQuery` — the native form ``q(D) = <q, D>`` consumed by the
  HR10 baseline (:mod:`repro.core.pmw_linear`) and MWEM.
- :class:`LinearQueryAsCM` — the same query as a 1-dimensional CM query
  ``l(theta; x) = (theta - q(x))^2 / 4`` over ``Theta = [0, 1]``, whose
  minimizer is exactly ``<q, D>``. This witnesses the paper's statement
  that linear queries are Lipschitz, 1-bounded CM queries.
"""

from __future__ import annotations

import numpy as np

from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.losses.base import LossFunction
from repro.optimize.projections import Box
from repro.utils.validation import check_finite_array, root_base


class LinearQuery:
    """A linear (statistical/counting) query over a finite universe.

    Parameters
    ----------
    table:
        Array of shape ``(|X|,)`` with entries in ``[0, 1]``:
        ``table[i] = q(x_i)``. The answer on a dataset is the histogram dot
        product ``<table, D>``; sensitivity is ``1/n``.

    Queries are immutable values (the same contract as
    :meth:`LossFunction.fingerprint`): when ``table`` is a view of a
    read-only buffer it is aliased zero-copy, so re-enabling writeability
    on the owning array and mutating it afterwards is unsupported — the
    memoized fingerprint (and every fingerprint-keyed cache) would go
    stale. Writable inputs are defensively copied as before.
    """

    def __init__(self, table: np.ndarray, name: str = "linear-query") -> None:
        table = check_finite_array(table, "table", ndim=1)
        if table.size == 0:
            raise ValidationError("query table must be non-empty")
        low, high = float(table.min()), float(table.max())
        if low < -1e-12 or high > 1.0 + 1e-12:
            raise ValidationError("query table entries must lie in [0, 1]")
        if (0.0 <= low and high <= 1.0
                and not root_base(table).flags.writeable):
            # Keep a *view* instead of a clipped copy — but only when the
            # buffer that actually owns the memory is frozen, so nobody
            # can mutate the table under the query (and its memoized
            # fingerprint); checking the passed array alone would accept
            # a read-only view of a still-writable base. Query families
            # built as rows of one read-only matrix stay rows of it,
            # which lets the engine's loss-matrix layout
            # (repro.engine.kernels.stack_tables) evaluate the whole
            # family with zero copies.
            table = table.view()
        else:
            table = np.clip(table, 0.0, 1.0)
        self.table = table
        self.table.setflags(write=False)
        self.name = name

    def answer(self, histogram: Histogram) -> float:
        """The true answer ``<q, D>``."""
        return histogram.dot(self.table)

    def error(self, histogram: Histogram, estimate: float) -> float:
        """Absolute error of an estimate against this histogram."""
        return abs(self.answer(histogram) - float(estimate))

    def fingerprint(self) -> str:
        """Stable digest of the query table (names ignored), memoized; see
        :mod:`repro.losses.fingerprint`."""
        from repro.losses.fingerprint import memoized_fingerprint

        return memoized_fingerprint(self)

    def __len__(self) -> int:
        return self.table.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearQuery(name={self.name!r}, size={self.table.size})"


class LinearQueryAsCM(LossFunction):
    """A linear query embedded as a 1-D convex-minimization query.

    ``l(theta; x) = (theta - q(x))^2 / 4`` over ``Theta = [0, 1]`` is
    1/2-strongly convex in the scaled sense, 1-Lipschitz
    (``|phi'| = |theta - q| / 2 <= 1/2``), and its dataset minimizer is the
    mean ``<q, D>`` — the linear-query answer. Excess empirical risk ``err``
    relates to answer error ``e`` by ``err = e^2 / 4``.
    """

    strong_convexity = 0.5
    lipschitz_bound = 0.5

    def __init__(self, query: LinearQuery, name: str | None = None) -> None:
        super().__init__(Box.unit(1), name=name or f"cm({query.name})")
        self.query = query

    def values(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        if universe.size != self.query.table.size:
            raise ValidationError(
                f"{self.name}: query table size {self.query.table.size} does "
                f"not match universe size {universe.size}"
            )
        residuals = theta[0] - self.query.table
        return 0.25 * residuals * residuals

    def gradients(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        residuals = theta[0] - self.query.table
        return 0.5 * residuals[:, None]

    def exact_minimizer(self, histogram: Histogram) -> np.ndarray | None:
        answer = self.query.answer(histogram)
        return np.array([float(np.clip(answer, 0.0, 1.0))])
