"""Logistic loss (binary classification), the paper's second example.

``l(theta; (x, y)) = log(1 + exp(-y <theta, R x>))`` for labels in
``{-1, +1}``. A GLM with ``|phi'| <= 1``, hence 1-Lipschitz whenever the
(rotated) features lie in the unit ball — the canonical member of the
Theorem 4.3 UGLM family.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LossSpecificationError
from repro.losses.glm import GeneralizedLinearLoss
from repro.optimize.projections import Domain


class LogisticLoss(GeneralizedLinearLoss):
    """Numerically stable logistic loss over a ``{-1, +1}``-labeled universe."""

    link_derivative_bound = 1.0

    def __init__(self, domain: Domain, rotation: np.ndarray | None = None,
                 name: str = "logistic") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.lipschitz_bound = 1.0

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        # log(1 + exp(-t)) computed as logaddexp(0, -t): stable for |t| large.
        return np.logaddexp(0.0, -labels * margins)

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        t = labels * margins
        # d/dz log(1+e^{-yz}) = -y * sigmoid(-yz); sigmoid via stable expit.
        return -labels / (1.0 + np.exp(t))

    @staticmethod
    def _check_labels(labels: np.ndarray | None) -> None:
        if labels is None:
            raise LossSpecificationError("logistic loss requires labels")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise LossSpecificationError(
                "logistic loss requires labels in {-1, +1}"
            )
