"""Strongly convex losses: pure quadratics and ridge regularization.

Section 4.2.3 of the paper treats ``sigma``-strongly-convex losses. Two
implementations:

- :class:`QuadraticLoss` — ``l(theta; x) = (1/2)||theta - P x||^2``: exactly
  1-strongly convex, with a *closed-form* dataset minimizer (the projected
  mean of ``P x``), making it the library's primary correctness probe.
- :class:`RidgeRegularized` — wraps any loss with ``+ (lam/2)||theta||^2``,
  raising its strong convexity by ``lam``; when the base loss is
  :class:`~repro.losses.squared.SquaredLoss` over a ball the minimizer stays
  in closed form.
"""

from __future__ import annotations

import numpy as np

from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.losses.base import LossFunction
from repro.losses.squared import (
    SquaredLoss,
    weighted_cross_moment,
    weighted_second_moment,
)
from repro.optimize.exact import minimize_quadratic_over_ball
from repro.optimize.projections import Domain, L2Ball
from repro.utils.validation import check_finite_array, check_positive


class QuadraticLoss(LossFunction):
    """``l(theta; x) = (1/2) ||theta - P x||_2^2`` (``P`` optional transform).

    Strong convexity ``sigma = 1``; on a unit ball domain with ``||P x|| <=
    1`` the gradient ``theta - P x`` has norm at most 2, so the loss is
    2-Lipschitz there.
    """

    strong_convexity = 1.0

    def __init__(self, domain: Domain, transform: np.ndarray | None = None,
                 name: str = "quadratic") -> None:
        super().__init__(domain, name=name)
        if transform is not None:
            transform = check_finite_array(transform, "transform", ndim=2)
        self.transform = transform
        # Gradient norm <= ||theta|| + max||P x||; both are ~1 in the
        # standard setup; declare 2 and let tests confirm empirically.
        self.lipschitz_bound = 2.0

    def targets(self, universe: Universe) -> np.ndarray:
        """The per-element targets ``P x`` of shape ``(|X|, dim)``."""
        points = universe.points
        if self.transform is None:
            return points
        return points @ self.transform.T

    def values(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        residuals = theta[None, :] - self.targets(universe)
        return 0.5 * np.einsum("ij,ij->i", residuals, residuals)

    def gradients(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        return theta[None, :] - self.targets(universe)

    def exact_minimizer(self, histogram: Histogram) -> np.ndarray | None:
        """The dataset minimizer is the domain projection of ``E[P x]``."""
        mean_target = self.targets(histogram.universe).T @ histogram.weights
        return self.domain.project(mean_target)


class RidgeRegularized(LossFunction):
    """``base(theta; x) + (lam/2) ||theta||^2`` — adds ``lam`` strong convexity.

    The regularizer is data-independent, so privacy properties of any
    mechanism run on the wrapped loss are unchanged; only the geometry
    improves (Section 4.2.3's ``sigma``).
    """

    def __init__(self, base: LossFunction, lam: float,
                 name: str | None = None) -> None:
        super().__init__(base.domain, name=name or f"ridge({base.name})")
        self.base = base
        self.lam = check_positive(lam, "lam")
        self.strong_convexity = base.strong_convexity + self.lam
        self.is_glm = False  # the regularizer breaks the pure GLM form
        if base.lipschitz_bound is not None:
            # ||grad|| <= base L + lam * max||theta||; bound the latter by
            # half the domain diameter from any center.
            radius = base.domain.diameter() / 2.0
            self.lipschitz_bound = base.lipschitz_bound + self.lam * radius

    def values(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        penalty = 0.5 * self.lam * float(theta @ theta)
        return self.base.values(theta, universe) + penalty

    def gradients(self, theta: np.ndarray, universe: Universe) -> np.ndarray:
        theta = self._check_theta(theta)
        return self.base.gradients(theta, universe) + self.lam * theta[None, :]

    def exact_minimizer(self, histogram: Histogram) -> np.ndarray | None:
        """Closed form when the base is :class:`SquaredLoss` over a ball."""
        if not isinstance(self.base, SquaredLoss):
            return None
        if not isinstance(self.domain, L2Ball):
            return None
        features = self.base._features(histogram.universe)
        labels = histogram.universe.labels
        if labels is None:
            return None
        weights = histogram.weights
        c = self.base.normalization
        second_moment = weighted_second_moment(features, weights)
        quadratic = 2.0 * c * second_moment + self.lam * np.eye(self.domain.dim)
        linear = -2.0 * c * weighted_cross_moment(features, weights, labels)
        return minimize_quadratic_over_ball(quadratic, linear, self.domain)
