"""Additional convex losses: quantile (pinball), smoothed hinge, exponential.

These extend the loss library beyond the paper's named examples while
staying inside its assumptions (convex, Lipschitz GLMs over bounded
domains), demonstrating that the mechanism is loss-agnostic:

- :class:`PinballLoss` — quantile regression, the canonical asymmetric
  non-smooth convex loss;
- :class:`SmoothedHingeLoss` — the quadratically smoothed SVM hinge
  (differentiable everywhere, so it exercises the smooth-GLM code path
  with a margin-shaped landscape);
- :class:`ExponentialLoss` — boosting's loss, convex with an
  exponentially growing link; the implementation clamps the margin range
  to keep the declared Lipschitz bound honest and documents the clamp.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LossSpecificationError
from repro.losses.glm import GeneralizedLinearLoss
from repro.optimize.projections import Domain
from repro.utils.validation import check_positive, check_unit_interval


class PinballLoss(GeneralizedLinearLoss):
    """Quantile-regression (pinball) loss on the residual ``r = <theta,x> - y``.

    Underprediction (``r < 0``) costs ``tau`` per unit and overprediction
    costs ``1 - tau``, so the minimizer estimates the ``tau``-quantile of
    ``y | x``. Convex, ``max(tau, 1-tau)``-Lipschitz in the margin; at the
    kink we select the right-side subgradient ``1 - tau`` (valid, as the
    paper's subgradient remark allows).
    """

    def __init__(self, domain: Domain, tau: float = 0.5,
                 rotation: np.ndarray | None = None,
                 name: str = "pinball") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.tau = check_unit_interval(tau, "tau")
        if self.tau >= 1.0:
            raise LossSpecificationError("tau must lie strictly below 1")
        self.link_derivative_bound = max(self.tau, 1.0 - self.tau)
        self.lipschitz_bound = self.link_derivative_bound

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        if labels is None:
            raise LossSpecificationError("pinball loss requires labels")
        residuals = margins - labels
        return np.where(residuals >= 0.0, (1.0 - self.tau) * residuals,
                        -self.tau * residuals)

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        if labels is None:
            raise LossSpecificationError("pinball loss requires labels")
        residuals = margins - labels
        return np.where(residuals >= 0.0, 1.0 - self.tau, -self.tau)


class SmoothedHingeLoss(GeneralizedLinearLoss):
    """Quadratically smoothed hinge with smoothing half-width ``gamma``.

    ``phi(m) = 0`` for ``m >= 1``, ``(1 - m)^2 / (2 gamma)`` for
    ``1 - gamma <= m < 1``, and ``1 - m - gamma/2`` below — continuous with
    continuous derivative, 1-Lipschitz, convex (labels in ``{-1, +1}``,
    ``m = y <theta, x>``).
    """

    link_derivative_bound = 1.0

    def __init__(self, domain: Domain, gamma: float = 0.5,
                 rotation: np.ndarray | None = None,
                 name: str = "smoothed-hinge") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.gamma = check_positive(gamma, "gamma")
        self.lipschitz_bound = 1.0

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        m = labels * margins
        flat = np.zeros_like(m)
        quadratic = (1.0 - m) ** 2 / (2.0 * self.gamma)
        linear = 1.0 - m - self.gamma / 2.0
        return np.where(m >= 1.0, flat,
                        np.where(m >= 1.0 - self.gamma, quadratic, linear))

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        m = labels * margins
        slope = np.where(
            m >= 1.0, 0.0,
            np.where(m >= 1.0 - self.gamma, -(1.0 - m) / self.gamma, -1.0),
        )
        return labels * slope

    @staticmethod
    def _check_labels(labels: np.ndarray | None) -> None:
        if labels is None or not np.all(np.isin(labels, (-1.0, 1.0))):
            raise LossSpecificationError(
                "smoothed hinge requires labels in {-1, +1}"
            )


class ExponentialLoss(GeneralizedLinearLoss):
    """Boosting's exponential loss ``exp(-y <theta, x>)`` with margin clamp.

    Convex and smooth, but its derivative grows like ``e^{|m|}``, so a raw
    declaration would break the scaling condition. The implementation
    clamps margins to ``[-clamp, clamp]`` (linear continuation beyond —
    still convex) and declares the honest Lipschitz bound ``e^{clamp}``.
    With the standard unit-ball setup margins never exceed 1, so the
    default clamp is inactive on-domain and only guards against misuse.
    """

    def __init__(self, domain: Domain, clamp: float = 1.0,
                 rotation: np.ndarray | None = None,
                 name: str = "exponential") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.clamp = check_positive(clamp, "clamp")
        self.link_derivative_bound = float(np.exp(self.clamp))
        self.lipschitz_bound = self.link_derivative_bound

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        m = labels * margins
        clipped = np.clip(m, -self.clamp, self.clamp)
        base = np.exp(-clipped)
        # Linear continuation below -clamp keeps convexity and the bound.
        overshoot = np.clip(-self.clamp - m, 0.0, None)
        return base + np.exp(self.clamp) * overshoot

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        self._check_labels(labels)
        m = labels * margins
        slope = np.where(
            m < -self.clamp, -np.exp(self.clamp),
            -np.exp(-np.clip(m, -self.clamp, self.clamp)),
        )
        # Zero-slope continuation above +clamp would break convexity; the
        # true derivative there is -e^{-m}, bounded by e^{-clamp}: keep it.
        above = m > self.clamp
        slope = np.where(above, -np.exp(-m), slope)
        return labels * slope

    @staticmethod
    def _check_labels(labels: np.ndarray | None) -> None:
        if labels is None or not np.all(np.isin(labels, (-1.0, 1.0))):
            raise LossSpecificationError(
                "exponential loss requires labels in {-1, +1}"
            )
