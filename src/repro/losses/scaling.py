"""Scale parameter ``S`` and family validation.

Figure 3 assumes every loss in the family satisfies the scaling condition
``max |<theta - theta', grad l_x(theta)>| <= S``; the privacy proof
(Section 3.4.2) additionally uses that ``l(theta, x)`` then lives in an
interval of width ``S`` for each ``x``. These helpers compute/validate the
family-level ``S`` and spot-check declared traits against the actual
universe, so a mis-specified loss fails loudly before it can corrupt a
privacy calibration.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.universe import Universe
from repro.exceptions import LossSpecificationError
from repro.losses.base import LossFunction
from repro.utils.rng import as_generator


def family_scale_bound(losses: Sequence[LossFunction]) -> float:
    """The family scale ``S``: max of per-loss :meth:`scale_bound`."""
    if not losses:
        raise LossSpecificationError("family must contain at least one loss")
    return max(loss.scale_bound() for loss in losses)


def empirical_value_width(loss: LossFunction, universe: Universe,
                          samples: int = 128, rng=None) -> float:
    """Largest observed per-``x`` spread ``max_theta l - min_theta l``.

    The privacy analysis (Section 3.4.2) derives from the scaling condition
    that every ``l(., x)`` has range width at most ``S``; this measures the
    realized width so tests can confirm ``width <= scale_bound()``.
    """
    generator = as_generator(rng)
    per_element_min = np.full(universe.size, np.inf)
    per_element_max = np.full(universe.size, -np.inf)
    for _ in range(samples):
        theta = loss.domain.random_point(generator)
        values = loss.values(theta, universe)
        np.minimum(per_element_min, values, out=per_element_min)
        np.maximum(per_element_max, values, out=per_element_max)
    return float(np.max(per_element_max - per_element_min))


def validate_family(losses: Sequence[LossFunction], universe: Universe,
                    samples: int = 32, rng=None, tol: float = 1e-6) -> None:
    """Raise if any loss's declared traits are violated on this universe.

    Checks, per loss: gradient norms within the declared Lipschitz bound,
    and the first-order (strong) convexity inequality on random pairs.
    Cheap randomized spot-checks, not proofs — their role is catching
    plumbing errors (wrong sign, missing normalization) early.
    """
    generator = as_generator(rng)
    for loss in losses:
        if loss.lipschitz_bound is not None:
            observed = loss.max_gradient_norm(universe, samples=samples,
                                              rng=generator)
            if observed > loss.lipschitz_bound * (1.0 + tol) + tol:
                raise LossSpecificationError(
                    f"{loss.name}: observed gradient norm {observed:.6g} "
                    f"exceeds declared Lipschitz bound "
                    f"{loss.lipschitz_bound:.6g}"
                )
        if not loss.check_convexity(universe, samples=samples, rng=generator):
            raise LossSpecificationError(
                f"{loss.name}: first-order convexity check failed for "
                f"declared strong convexity {loss.strong_convexity:g}"
            )
