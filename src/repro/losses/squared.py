"""Squared loss (linear regression), the paper's opening example.

``l(theta; (x, y)) = c * (<theta, x> - y)^2`` with ``c = 1/4`` by default so
that on the unit ball with ``|y| <= 1`` the loss is 1-Lipschitz
(``|phi'| = 2c|z - y| <= 4c``). The loss is a GLM, and over an L2-ball
domain its dataset minimizer has a closed form via the trust-region
subproblem, which :meth:`SquaredLoss.exact_minimizer` exploits.
"""

from __future__ import annotations

import numpy as np

from repro.data.histogram import Histogram
from repro.losses.glm import GeneralizedLinearLoss
from repro.optimize.exact import minimize_quadratic_over_ball
from repro.optimize.projections import Domain, L2Ball
from repro.utils.validation import check_positive


def weighted_second_moment(features: np.ndarray,
                           weights: np.ndarray) -> np.ndarray:
    """``E[x xᵀ] = Xᵀ diag(w) X`` under the distribution ``w``.

    The single implementation of the squared-family moment math — shared
    by the closed-form minimizers here and by the batched engine's moment
    kernels (:mod:`repro.engine.kernels`), so the two paths cannot drift.
    """
    return (features * weights[:, None]).T @ features


def weighted_cross_moment(features: np.ndarray, weights: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
    """``E[y x] = Xᵀ (w ⊙ y)`` under the distribution ``w``."""
    return features.T @ (weights * labels)


class SquaredLoss(GeneralizedLinearLoss):
    """Scaled squared loss ``c (<theta, R x> - y)^2`` over a labeled universe."""

    def __init__(self, domain: Domain, rotation: np.ndarray | None = None,
                 normalization: float = 0.25, name: str = "squared") -> None:
        super().__init__(domain, rotation=rotation, name=name)
        self.normalization = check_positive(normalization, "normalization")
        # |phi'| = 2c|z - y| <= 2c * (max|z| + max|y|); with unit-ball theta,
        # unit-norm rotated features and |y| <= 1 this is 4c.
        self.link_derivative_bound = 4.0 * self.normalization
        self.lipschitz_bound = self.link_derivative_bound

    def link(self, margins: np.ndarray, labels: np.ndarray | None) -> np.ndarray:
        residuals = margins - labels
        return self.normalization * residuals * residuals

    def link_derivative(self, margins: np.ndarray,
                        labels: np.ndarray | None) -> np.ndarray:
        return 2.0 * self.normalization * (margins - labels)

    def exact_minimizer(self, histogram: Histogram) -> np.ndarray | None:
        """Closed-form ridge-free least squares over an L2-ball domain.

        The objective is ``c * (theta' M theta - 2 v' theta + const)`` with
        ``M = E[x x']`` and ``v = E[y x]`` under the histogram, a PSD
        quadratic solvable exactly over the ball.
        """
        if not isinstance(self.domain, L2Ball):
            return None
        features = self._features(histogram.universe)
        labels = histogram.universe.labels
        if labels is None:
            return None
        weights = histogram.weights
        second_moment = weighted_second_moment(features, weights)
        cross_moment = weighted_cross_moment(features, weights, labels)
        quadratic = 2.0 * self.normalization * second_moment
        linear = -2.0 * self.normalization * cross_moment
        return minimize_quadratic_over_ball(quadratic, linear, self.domain)
