"""Structured linear-query families: marginals and intervals.

Section 4.3 points to the linear-query special cases with dedicated
efficient algorithms — interval queries [BNS13] and marginal queries
[GHRU11, HRS12, TUV12, CTUW14, DNT13] — as candidates for more efficient
CM analogues. These generators build those exact families over our
universes, so the linear-row experiments can run on the structured
workloads the literature actually benchmarks:

- **k-way marginals** over the binary cube: "what fraction of rows have
  x_i = b_i for all i in S?" for ``|S| = k``;
- **threshold / interval queries** over a 1-D grid: "what fraction of
  rows fall in [a, b]?".
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.universe import Universe
from repro.exceptions import ValidationError
from repro.losses.linear import LinearQuery
from repro.utils.rng import as_generator


def marginal_queries(universe: Universe, width: int,
                     limit: int | None = None, rng=None) -> list[LinearQuery]:
    """All (or ``limit`` random) ``width``-way marginals of a binary cube.

    The universe's points must take at most two distinct values per
    coordinate (e.g. :func:`repro.data.builders.binary_cube` or
    :func:`signed_cube`). Each query fixes a subset ``S`` of ``width``
    coordinates and a sign pattern ``b`` and counts rows matching
    ``x_S = b``. The full family has ``C(d, width) * 2^width`` members.
    """
    d = universe.dim
    if not 1 <= width <= d:
        raise ValidationError(f"width must lie in [1, {d}], got {width}")
    per_axis = [np.unique(universe.points[:, i]) for i in range(d)]
    if any(values.size > 2 for values in per_axis):
        raise ValidationError(
            "marginal queries require a binary universe (<= 2 values per "
            "coordinate)"
        )

    combos = list(itertools.combinations(range(d), width))
    patterns = list(itertools.product((0, 1), repeat=width))
    all_specs = [(combo, pattern) for combo in combos for pattern in patterns]
    if limit is not None and limit < len(all_specs):
        generator = as_generator(rng)
        chosen = generator.choice(len(all_specs), size=limit, replace=False)
        all_specs = [all_specs[i] for i in chosen]

    queries = []
    for combo, pattern in all_specs:
        table = np.ones(universe.size)
        for axis, bit in zip(combo, pattern):
            values = per_axis[axis]
            target = values[min(bit, values.size - 1)]
            table *= (universe.points[:, axis] == target).astype(float)
        name = "marginal[" + ",".join(
            f"x{axis}={bit}" for axis, bit in zip(combo, pattern)
        ) + "]"
        queries.append(LinearQuery(table, name=name))
    return queries


def threshold_queries(universe: Universe, count: int | None = None) -> list[LinearQuery]:
    """All (or evenly spaced ``count``) threshold queries over a 1-D grid.

    Query ``t`` counts the fraction of rows with ``x <= t`` — the [BNS13]
    interval-query primitive (general intervals are differences of two
    thresholds).
    """
    if universe.dim != 1:
        raise ValidationError("threshold queries require a 1-D universe")
    values = universe.points[:, 0]
    thresholds = np.unique(values)
    if count is not None:
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        picks = np.linspace(0, thresholds.size - 1,
                            min(count, thresholds.size)).astype(int)
        thresholds = thresholds[np.unique(picks)]
    return [
        LinearQuery((values <= t).astype(float), name=f"thresh[x<={t:g}]")
        for t in thresholds
    ]


def interval_queries(universe: Universe, count: int, rng=None) -> list[LinearQuery]:
    """``count`` random interval queries ``1[a <= x <= b]`` on a 1-D grid."""
    if universe.dim != 1:
        raise ValidationError("interval queries require a 1-D universe")
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    generator = as_generator(rng)
    values = universe.points[:, 0]
    low, high = float(values.min()), float(values.max())
    queries = []
    for j in range(count):
        a, b = np.sort(generator.uniform(low, high, size=2))
        table = ((values >= a) & (values <= b)).astype(float)
        queries.append(LinearQuery(table, name=f"interval[{a:.3g},{b:.3g}]"))
    return queries
