"""`repro.obs` — dependency-free observability for the serving stack.

Three pillars, three modules:

- :mod:`~repro.obs.registry` — a thread-safe :class:`MetricsRegistry`
  of named counters, gauges, and log-scale histograms (100 ns–10 000 s
  range, interpolated quantiles with a ≤ 12.2 % relative-error bound),
  exported as JSON snapshots and Prometheus text exposition;
- :mod:`~repro.obs.trace` — :class:`Span` structured tracing with
  per-request trace IDs propagated from ``ServiceGateway.submit``
  through planner, session, mechanism round phases, engine, and
  ledger/checkpoint writes; span durations land in the registry, and
  trace trees can be dumped as JSONL;
- :mod:`~repro.obs.telemetry` — pull-model domain gauges: per-session
  privacy-budget burn-down (bitwise equal to a ledger replay), SVT and
  hypothesis state, and answer-cache health keyed by cache policy.

Instrumentation is off by default and costs one global read per span
site; :func:`repro.obs.trace.install` turns it on process-wide. See
``docs/observability.md``.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    LogScaleHistogram,
    MetricsRegistry,
)
from repro.obs.telemetry import (
    publish_accountant,
    publish_cache,
    publish_service,
    publish_session,
)
from repro.obs.trace import NOOP_SPAN, Span, Tracer

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "LogScaleHistogram",
    "Span", "Tracer", "NOOP_SPAN",
    "publish_accountant", "publish_session", "publish_cache",
    "publish_service",
]
