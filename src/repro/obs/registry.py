"""Metrics registry: named counters, gauges, and log-scale histograms.

The serving stack needs three things its original ``GatewayMetrics``
could not provide: a *wide-dynamic-range* latency histogram (the old
fixed geometric buckets saturated at 3276.8 ms, so E19's p99 was
literally the overflow bucket), a *shared namespace* so gateway,
mechanism, and budget telemetry land in one scrape-able place, and a
*text exposition* format an operator can point Prometheus at. This
module is dependency-free (stdlib only) and thread-safe.

Design notes
------------

**Log-scale histograms.** :class:`LogScaleHistogram` covers ``low`` to
``high`` seconds (defaults 100 ns to 10 000 s ≈ 2.8 h) with
``buckets_per_decade`` geometric buckets per power of ten. The default
20 buckets/decade gives a bucket-edge ratio of ``10**(1/20) ≈ 1.122``,
so any interpolated quantile is off from the true order statistic by at
most one bucket width — a **relative error bound of ≤ 12.2 %** at any
scale, versus the old histogram's 100 % (doubling buckets, edge-only
quantiles). Samples above ``high`` land in an explicit overflow
counter (surfaced in :meth:`LogScaleHistogram.snapshot`), never in a
phantom top bucket; quantiles that fall in the overflow region return
the observed maximum, which is finite and exact.

**Identity.** A metric is identified by ``(name, labels)`` where labels
are an optional ``{str: str}`` mapping; :meth:`MetricsRegistry.counter`
and friends are get-or-create, so instrument sites never coordinate.
Metric kinds are namespaced separately per name: asking for a counter
under a name already registered as a gauge raises.

**Snapshots.** :meth:`MetricsRegistry.snapshot` returns a pure-JSON
document; :meth:`MetricsRegistry.from_snapshot` rebuilds a registry
whose own snapshot is equal — the round-trip is exact (counters and
histogram bucket counts are integers-or-floats carried verbatim).

Usage::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("requests", {"lane": "cached"}).inc()
    registry.histogram("latency.end_to_end").observe(0.0031)
    print(registry.render_prometheus())
"""

from __future__ import annotations

import json
import math
import re
import threading

from repro.exceptions import ValidationError

#: Default histogram range: 100 ns .. 10 000 s (≈ 2.8 h) at 20
#: buckets/decade → 220 buckets, edge ratio 10**(1/20) ≈ 1.122.
DEFAULT_LOW = 1e-7
DEFAULT_HIGH = 1e4
DEFAULT_BUCKETS_PER_DECADE = 20

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.:-]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValidationError(
            f"metric name must match {_NAME_RE.pattern}, got {name!r}"
        )
    return name


def _check_labels(labels) -> tuple[tuple[str, str], ...]:
    """Normalize a labels mapping to a canonical, hashable key."""
    if labels is None:
        return ()
    items = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(key, str) or not key:
            raise ValidationError(f"label names must be non-empty str, "
                                  f"got {key!r}")
        items.append((key, str(value)))
    return tuple(items)


class Counter:
    """Monotone counter. Mutations are serialized by the registry lock."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple, lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = lock

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {dict(self.labels)}, {self.value})"


class Gauge:
    """Point-in-time value (set/inc/dec)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: tuple, lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = lock

    def set(self, value) -> None:
        """Overwrite the gauge (bitwise: the stored float IS ``value``)."""
        with self._lock:
            self.value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {dict(self.labels)}, {self.value})"


class LogScaleHistogram:
    """Geometric-bucket histogram with interpolated quantiles.

    Buckets span ``[low, high)`` seconds with ``buckets_per_decade``
    buckets per power of ten; samples below ``low`` (including 0) count
    in the first bucket, samples at or above ``high`` count in the
    explicit ``overflow`` counter. Quantiles interpolate *inside* the
    winning bucket (log-linear), so the reported value and the true
    order statistic always share a bucket: relative error is bounded by
    the edge ratio ``10**(1/buckets_per_decade) - 1`` (≈ 12.2 % at the
    default 20/decade). Quantiles landing in the overflow region return
    the observed maximum.
    """

    __slots__ = ("low", "high", "buckets_per_decade", "_n", "_scale",
                 "counts", "overflow", "count", "total", "max", "_lock")

    def __init__(self, *, low: float = DEFAULT_LOW,
                 high: float = DEFAULT_HIGH,
                 buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
                 lock=None) -> None:
        if not (0.0 < low < high):
            raise ValidationError(
                f"need 0 < low < high, got low={low} high={high}"
            )
        if buckets_per_decade < 1:
            raise ValidationError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.low = float(low)
        self.high = float(high)
        self.buckets_per_decade = int(buckets_per_decade)
        # ceil so the top edge is >= high; the edge ratio is exact in
        # log10 space: edge(i) = low * 10**(i / buckets_per_decade).
        self._n = math.ceil(
            round(math.log10(high / low) * buckets_per_decade, 9))
        self._scale = buckets_per_decade / math.log(10.0)
        self.counts = [0] * self._n
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    # -- recording -----------------------------------------------------------

    def observe(self, seconds: float) -> None:
        """Record one sample (negative values clamp to 0)."""
        value = float(seconds)
        if value < 0.0:
            value = 0.0
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value
            if value >= self.high:
                self.overflow += 1
                return
            if value <= self.low:
                index = 0
            else:
                index = int(math.log(value / self.low) * self._scale)
                if index < 0:
                    index = 0
                elif index >= self._n:
                    index = self._n - 1
            self.counts[index] += 1

    # -- reading -------------------------------------------------------------

    def edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` in seconds."""
        return self.low * 10.0 ** ((index + 1) / self.buckets_per_decade)

    @property
    def top_edge(self) -> float:
        """Upper edge of the last regular bucket (overflow starts here)."""
        return self.edge(self._n - 1)

    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile in seconds (0.0 when empty).

        The returned value lies in the same bucket as the true order
        statistic, so its relative error is at most the bucket-edge
        ratio minus one (≤ 12.2 % at the default resolution); quantiles
        in the overflow region return the observed maximum (exact).
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            if rank <= 0.0:
                rank = 1.0
            seen = 0
            for index, bucket in enumerate(self.counts):
                if bucket == 0:
                    continue
                if seen + bucket >= rank:
                    lower = (self.low if index == 0
                             else self.edge(index - 1))
                    upper = self.edge(index)
                    fraction = (rank - seen) / bucket
                    # log-linear interpolation inside the bucket; the
                    # first bucket also holds sub-``low`` samples, so it
                    # interpolates down to 0 linearly instead.
                    if index == 0:
                        return upper * fraction
                    return lower * (upper / lower) ** fraction
                seen += bucket
            return self.max

    def state(self) -> dict:
        """Canonical JSON-ready state: config, totals, explicit
        ``overflow``, and sparse nonzero bucket counts as
        ``[index, count]`` pairs. This is the schema the registry
        snapshots and :meth:`from_snapshot` consumes — subclasses may
        override :meth:`snapshot` with their own presentation, but
        ``state`` stays canonical."""
        with self._lock:
            return {
                "low": self.low,
                "high": self.high,
                "buckets_per_decade": self.buckets_per_decade,
                "count": self.count,
                "total": self.total,
                "max": self.max,
                "overflow": self.overflow,
                "counts": [[i, c] for i, c in enumerate(self.counts) if c],
            }

    def snapshot(self) -> dict:
        """Alias for :meth:`state` (presentation hook for subclasses)."""
        return self.state()

    def merge_state(self, state: dict) -> None:
        """Add another histogram's :meth:`state` into this one, exactly.

        Bucket counts, the overflow counter, ``count``, and ``total``
        add; ``max`` takes the larger observed maximum. The two
        histograms must share a bucket layout (``low``/``high``/
        ``buckets_per_decade``) — merging across layouts would smear
        counts into different edges, so it raises instead. This is the
        primitive cross-process aggregation builds on: merging N shard
        registries preserves every bucket count bit-for-bit, so
        sum-of-shards equals the aggregate.
        """
        if (state["low"] != self.low or state["high"] != self.high
                or state["buckets_per_decade"] != self.buckets_per_decade):
            raise ValidationError(
                f"cannot merge histograms with different bucket layouts: "
                f"have (low={self.low}, high={self.high}, "
                f"per_decade={self.buckets_per_decade}), got "
                f"(low={state['low']}, high={state['high']}, "
                f"per_decade={state['buckets_per_decade']})"
            )
        with self._lock:
            for index, count in state.get("counts", []):
                self.counts[int(index)] += count
            self.overflow += state.get("overflow", 0)
            self.count += state.get("count", 0)
            self.total += state.get("total", 0.0)
            self.max = max(self.max, state.get("max", 0.0))

    @classmethod
    def from_snapshot(cls, state: dict, *, lock=None) -> "LogScaleHistogram":
        """Rebuild a histogram whose :meth:`state` equals ``state``."""
        histogram = cls(low=state["low"], high=state["high"],
                        buckets_per_decade=state["buckets_per_decade"],
                        lock=lock)
        for index, count in state.get("counts", []):
            histogram.counts[int(index)] = count
        histogram.overflow = state.get("overflow", 0)
        histogram.count = state.get("count", 0)
        histogram.total = state.get("total", 0.0)
        histogram.max = state.get("max", 0.0)
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LogScaleHistogram(count={self.count}, "
                f"p99={self.quantile(0.99):.6f}s, "
                f"overflow={self.overflow})")


#: Metric kinds, in snapshot/expostion order.
_KINDS = ("counter", "gauge", "histogram")


class MetricsRegistry:
    """Thread-safe, get-or-create home for named metrics.

    One registry per process (or per service) is the intended shape:
    every instrument site calls ``registry.counter(name, labels)`` and
    mutates whatever comes back — creation races, increments, and
    snapshots are all serialized on a single internal lock, so
    concurrent recording from gateway worker threads loses nothing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # kind -> {(name, labels): metric}
        self._metrics: dict[str, dict] = {kind: {} for kind in _KINDS}
        # name -> kind, to refuse cross-kind reuse of a name
        self._kinds: dict[str, str] = {}

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str, labels=None) -> Counter:
        """Get or create a counter."""
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, labels=None) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(self, name: str, labels=None, *,
                  low: float = DEFAULT_LOW, high: float = DEFAULT_HIGH,
                  buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
                  ) -> LogScaleHistogram:
        """Get or create a log-scale histogram (config applies on first
        creation only; later calls return the existing instance)."""
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            self._check_kind(name, "histogram")
            table = self._metrics["histogram"]
            metric = table.get(key)
            if metric is None:
                metric = LogScaleHistogram(
                    low=low, high=high,
                    buckets_per_decade=buckets_per_decade, lock=self._lock)
                table[key] = metric
            return metric

    def register_histogram(self, name: str, labels=None, *,
                           histogram: LogScaleHistogram) -> LogScaleHistogram:
        """Adopt a caller-constructed histogram (subclasses welcome —
        :class:`repro.serve.metrics.LatencyHistogram` registers itself
        this way). Get-or-create like :meth:`histogram`: if the name is
        already registered, the existing instance wins and ``histogram``
        is discarded. The adopted instance is re-locked onto the
        registry lock."""
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            self._check_kind(name, "histogram")
            table = self._metrics["histogram"]
            existing = table.get(key)
            if existing is not None:
                return existing
            histogram._lock = self._lock
            table[key] = histogram
            return histogram

    def _get_or_create(self, kind, name, labels, factory):
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            self._check_kind(name, kind)
            table = self._metrics[kind]
            metric = table.get(key)
            if metric is None:
                metric = factory(key[0], key[1], self._lock)
                table[key] = metric
            return metric

    def _check_kind(self, name: str, kind: str) -> None:
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ValidationError(
                f"metric {name!r} is already registered as a "
                f"{registered}, cannot reuse the name as a {kind}"
            )

    # -- reading -------------------------------------------------------------

    def get(self, name: str, labels=None):
        """The existing metric under ``(name, labels)``, or ``None``."""
        key = (name, _check_labels(labels))
        with self._lock:
            kind = self._kinds.get(name)
            if kind is None:
                return None
            return self._metrics[kind].get(key)

    def collect(self, kind: str) -> dict:
        """``{(name, labels): metric}`` for one kind (a shallow copy)."""
        if kind not in _KINDS:
            raise ValidationError(f"unknown metric kind {kind!r}")
        with self._lock:
            return dict(self._metrics[kind])

    def snapshot(self) -> dict:
        """Pure-JSON document of every metric, deterministically ordered."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": metric.value}
                for (name, labels), metric
                in sorted(self._metrics["counter"].items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": metric.value}
                for (name, labels), metric
                in sorted(self._metrics["gauge"].items())
            ]
        # Histogram states take the shared lock themselves; collect
        # the instances first, then read outside our critical section
        # to keep the lock non-reentrant-safe. ``state()`` (not
        # ``snapshot()``) so subclasses with presentation overrides
        # still serialize canonically.
        histograms = [
            {"name": name, "labels": dict(labels), **metric.state()}
            for (name, labels), metric
            in sorted(self.collect("histogram").items())
        ]
        return {
            "format": "repro.obs.registry/v1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, path=None, *, indent: int = 2) -> str:
        """Serialize :meth:`snapshot` to JSON; optionally write ``path``."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_snapshot(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a registry whose :meth:`snapshot` equals ``state``."""
        if state.get("format") != "repro.obs.registry/v1":
            raise ValidationError(
                f"not a registry snapshot (format={state.get('format')!r})"
            )
        registry = cls()
        for record in state.get("counters", []):
            counter = registry.counter(record["name"], record["labels"])
            counter.value = record["value"]
        for record in state.get("gauges", []):
            gauge = registry.gauge(record["name"], record["labels"])
            gauge.value = record["value"]
        for record in state.get("histograms", []):
            key = (_check_name(record["name"]),
                   _check_labels(record["labels"]))
            with registry._lock:
                registry._check_kind(record["name"], "histogram")
                registry._metrics["histogram"][key] = (
                    LogScaleHistogram.from_snapshot(
                        record, lock=registry._lock))
        return registry

    def merge_snapshot(self, state: dict, *, labels=None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation primitive: each shard process
        snapshots its own registry, the parent merges them all here, and
        the result is exact — counters add, histogram bucket counts and
        overflow counters add bucket-wise (:meth:`LogScaleHistogram.
        merge_state`), so sum-of-shards equals what one shared registry
        would have recorded. Gauges are point-in-time, not additive:
        each is ``set`` to the incoming value (last merge wins), so
        merge per-shard gauges under distinguishing ``labels``.

        ``labels`` (e.g. ``{"shard": "shard-03"}``) are added to every
        merged metric's own labels, letting one parent registry hold
        per-shard series side by side; an incoming label with the same
        key wins over the extra one.
        """
        if state.get("format") != "repro.obs.registry/v1":
            raise ValidationError(
                f"not a registry snapshot (format={state.get('format')!r})"
            )
        extra = dict(labels) if labels else {}
        for record in state.get("counters", []):
            merged = {**extra, **record["labels"]}
            self.counter(record["name"], merged).inc(record["value"])
        for record in state.get("gauges", []):
            merged = {**extra, **record["labels"]}
            self.gauge(record["name"], merged).set(record["value"])
        for record in state.get("histograms", []):
            merged = {**extra, **record["labels"]}
            histogram = self.histogram(
                record["name"], merged, low=record["low"],
                high=record["high"],
                buckets_per_decade=record["buckets_per_decade"])
            histogram.merge_state(record)

    # -- Prometheus exposition ------------------------------------------------

    def render_prometheus(self) -> str:
        """Text exposition (Prometheus format 0.0.4).

        Metric names are sanitized (``.`` and ``-`` become ``_``);
        histograms emit cumulative ``_bucket{le=...}`` series at every
        *occupied* edge plus ``+Inf``, with ``_sum`` and ``_count`` —
        a sparse but valid rendering of the log-scale buckets.
        """
        lines: list[str] = []
        typed: set[str] = set()
        snapshot = self.snapshot()
        for record in snapshot["counters"]:
            name = _prom_name(record["name"])
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(f"{name}{_prom_labels(record['labels'])} "
                         f"{_prom_value(record['value'])}")
        for record in snapshot["gauges"]:
            name = _prom_name(record["name"])
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{_prom_labels(record['labels'])} "
                         f"{_prom_value(record['value'])}")
        for record in snapshot["histograms"]:
            name = _prom_name(record["name"])
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            labels = record["labels"]
            low = record["low"]
            per_decade = record["buckets_per_decade"]
            cumulative = 0
            for index, count in record["counts"]:
                cumulative += count
                edge = low * 10.0 ** ((index + 1) / per_decade)
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(labels, le=_prom_value(edge))} "
                    f"{cumulative}")
            lines.append(
                f"{name}_bucket{_prom_labels(labels, le='+Inf')} "
                f"{record['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} "
                         f"{_prom_value(record['total'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{record['count']}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            sizes = {kind: len(table)
                     for kind, table in self._metrics.items()}
        return (f"MetricsRegistry(counters={sizes['counter']}, "
                f"gauges={sizes['gauge']}, "
                f"histograms={sizes['histogram']})")


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == math.inf:
            return "+Inf"
        if value == -math.inf:
            return "-Inf"
        return repr(value)
    return str(value)


def _prom_escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _prom_labels(labels: dict, **extra) -> str:
    items = list(labels.items()) + list(extra.items())
    if not items:
        return ""
    rendered = ",".join(
        f'{key}="{_prom_escape(str(value))}"' for key, value in items
    )
    return "{" + rendered + "}"


__all__ = [
    "Counter", "Gauge", "LogScaleHistogram", "MetricsRegistry",
    "DEFAULT_LOW", "DEFAULT_HIGH", "DEFAULT_BUCKETS_PER_DECADE",
]
