"""Domain telemetry: privacy budgets, SVT state, and cache health as gauges.

The registry and tracer measure *how fast* the stack runs; this module
publishes *what the privacy mechanism knows* — the numbers an operator
of a DP serving system owes their analysts and their auditors:

- per-session budget gauges: ``budget.epsilon_spent`` /
  ``budget.delta_spent`` / ``budget.epsilon_remaining`` /
  ``budget.num_spends`` (labelled ``{session=...}``), bitwise equal to
  the :class:`~repro.dp.accountant.PrivacyAccountant`'s journal-ordered
  running sums — and therefore to a ledger replay of the same session;
- per-session mechanism gauges: ``mechanism.svt_hard_queries`` (sparse
  vector above-threshold count), ``mechanism.svt_queries_asked``,
  ``mechanism.update_rounds``, ``mechanism.hypothesis_version``,
  ``mechanism.halted``, ``session.queries_served``, plus the info-style
  ``mechanism.backend_info`` (constant 1, labelled
  ``{session=..., backend=...}`` with the numeric backend name — the
  Prometheus info-metric idiom for attaching a string dimension);
- answer-cache gauges keyed by ``cache_policy``: ``cache.hits`` /
  ``cache.misses`` / ``cache.stale_misses`` / ``cache.entries``
  (labelled ``{policy=...}``).

Publication is **pull-model**: nothing here hooks the hot path. Call
:func:`publish_service` whenever a consistent view is wanted — before a
scrape, after a batch, at end of run — and it refreshes every gauge
from live state under each session's own lock. Gateway queue/shed/
coalesce counters are *not* re-published here because the
:class:`~repro.serve.metrics.GatewayMetrics` façade already keeps them
on a registry natively; pass that same registry here (or construct
``GatewayMetrics(registry=...)`` with it) to get one unified namespace.

Usage::

    from repro.obs import MetricsRegistry, publish_service

    registry = MetricsRegistry()
    ...                        # serve traffic through a PMWService
    publish_service(registry, service)
    print(registry.render_prometheus())
"""

from __future__ import annotations


def publish_accountant(registry, session_id: str, accountant) -> None:
    """Refresh one session's budget gauges from its accountant.

    Gauge values are set verbatim from
    :meth:`PrivacyAccountant.telemetry
    <repro.dp.accountant.PrivacyAccountant.telemetry>`, so
    ``budget.epsilon_spent`` is bitwise the accountant's journal-ordered
    sum — replaying the session's ledger records reproduces it exactly.
    ``budget.epsilon_remaining`` is published only for budgeted
    accountants (an unbudgeted session has no finite remaining value to
    scrape).
    """
    labels = {"session": session_id}
    view = accountant.telemetry()
    registry.gauge("budget.epsilon_spent", labels).set(view["epsilon_spent"])
    registry.gauge("budget.delta_spent", labels).set(view["delta_spent"])
    registry.gauge("budget.num_spends", labels).set(view["num_spends"])
    if view["epsilon_budget"] is not None:
        registry.gauge("budget.epsilon_budget", labels).set(
            view["epsilon_budget"])
        registry.gauge("budget.epsilon_remaining", labels).set(
            view["epsilon_remaining"])


def publish_session(registry, session) -> None:
    """Refresh one session's budget + mechanism gauges.

    Takes the session lock so the accountant, sparse vector, and
    hypothesis version describe one consistent instant (a mechanism
    round cannot be half-published).
    """
    with session.lock:
        sid = session.session_id
        labels = {"session": sid}
        publish_accountant(registry, sid, session.accountant)
        mechanism = session.mechanism
        hard = getattr(mechanism, "svt_hard_queries", None)
        if hard is not None:
            registry.gauge("mechanism.svt_hard_queries", labels).set(hard)
        asked = getattr(mechanism, "svt_queries_asked", None)
        if asked is not None:
            registry.gauge("mechanism.svt_queries_asked", labels).set(asked)
        updates = getattr(mechanism, "updates_performed", None)
        if updates is not None:
            registry.gauge("mechanism.update_rounds", labels).set(updates)
        version = session.hypothesis_version
        if version is not None:
            registry.gauge("mechanism.hypothesis_version", labels).set(
                version)
        registry.gauge("mechanism.halted", labels).set(
            1 if session.halted else 0)
        backend = getattr(mechanism, "backend_name", None)
        if backend is not None:
            registry.gauge("mechanism.backend_info",
                           {"session": sid, "backend": backend}).set(1)
        registry.gauge("session.queries_served", labels).set(
            session.queries_served)


def publish_cache(registry, cache, *, policy: str = "replay") -> None:
    """Refresh answer-cache gauges, labelled by ``cache_policy``."""
    stats = cache.stats()
    labels = {"policy": policy}
    registry.gauge("cache.hits", labels).set(stats.hits)
    registry.gauge("cache.misses", labels).set(stats.misses)
    registry.gauge("cache.stale_misses", labels).set(stats.stale_misses)
    registry.gauge("cache.entries", labels).set(stats.entries)


def publish_service(registry, service, *, gateway=None) -> None:
    """Refresh every domain gauge for one service (and optionally its
    gateway's queue-depth gauges, when the gateway metrics live on a
    *different* registry than ``registry``).
    """
    for sid in service.session_ids:
        publish_session(registry, service.session(sid))
    publish_cache(registry, service.cache, policy=service.cache_policy)
    if service.ledger is not None:
        registry.gauge("ledger.last_seq").set(service.ledger.last_seq)
    if gateway is not None and gateway.metrics.registry is not registry:
        snapshot = gateway.metrics.snapshot()
        for sid, stats in snapshot["sessions"].items():
            registry.gauge("gateway.queue_depth", {"session": sid}).set(
                stats["queue_depth"])


__all__ = ["publish_accountant", "publish_session", "publish_cache",
           "publish_service"]
