"""Structured tracing: per-request spans over the serving request path.

A :class:`Span` is a context manager timing one phase of one request —
gateway execute, batch plan, a mechanism round's fingerprint / cache
probe / solve / MW update, a ledger append. Spans nest via a
thread-local stack, inherit their parent's ``trace_id``, and on exit
record their duration into a :class:`~repro.obs.registry.MetricsRegistry`
histogram named ``span.<name>`` — so the registry's interpolated
quantiles double as a per-phase latency breakdown. A tracer can also
append every finished span to a JSONL file for offline flame-style
inspection, and keeps a bounded in-memory ring of finished spans that
:meth:`Tracer.render_tree` turns into an indented trace tree.

The instrumentation contract is *pay-only-when-on*: call sites use the
module-level :func:`span` / :func:`new_trace_id` helpers, which read one
module global and return a shared no-op context manager when no tracer
is installed — cheap enough to leave in mechanism hot loops. Install a
tracer (usually per process) with :func:`install`::

    from repro.obs import MetricsRegistry, trace

    registry = MetricsRegistry()
    tracer = trace.install(registry=registry, jsonl_path="spans.jsonl")
    ...                      # serve traffic; spans record themselves
    print(tracer.render_tree(trace_id))
    trace.uninstall()

Trace IDs are minted at the edge (``ServiceGateway.submit`` stamps one
per request) and flow to worker threads explicitly — a worker opens its
root span with ``span("gateway.execute", trace_id=request.trace_id)``
and every nested span below it inherits the ID from the stack.
"""

from __future__ import annotations

import itertools
import json
import threading
import time

from repro.exceptions import ValidationError

_TRACE_BUFFER_DEFAULT = 4096


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed phase. Use as a context manager; re-entry not supported."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attrs", "start", "duration", "error")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str | None,
                 attrs: dict | None) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = None
        self.parent_id = None
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.error = None

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.parent_id = parent.span_id
            if self.trace_id is None:
                self.trace_id = parent.trace_id
        if self.trace_id is None:
            self.trace_id = tracer.new_trace_id()
        self.span_id = tracer._next_span_id()
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = self.tracer._stack()
        # Pop self even if an inner span leaked (defensive: a span left
        # open by a crashed frame must not reparent the rest of the
        # thread's work).
        while stack and stack.pop() is not self:
            pass
        self.tracer._finish(self)
        return False

    def record(self) -> dict:
        """JSON-ready description of a finished span."""
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"duration={self.duration:.6f}s)")


class Tracer:
    """Span factory + sink.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; every
        finished span observes its duration into the histogram
        ``span.<name>``.
    jsonl_path:
        Optional file; every finished span is appended as one JSON line
        (call :meth:`close` to flush and release the handle).
    keep:
        Size of the in-memory ring of finished span records backing
        :meth:`finished`, :meth:`spans_for` and :meth:`render_tree`
        (oldest evicted first; 0 disables buffering).
    """

    def __init__(self, registry=None, *, jsonl_path=None,
                 keep: int = _TRACE_BUFFER_DEFAULT) -> None:
        if keep < 0:
            raise ValidationError(f"keep must be >= 0, got {keep}")
        self.registry = registry
        self.keep = int(keep)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._buffer: list[dict] = []
        self._jsonl_path = jsonl_path
        self._jsonl = (open(jsonl_path, "a", encoding="utf-8")
                       if jsonl_path is not None else None)

    # -- span factory --------------------------------------------------------

    def span(self, name: str, *, trace_id: str | None = None,
             **attrs) -> Span:
        """A new (unstarted) span; enter it with ``with``."""
        return Span(self, name, trace_id, attrs or None)

    def new_trace_id(self) -> str:
        """Mint a process-unique trace ID (``t-000001``, ...).

        ``next()`` on :func:`itertools.count` is atomic under CPython's
        GIL, so the admission-edge hot path takes no lock.
        """
        return f"t-{next(self._trace_ids):06d}"

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- sinks ---------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_span_id(self) -> str:
        # Atomic under the GIL (see new_trace_id) — per-span hot path.
        return f"s-{next(self._span_ids):06d}"

    def _finish(self, span: Span) -> None:
        if self.registry is not None:
            self.registry.histogram(f"span.{span.name}").observe(
                span.duration)
        record = span.record()
        with self._lock:
            if self.keep:
                self._buffer.append(record)
                if len(self._buffer) > self.keep:
                    del self._buffer[:len(self._buffer) - self.keep]
            if self._jsonl is not None:
                self._jsonl.write(json.dumps(record) + "\n")

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        with self._lock:
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None

    # -- reading -------------------------------------------------------------

    def finished(self) -> list[dict]:
        """Finished span records, oldest first (bounded by ``keep``)."""
        with self._lock:
            return list(self._buffer)

    def spans_for(self, trace_id: str) -> list[dict]:
        """Finished spans of one trace, in start order."""
        with self._lock:
            spans = [r for r in self._buffer if r["trace_id"] == trace_id]
        spans.sort(key=lambda r: r["start"])
        return spans

    def render_tree(self, trace_id: str) -> str:
        """Indented tree of one trace's spans (durations in ms)."""
        spans = self.spans_for(trace_id)
        if not spans:
            return f"(no spans for trace {trace_id})"
        children: dict = {}
        by_id = {record["span_id"]: record for record in spans}
        roots = []
        for record in spans:
            parent = record["parent_id"]
            if parent in by_id:
                children.setdefault(parent, []).append(record)
            else:
                roots.append(record)
        lines = [f"trace {trace_id}"]

        def walk(record, depth):
            lines.append(f"{'  ' * depth}- {record['name']} "
                         f"{record['duration'] * 1e3:.3f} ms")
            for child in children.get(record["span_id"], ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Tracer(registry={self.registry is not None}, "
                f"jsonl={self._jsonl_path!r}, "
                f"buffered={len(self.finished())})")


# -- module-level install (the cheap hot-path hook) ---------------------------

_active: Tracer | None = None
_install_lock = threading.Lock()


def install(tracer: Tracer | None = None, *, registry=None,
            jsonl_path=None, keep: int = _TRACE_BUFFER_DEFAULT) -> Tracer:
    """Install ``tracer`` (or build one from the kwargs) as the process
    tracer; returns it. Replaces any previous tracer (which keeps its
    buffered spans but stops receiving new ones)."""
    global _active
    with _install_lock:
        if tracer is None:
            tracer = Tracer(registry, jsonl_path=jsonl_path, keep=keep)
        _active = tracer
        return tracer


def uninstall() -> Tracer | None:
    """Remove and return the active tracer (closing its JSONL sink)."""
    global _active
    with _install_lock:
        tracer, _active = _active, None
        if tracer is not None:
            tracer.close()
        return tracer


def active() -> Tracer | None:
    """The installed tracer, or ``None``."""
    return _active


def span(name: str, *, trace_id: str | None = None, **attrs):
    """A span on the active tracer, or a shared no-op when tracing is
    off — the one-global-read fast path instrument sites rely on."""
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, trace_id=trace_id, **attrs)


def new_trace_id() -> str | None:
    """Mint a trace ID on the active tracer (``None`` when tracing is
    off — callers propagate the ``None`` for free)."""
    tracer = _active
    if tracer is None:
        return None
    return tracer.new_trace_id()


__all__ = ["Span", "Tracer", "NOOP_SPAN", "install", "uninstall",
           "active", "span", "new_trace_id"]
