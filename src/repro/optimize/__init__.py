"""Convex-minimization substrate.

The paper's mechanism needs a (non-private) inner solver for
``argmin_{theta in Theta} l(theta; Dhat)`` at every round, plus projections
onto the convex parameter set ``Theta``. This package provides:

- :mod:`repro.optimize.projections` — parameter domains (L2 ball, box,
  simplex) with exact Euclidean projections.
- :mod:`repro.optimize.gradient_descent` — projected (sub)gradient descent
  with iterate averaging, the workhorse solver.
- :mod:`repro.optimize.frank_wolfe` — projection-free Frank–Wolfe over
  norm balls.
- :mod:`repro.optimize.exact` — closed-form minimizers for the quadratic
  cases used by the test-suite as ground truth.
- :mod:`repro.optimize.minimize` — the dispatcher `minimize_loss`.

Solver choice does not affect privacy: the inner minimization only touches
the *public* hypothesis histogram (or is wrapped in an explicitly private
oracle in :mod:`repro.erm`).
"""

from repro.optimize.projections import Box, Domain, L2Ball, Simplex
from repro.optimize.gradient_descent import projected_gradient_descent
from repro.optimize.frank_wolfe import frank_wolfe
from repro.optimize.exact import minimize_quadratic_over_ball
from repro.optimize.minimize import MinimizeResult, minimize_loss

__all__ = [
    "Domain",
    "L2Ball",
    "Box",
    "Simplex",
    "projected_gradient_descent",
    "frank_wolfe",
    "minimize_quadratic_over_ball",
    "minimize_loss",
    "MinimizeResult",
]
