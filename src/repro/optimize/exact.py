"""Closed-form convex minimizers.

Exact solutions for the quadratic special cases. These serve two roles:
ground truth for the iterative solvers in the test-suite, and fast exact
inner minimization for the quadratic loss families used throughout the
benchmarks (PMW calls the inner solver once per query, so exactness both
speeds up and de-noises the experiments).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sp_optimize

from repro.exceptions import OptimizationError
from repro.optimize.projections import L2Ball
from repro.utils.validation import check_finite_array


def minimize_quadratic_over_ball(quadratic: np.ndarray, linear: np.ndarray,
                                 domain: L2Ball) -> np.ndarray:
    """Minimize ``(1/2) theta' A theta + b' theta`` over an L2 ball.

    ``A`` must be symmetric positive semi-definite. Solves the trust-region
    subproblem exactly: if the unconstrained solution ``A theta = -b`` lies
    inside the ball, return it; otherwise find the Lagrange multiplier
    ``lam >= 0`` with ``||(A + lam I)^{-1} b|| = radius`` by safeguarded
    scalar root-finding on the secular equation.
    """
    a_matrix = check_finite_array(quadratic, "quadratic", ndim=2)
    b_vector = check_finite_array(linear, "linear", ndim=1)
    dim = b_vector.shape[0]
    if a_matrix.shape != (dim, dim):
        raise OptimizationError(
            f"quadratic has shape {a_matrix.shape}, expected ({dim}, {dim})"
        )
    if not np.allclose(a_matrix, a_matrix.T, atol=1e-8):
        raise OptimizationError("quadratic matrix must be symmetric")
    if domain.dim != dim:
        raise OptimizationError("domain dimension mismatch")
    if np.any(domain.center_point != 0.0):
        # Shift coordinates so the ball is centered at the origin.
        shift = domain.center_point
        shifted_linear = b_vector + a_matrix @ shift
        inner = minimize_quadratic_over_ball(
            a_matrix, shifted_linear, L2Ball(dim, radius=domain.radius)
        )
        return inner + shift

    eigenvalues, eigenvectors = np.linalg.eigh(a_matrix)
    if eigenvalues[0] < -1e-8:
        raise OptimizationError("quadratic matrix must be positive semi-definite")
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    b_rotated = eigenvectors.T @ b_vector

    def solution_norm(lam: float) -> float:
        denominators = eigenvalues + lam
        safe = denominators > 1e-300
        coords = np.zeros(dim)
        coords[safe] = -b_rotated[safe] / denominators[safe]
        return float(np.linalg.norm(coords))

    # Interior solution when A is positive definite and the minimizer fits.
    if eigenvalues[0] > 1e-12 and solution_norm(0.0) <= domain.radius:
        coords = -b_rotated / eigenvalues
        return eigenvectors @ coords

    # Boundary solution: ||theta(lam)|| is decreasing in lam; bracket a root.
    lower = max(1e-14, -float(eigenvalues[0]) + 1e-14)
    upper = max(1.0, float(np.linalg.norm(b_vector)) / domain.radius + 1.0)
    for _ in range(200):
        if solution_norm(upper) <= domain.radius:
            break
        upper *= 2.0
    else:  # pragma: no cover - unreachable for finite inputs
        raise OptimizationError("failed to bracket the secular equation")

    if solution_norm(lower) <= domain.radius:
        lam = lower
    else:
        lam = float(sp_optimize.brentq(
            lambda value: solution_norm(value) - domain.radius,
            lower, upper, xtol=1e-14, rtol=1e-12,
        ))
    denominators = eigenvalues + lam
    coords = -b_rotated / denominators
    theta = eigenvectors @ coords
    return domain.project(theta)


def minimize_scalar_convex(function, low: float, high: float) -> float:
    """Minimize a scalar convex function on ``[low, high]`` by bounded search."""
    if not high > low:
        raise OptimizationError(f"need high > low, got [{low}, {high}]")
    result = sp_optimize.minimize_scalar(
        function, bounds=(low, high), method="bounded",
        options={"xatol": 1e-12},
    )
    if not result.success:  # pragma: no cover - bounded search always succeeds
        raise OptimizationError(f"scalar minimization failed: {result.message}")
    return float(np.clip(result.x, low, high))
