"""Frank–Wolfe (conditional gradient) over an L2 ball.

A projection-free alternative to projected gradient descent: each step
solves the linear subproblem ``argmin_{s in Theta} <grad, s>`` — for an L2
ball that is the boundary point opposite the gradient — and moves toward it
with step ``2/(t+2)``. Converges at ``O(1/T)`` for smooth convex objectives.
Included both as an independent solver (useful to cross-check PGD in tests)
and because conditional-gradient methods are standard in the DP-ERM
literature the paper builds on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import OptimizationError
from repro.optimize.projections import L2Ball


def frank_wolfe(
    gradient: Callable[[np.ndarray], np.ndarray],
    domain: L2Ball,
    *,
    steps: int = 500,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """Minimize a smooth convex function over an :class:`L2Ball`.

    Parameters
    ----------
    gradient:
        Gradient oracle of the objective.
    domain:
        The feasible ball (the linear subproblem is solved in closed form
        on its boundary).
    steps:
        Number of Frank–Wolfe iterations.
    start:
        Starting point (defaults to the ball center).
    """
    if not isinstance(domain, L2Ball):
        raise OptimizationError("frank_wolfe requires an L2Ball domain")
    if steps < 1:
        raise OptimizationError(f"steps must be >= 1, got {steps}")

    theta = domain.center() if start is None else domain.project(
        np.asarray(start, dtype=float)
    )
    for t in range(steps):
        grad = np.asarray(gradient(theta), dtype=float)
        if not np.all(np.isfinite(grad)):
            raise OptimizationError("gradient returned non-finite values")
        target = domain.boundary_point(-grad)
        gamma = 2.0 / (t + 2.0)
        theta = theta + gamma * (target - theta)
    return theta
