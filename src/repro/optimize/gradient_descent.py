"""Projected (sub)gradient descent.

The workhorse inner solver for ``argmin_{theta in Theta} f(theta)``. Works
for any convex ``f`` given a (sub)gradient oracle; uses the classic
``eta_t = D / (G sqrt(t))`` diminishing step size with iterate averaging,
which guarantees ``O(DG/sqrt(T))`` suboptimality for ``G``-Lipschitz ``f``
over a diameter-``D`` domain, and a ``1/(sigma t)`` schedule when strong
convexity ``sigma > 0`` is declared.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import OptimizationError
from repro.optimize.projections import Domain
from repro.utils.validation import check_finite_array


def projected_gradient_descent(
    gradient: Callable[[np.ndarray], np.ndarray],
    domain: Domain,
    *,
    steps: int = 500,
    lipschitz: float = 1.0,
    strong_convexity: float = 0.0,
    start: np.ndarray | None = None,
    objective: Callable[[np.ndarray], float] | None = None,
    tolerance: float = 0.0,
) -> np.ndarray:
    """Minimize a convex function over ``domain`` by projected subgradient steps.

    Parameters
    ----------
    gradient:
        Maps ``theta`` to a (sub)gradient of the objective at ``theta``.
    domain:
        The convex feasible set; every iterate is projected back onto it.
    steps:
        Number of iterations.
    lipschitz:
        Gradient-norm bound ``G`` used by the step-size schedule.
    strong_convexity:
        ``sigma``; when positive, uses the ``1/(sigma t)`` schedule with
        suffix averaging instead of the ``D/(G sqrt(t))`` schedule.
    start:
        Starting point (defaults to the domain center).
    objective:
        Optional objective evaluator; when provided, the best-seen iterate
        (by objective value) is returned instead of the average, and early
        stopping by ``tolerance`` on objective decrease is enabled.
    tolerance:
        With ``objective``: stop when a full sweep of 25 iterations improves
        the best objective by less than this amount.
    """
    if steps < 1:
        raise OptimizationError(f"steps must be >= 1, got {steps}")
    if lipschitz <= 0.0:
        raise OptimizationError(f"lipschitz must be positive, got {lipschitz}")
    if strong_convexity < 0.0:
        raise OptimizationError("strong_convexity must be non-negative")

    theta = domain.center() if start is None else domain.project(
        check_finite_array(start, "start", ndim=1)
    )
    diameter = domain.diameter()
    if not np.isfinite(diameter):
        diameter = 2.0  # unconstrained-like domain: fall back to unit scale

    average = np.zeros_like(theta)
    averaged_steps = 0
    best_theta = np.array(theta)
    best_value = objective(theta) if objective is not None else None
    stall_budget = 25
    since_improvement = 0

    for t in range(1, steps + 1):
        grad = np.asarray(gradient(theta), dtype=float)
        if grad.shape != theta.shape:
            raise OptimizationError(
                f"gradient returned shape {grad.shape}, expected {theta.shape}"
            )
        if not np.all(np.isfinite(grad)):
            raise OptimizationError("gradient returned non-finite values")

        if strong_convexity > 0.0:
            step = 1.0 / (strong_convexity * t)
        else:
            step = diameter / (lipschitz * np.sqrt(t))
        theta = domain.project(theta - step * grad)

        # Average the last half of the trajectory (suffix averaging), which
        # is valid for both schedules and avoids the slow early iterates.
        if t > steps // 2:
            average += theta
            averaged_steps += 1

        if objective is not None:
            value = float(objective(theta))
            if value < best_value - max(tolerance, 0.0):
                best_value = value
                best_theta = np.array(theta)
                since_improvement = 0
            else:
                since_improvement += 1
                if tolerance > 0.0 and since_improvement >= stall_budget:
                    break

    if objective is not None:
        averaged = domain.project(average / max(averaged_steps, 1))
        if float(objective(averaged)) < best_value:
            return averaged
        return best_theta
    return domain.project(average / max(averaged_steps, 1))
