"""Dispatching solver for CM queries on a histogram.

``minimize_loss(loss, histogram)`` computes the (non-private) answer
``q_l(D) = argmin_{theta in Theta} l(theta; D)`` of Section 2.2. Dispatch
order:

1. the loss's own ``exact_minimizer`` (closed form), if it provides one;
2. projected subgradient descent with a step schedule driven by the loss's
   declared Lipschitz / strong-convexity traits, with a final polish pass.

The result records the achieved objective so callers can compute the error
quantities of Definitions 2.2 and 2.3 without re-evaluating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.histogram import Histogram
from repro.optimize.gradient_descent import projected_gradient_descent


@dataclass(frozen=True)
class MinimizeResult:
    """Outcome of one convex minimization."""

    theta: np.ndarray
    value: float
    exact: bool

    def __iter__(self):
        yield self.theta
        yield self.value


def minimize_loss(loss, histogram: Histogram, *, steps: int = 400,
                  start: np.ndarray | None = None) -> MinimizeResult:
    """Minimize ``theta -> loss.loss_on(theta, histogram)`` over the domain.

    Parameters
    ----------
    loss:
        A :class:`repro.losses.base.LossFunction`.
    histogram:
        The (public or private — privacy is the caller's concern) data
        distribution defining the objective.
    steps:
        Iteration budget for the gradient solver when no closed form exists.
    start:
        Optional warm start.
    """
    exact_theta = loss.exact_minimizer(histogram)
    if exact_theta is not None:
        theta = loss.domain.project(np.asarray(exact_theta, dtype=float))
        return MinimizeResult(theta, float(loss.loss_on(theta, histogram)), True)

    lipschitz = loss.lipschitz_bound if loss.lipschitz_bound else 1.0
    theta = projected_gradient_descent(
        lambda point: loss.gradient_on(point, histogram),
        loss.domain,
        steps=steps,
        lipschitz=lipschitz,
        strong_convexity=loss.strong_convexity,
        start=start,
        objective=lambda point: loss.loss_on(point, histogram),
    )
    return MinimizeResult(theta, float(loss.loss_on(theta, histogram)), False)
