"""Convex parameter domains ``Theta`` and their Euclidean projections.

The paper's restrictions (Section 1.1) are stated for ``Theta`` contained in
the unit L2 ball; the ``d-Bounded`` condition is exactly
``Theta ⊆ {theta : ||theta||_2 <= 1}``. :class:`L2Ball` is therefore the
primary domain; :class:`Box` and :class:`Simplex` cover the other standard
constraint sets so losses with different geometry can be expressed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite_array, check_positive


class Domain(ABC):
    """A closed convex subset of ``R^dim`` with an exact projection."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)

    @abstractmethod
    def project(self, theta: np.ndarray) -> np.ndarray:
        """Euclidean projection of ``theta`` onto the domain."""

    @abstractmethod
    def diameter(self) -> float:
        """L2 diameter ``max ||theta - theta'||_2`` (may be ``inf``)."""

    def contains(self, theta: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``theta`` lies in the domain up to tolerance."""
        theta = np.asarray(theta, dtype=float)
        return bool(np.linalg.norm(self.project(theta) - theta) <= tol)

    def center(self) -> np.ndarray:
        """A canonical interior point (used as solver starting point)."""
        return self.project(np.zeros(self.dim))

    def random_point(self, rng=None) -> np.ndarray:
        """A random point of the domain (projection of a Gaussian draw)."""
        generator = as_generator(rng)
        return self.project(generator.standard_normal(self.dim))

    def _check_theta(self, theta) -> np.ndarray:
        theta = check_finite_array(theta, "theta", ndim=1)
        if theta.shape[0] != self.dim:
            raise ValidationError(
                f"theta has dim {theta.shape[0]}, domain has dim {self.dim}"
            )
        return theta


class L2Ball(Domain):
    """The ball ``{theta : ||theta - center||_2 <= radius}``.

    With ``radius=1`` and ``center=0`` this is the paper's ``d-Bounded``
    domain.
    """

    def __init__(self, dim: int, radius: float = 1.0,
                 center: np.ndarray | None = None) -> None:
        super().__init__(dim)
        self.radius = check_positive(radius, "radius")
        if center is None:
            center = np.zeros(dim)
        center = check_finite_array(center, "center", ndim=1)
        if center.shape[0] != dim:
            raise ValidationError(
                f"center has dim {center.shape[0]}, expected {dim}"
            )
        self.center_point = center

    def project(self, theta: np.ndarray) -> np.ndarray:
        theta = self._check_theta(theta)
        offset = theta - self.center_point
        norm = float(np.linalg.norm(offset))
        if norm <= self.radius:
            return theta
        return self.center_point + offset * (self.radius / norm)

    def diameter(self) -> float:
        return 2.0 * self.radius

    def boundary_point(self, direction: np.ndarray) -> np.ndarray:
        """The boundary point in ``direction`` (Frank–Wolfe linear oracle)."""
        direction = self._check_theta(direction)
        norm = float(np.linalg.norm(direction))
        if norm == 0.0:
            return np.array(self.center_point)
        return self.center_point + direction * (self.radius / norm)


class Box(Domain):
    """The axis-aligned box ``{theta : lows <= theta <= highs}``."""

    def __init__(self, lows: np.ndarray, highs: np.ndarray) -> None:
        lows = check_finite_array(lows, "lows", ndim=1)
        highs = check_finite_array(highs, "highs", ndim=1)
        if lows.shape != highs.shape:
            raise ValidationError("lows and highs must have matching shapes")
        if np.any(highs < lows):
            raise ValidationError("every high must be >= the matching low")
        super().__init__(lows.shape[0])
        self.lows = lows
        self.highs = highs

    @classmethod
    def unit(cls, dim: int) -> "Box":
        """The unit box ``[0, 1]^dim``."""
        return cls(np.zeros(dim), np.ones(dim))

    @classmethod
    def symmetric(cls, dim: int, half_width: float = 1.0) -> "Box":
        """The symmetric box ``[-w, w]^dim``."""
        half_width = check_positive(half_width, "half_width")
        return cls(-half_width * np.ones(dim), half_width * np.ones(dim))

    def project(self, theta: np.ndarray) -> np.ndarray:
        theta = self._check_theta(theta)
        return np.clip(theta, self.lows, self.highs)

    def diameter(self) -> float:
        return float(np.linalg.norm(self.highs - self.lows))


class Simplex(Domain):
    """The probability simplex ``{theta >= 0 : sum(theta) = 1}``.

    Projection uses the sorting algorithm of Held–Wolfe–Crowder (also
    Duchi et al. 2008), exact in ``O(d log d)``.
    """

    def project(self, theta: np.ndarray) -> np.ndarray:
        theta = self._check_theta(theta)
        sorted_desc = np.sort(theta)[::-1]
        cumulative = np.cumsum(sorted_desc) - 1.0
        ranks = np.arange(1, self.dim + 1)
        candidates = sorted_desc - cumulative / ranks
        rho = int(np.nonzero(candidates > 0)[0][-1])
        tau = cumulative[rho] / (rho + 1)
        return np.clip(theta - tau, 0.0, None)

    def diameter(self) -> float:
        return float(np.sqrt(2.0))

    def center(self) -> np.ndarray:
        return np.full(self.dim, 1.0 / self.dim)
