"""`repro.serve` — multi-tenant query serving on top of the mechanisms.

The mechanisms in :mod:`repro.core` are single-object, in-process state
machines. This package turns them into a *service*: per-analyst sessions
with lifecycle and snapshots (:mod:`~repro.serve.session`), config-driven
mechanism construction (:mod:`~repro.serve.registry`), a crash-safe
append-only privacy-budget ledger (:mod:`~repro.serve.ledger`), an answer
cache serving duplicate queries at zero privacy cost
(:mod:`~repro.serve.cache`), batch planning with cross-session concurrency
(:mod:`~repro.serve.planner`), and the :class:`PMWService` front door
(:mod:`~repro.serve.service`).

Mechanism lanes are submitted as whole batches: the planner's executor
pre-warms each session through the batched evaluation engine
(:mod:`repro.engine`) before streaming the lane in order, so data-side
minimizations for a lane collapse into one vectorized pass.

Durability is two-tier — the write-ahead ledger plus seq-stamped atomic
snapshots — and the checkpointing subsystem
(:mod:`~repro.serve.checkpoint`) keeps restart cost bounded: a
:class:`Checkpointer` takes periodic stamped checkpoints (restores
replay only the journal suffix past the stamp) and compacts the ledger
(rotation with run-length-encoded ``baseline`` records, bitwise-exact
replayed totals).

On top of the service sits the concurrent request gateway
(:mod:`~repro.serve.gateway`): bounded per-session FIFO queues over a
cross-session worker pool, admission control with typed
:class:`~repro.exceptions.Overloaded` / :class:`~repro.exceptions.RequestTimeout`
shedding, coalescing of queued same-session requests into
engine-prewarmed batches, and a :class:`~repro.serve.metrics.GatewayMetrics`
registry. The gateway splits traffic into priority lanes (cache-hit
reads never queue behind mechanism updates) and sheds deadline-doomed
requests at enqueue. For callers facing a sharded deployment,
:mod:`~repro.serve.resilience` adds a :class:`Deadline` propagated end
to end, per-shard :class:`CircuitBreaker`\\ s, and a
:class:`ResilientClient` whose retries are exactly-once: answers are
journaled through the ledger under client-minted idempotency keys, so
a retry after a mid-reply crash replays the recorded answer bitwise
instead of re-spending budget. See ``docs/serve.md`` for lifecycle,
ledger, cache, and gateway semantics.
"""

from repro.serve.cache import AnswerCache, CachedAnswer, CacheStats
from repro.serve.checkpoint import Checkpointer, checkpoint_stamp
from repro.serve.gateway import ServiceGateway
from repro.serve.ledger import (
    BudgetLedger,
    LedgerState,
    fsync_dir,
    replay_ledger,
)
from repro.serve.metrics import GatewayMetrics, LatencyHistogram
from repro.serve.planner import BatchPlan, concurrent_map, plan_batch
from repro.serve.registry import (
    MechanismRegistry,
    build_oracle,
    default_registry,
)
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    ResilientClient,
    full_jitter_delay,
)
from repro.serve.service import PMWService
from repro.serve.shard import (
    ConsistentHashRouter,
    FaultPlan,
    ShardedService,
)
from repro.serve.session import (
    ServeResult,
    Session,
    query_fingerprint,
    try_fingerprint,
)

__all__ = [
    "PMWService",
    "ShardedService", "ConsistentHashRouter", "FaultPlan",
    "ServiceGateway", "GatewayMetrics", "LatencyHistogram",
    "Session", "ServeResult", "query_fingerprint", "try_fingerprint",
    "MechanismRegistry", "default_registry", "build_oracle",
    "BudgetLedger", "LedgerState", "replay_ledger", "fsync_dir",
    "Checkpointer", "checkpoint_stamp",
    "AnswerCache", "CachedAnswer", "CacheStats",
    "BatchPlan", "plan_batch", "concurrent_map",
    "ResilientClient", "Deadline", "CircuitBreaker", "full_jitter_delay",
]
