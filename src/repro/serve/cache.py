"""Answer cache keyed by canonical loss fingerprints.

Once a mechanism has released an answer for a query, releasing the *same*
answer again for the *same* query is post-processing: it costs zero privacy
budget, regardless of how many analyst round-trips repeat it. The cache
makes that free path fast — a duplicate-heavy workload (dashboards,
retried requests, an analyst re-deriving the canonical questions) is
served at dictionary-lookup cost instead of a solver call per query.

Keys are ``(session_id, fingerprint)`` where the fingerprint is the
canonical digest from :mod:`repro.losses.fingerprint`: equal-parameter
losses hit the same entry even when the analyst rebuilt the query object.
The cache is deliberately **per-session**: each session has its own
mechanism state and hypothesis, so the same canonical query asked by a
*different* analyst's session is a fresh mechanism round with its own
privacy spend — cross-session reuse would require sharing one session's
released answers with another tenant, which is a policy decision, not a
cache optimization. Entries never expire by correctness need (a released
answer stays released) — ``max_entries`` exists purely to bound memory,
evicting least-recently used entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class CachedAnswer:
    """One released answer, replayable at zero privacy cost.

    ``hypothesis_version`` records which hypothesis version a
    *hypothesis-derived* answer was computed against (``None`` for
    answers whose value does not depend on the hypothesis — oracle
    releases — and for caches that do not track versions). Replaying at
    any later time is always privacy-free; the version only matters to
    callers that *prefer* a fresh answer once the hypothesis has moved
    (see :meth:`AnswerCache.get`'s ``version`` parameter).
    """

    value: object        # ndarray (CM query) or float (linear query)
    source: str          # provenance of the original release
    query_index: int | None
    hypothesis_version: int | None = None


@dataclass(frozen=True)
class CacheStats:
    """Aggregate counters since construction (or ``clear``).

    ``stale_misses`` counts the subset of ``misses`` caused by
    update-aware staleness: the entry existed, but its hypothesis
    version no longer matched the caller's. They separate "never
    released" from "released, then invalidated by an update" — the
    signal the ``track-hypothesis`` cache policy exists to create.
    """

    hits: int
    misses: int
    entries: int
    stale_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AnswerCache:
    """Thread-safe LRU cache of released answers.

    Parameters
    ----------
    max_entries:
        Optional capacity bound; least-recently-used entries are evicted.
        ``None`` (default) means unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], CachedAnswer] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale_misses = 0

    def get(self, session_id: str, fingerprint: str, *,
            version: int | None = None) -> CachedAnswer | None:
        """Look up a released answer; counts a hit or miss.

        ``version`` opts into **update-aware** lookups: when given, a
        hypothesis-derived entry stamped with a *different* hypothesis
        version is treated as a miss — the hypothesis has moved since the
        answer was computed, and the caller prefers a fresh round over a
        stale replay. Entries with ``hypothesis_version=None`` (oracle
        releases, untracked caches) hit regardless: their value never
        depended on the hypothesis. ``version=None`` (default) is the
        replay-forever policy — any released answer hits.
        """
        key = (session_id, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._stale(entry, version):
                self._misses += 1
                if entry is not None:
                    self._stale_misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def contains(self, session_id: str, fingerprint: str, *,
                 version: int | None = None) -> bool:
        """Membership check that does not disturb stats or LRU order.

        Applies the same update-aware staleness rule as :meth:`get` when
        ``version`` is given.
        """
        with self._lock:
            entry = self._entries.get((session_id, fingerprint))
            return entry is not None and not self._stale(entry, version)

    @staticmethod
    def _stale(entry: CachedAnswer, version: int | None) -> bool:
        return (version is not None
                and entry.hypothesis_version is not None
                and entry.hypothesis_version != version)

    def put(self, session_id: str, fingerprint: str,
            answer: CachedAnswer) -> None:
        """Record a released answer (idempotent per key).

        Array values are stored as read-only copies, so a caller mutating
        the array it received can never corrupt later replays.
        """
        if isinstance(answer.value, np.ndarray):
            frozen = np.array(answer.value)
            frozen.setflags(write=False)
            answer = CachedAnswer(value=frozen, source=answer.source,
                                  query_index=answer.query_index,
                                  hypothesis_version=answer.hypothesis_version)
        key = (session_id, fingerprint)
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def drop_session(self, session_id: str) -> int:
        """Forget a closed session's entries; returns how many were dropped."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == session_id]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def stats(self) -> CacheStats:
        """Current counters."""
        with self._lock:
            return CacheStats(self._hits, self._misses, len(self._entries),
                              self._stale_misses)

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._stale_misses = 0

    # -- snapshot / restore ---------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable content (for warm restarts via snapshots)."""
        with self._lock:
            return {
                "max_entries": self.max_entries,
                "entries": [
                    {
                        "session": key[0], "fingerprint": key[1],
                        "value": (entry.value.tolist()
                                  if isinstance(entry.value, np.ndarray)
                                  else entry.value),
                        "is_array": isinstance(entry.value, np.ndarray),
                        "source": entry.source,
                        "query_index": entry.query_index,
                        "hypothesis_version": entry.hypothesis_version,
                    }
                    for key, entry in self._entries.items()
                ],
            }

    @classmethod
    def from_state(cls, state: dict) -> "AnswerCache":
        """Rebuild a cache from :meth:`to_state` output (counters reset)."""
        cache = cls(max_entries=state.get("max_entries"))
        for record in state.get("entries", []):
            value = record["value"]
            if record["is_array"]:
                value = np.asarray(value, dtype=float)
            cache.put(record["session"], record["fingerprint"], CachedAnswer(
                value=value, source=record["source"],
                query_index=record["query_index"],
                hypothesis_version=record.get("hypothesis_version"),
            ))
        return cache

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"AnswerCache(entries={stats.entries}, hits={stats.hits}, "
            f"misses={stats.misses}, max_entries={self.max_entries})"
        )


__all__ = ["AnswerCache", "CachedAnswer", "CacheStats"]
