"""`Checkpointer` — crash-consistent checkpoints + ledger compaction.

The two durability tiers built in PRs 1–4 — the write-ahead
:class:`~repro.serve.ledger.BudgetLedger` and atomic
:meth:`~repro.serve.service.PMWService.snapshot` files — keep restart
totals exact, but left restart *cost* unbounded: a ledger-only resume
replays the entire journal history, so a long-lived deployment gets
slower to recover every day, and nothing ever shrinks the journal. The
checkpointer closes that gap:

- :meth:`Checkpointer.checkpoint` takes an atomic service snapshot
  stamped with the ledger's high-water ``seq``. Restoring from it
  replays only the journal *suffix* past the stamp
  (:meth:`PMWService.restore <repro.serve.service.PMWService.restore>`
  reconciles the tiers on the stamp), so restart cost is O(crash
  window), not O(history).
- :meth:`Checkpointer.maybe_checkpoint` makes it periodic: checkpoint
  whenever the journal has advanced ``every_records`` past the last
  stamp — call it from a serving loop, a timer, or a gateway-idle hook.
- :meth:`Checkpointer.compact` rotates the journal
  (:meth:`BudgetLedger.compact <repro.serve.ledger.BudgetLedger.compact>`):
  the spend history is folded into run-length-encoded ``baseline``
  records, the old segment is archived, and a fresh checkpoint is taken
  at the post-rotation watermark — bounding journal size *and* replay
  cost for services that run for months.

When the service fronts a :class:`~repro.serve.gateway.ServiceGateway`,
pass it in: captures run inside ``gateway.quiesce()``, so no write-ahead
spend can land between the snapshot and its seq stamp — the stamp and
the captured accountants describe the same instant. Without a gateway,
per-session ``last_spend_seq`` tracking makes a racing capture safe
anyway (restore never re-applies a spend the snapshot already contains);
the quiesce simply removes the race entirely.

Every fault point is covered by the crash-injection suite
(``tests/serve/test_checkpoint.py``): a torn checkpoint tmp file is
ignored, a half-finished rotation is retried, and a torn journal suffix
after a checkpoint restores to bitwise-exact pre-crash totals.

Usage::

    service = PMWService(dataset, ledger_path="budget.jsonl")
    checkpointer = Checkpointer(service, "checkpoints/",
                                every_records=1000)
    ...
    checkpointer.maybe_checkpoint()      # in the serving loop
    checkpointer.compact()               # cron: rotate + re-stamp
    # after a crash:
    service = Checkpointer.restore(dataset, "checkpoints/",
                                   ledger_path="budget.jsonl")
"""

from __future__ import annotations

import json
import os
import threading

from repro.exceptions import ValidationError
from repro.obs import trace
from repro.serve.ledger import fsync_dir

#: Checkpoint files are ``checkpoint-<generation>.json``; a crash
#: mid-write leaves only a ``.json.tmp`` artifact, which discovery
#: ignores.
_PREFIX = "checkpoint-"
_SUFFIX = ".json"


class Checkpointer:
    """Periodic, on-demand, and compaction-coupled service checkpoints.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.PMWService` to checkpoint.
    directory:
        Where checkpoint files live; created if missing. Discovery
        (:meth:`latest`) and pruning (``keep``) both operate on this
        directory, so point :meth:`restore` at the same one.
    gateway:
        Optional :class:`~repro.serve.gateway.ServiceGateway` fronting
        the service. When given, every capture runs inside
        ``gateway.quiesce()`` — claimed batches finish, nothing new
        starts, and the seq stamp is race-free.
    every_records:
        Journal-advance threshold for :meth:`maybe_checkpoint` (ledger
        records past the last stamp). ``None`` disables the periodic
        trigger (on-demand only).
    keep:
        Checkpoint generations to retain; older files are pruned after
        each successful capture (the newest is never pruned).
    """

    def __init__(self, service, directory, *, gateway=None,
                 every_records: int | None = None, keep: int = 2) -> None:
        if every_records is not None and every_records < 1:
            raise ValidationError(
                f"every_records must be >= 1 or None, got {every_records}"
            )
        if keep < 1:
            raise ValidationError(f"keep must be >= 1, got {keep}")
        self.service = service
        self.gateway = gateway
        self.directory = os.fspath(directory)
        self.every_records = every_records
        self.keep = int(keep)
        self._lock = threading.Lock()
        os.makedirs(self.directory, exist_ok=True)
        latest = self.latest()
        self._last_stamp = (-1 if latest is None
                            else checkpoint_stamp(latest))

    # -- discovery -----------------------------------------------------------

    def checkpoints(self) -> list[str]:
        """Completed checkpoint paths, oldest first. Torn ``.tmp``
        artifacts from a crash mid-write are not checkpoints."""
        return discover_checkpoints(self.directory)

    def latest(self) -> str | None:
        """Newest completed checkpoint, or ``None``."""
        paths = self.checkpoints()
        return paths[-1] if paths else None

    @property
    def last_stamp(self) -> int:
        """Ledger seq of the newest checkpoint (``-1`` when none, or
        when the newest checkpoint was taken by a ledger-less service)."""
        with self._lock:
            return self._last_stamp

    # -- capturing -----------------------------------------------------------

    def checkpoint(self) -> str:
        """Take one atomic, seq-stamped checkpoint; returns its path.

        The write is tmp + rename + directory fsync
        (:meth:`PMWService.snapshot <repro.serve.service.PMWService.snapshot>`),
        so a crash at any byte of the capture leaves the previous
        checkpoint generation intact and discoverable. Old generations
        beyond ``keep`` are pruned only after the new file is durable.
        """
        self._check_not_gateway_worker()
        with self._lock:
            return self._checkpoint_locked()

    def _check_not_gateway_worker(self) -> None:
        """Refuse checkpoint work on a gateway worker thread BEFORE
        taking the checkpointer lock: a worker blocked here while
        another thread's checkpoint quiesces the gateway is a deadlock
        (the quiesce waits for this worker's batch; this worker waits
        for the lock)."""
        if self.gateway is not None and self.gateway.is_worker_thread():
            raise ValidationError(
                "checkpoint operations cannot run on a gateway worker "
                "thread (e.g. inside a request future's done callback) "
                "— they quiesce the gateway, which must wait for that "
                "very worker; schedule checkpoints from an external "
                "thread"
            )

    def _checkpoint_locked(self, *, quiesce: bool = True) -> str:
        generation = self._next_generation()
        path = os.path.join(
            self.directory, f"{_PREFIX}{generation:08d}{_SUFFIX}")
        with trace.span("checkpoint.capture", generation=generation):
            if quiesce and self.gateway is not None:
                with self.gateway.quiesce():
                    state = self.service.snapshot(path)
            else:
                state = self.service.snapshot(path)
        stamp = state.get("ledger_seq")
        self._last_stamp = -1 if stamp is None else int(stamp)
        self._prune()
        return path

    def maybe_checkpoint(self) -> str | None:
        """Checkpoint iff the journal advanced ``every_records`` past the
        last stamp; returns the new path or ``None`` (also ``None`` when
        the service has no ledger or no threshold is configured)."""
        self._check_not_gateway_worker()
        with self._lock:
            if self.every_records is None or self.service.ledger is None:
                return None
            advanced = self.service.ledger.last_seq - self._last_stamp
            if advanced < self.every_records:
                return None
            return self._checkpoint_locked()

    def compact(self, *, archive_dir=None) -> tuple[str, str]:
        """Rotate the journal, then checkpoint at the new watermark.

        Returns ``(checkpoint_path, archive_path)``. Rotation first:
        the fresh checkpoint's stamp then lands *past* the rotation
        header, so the steady-state restore is checkpoint + (tiny)
        suffix. A crash between the two steps is safe — the previous
        checkpoint's stamp predates the rotation, which restore detects
        (``compacted_through >= stamp``) and falls back to full-replay
        authority on the journal the rotation just made small.

        Runs under ``gateway.quiesce()`` when a gateway was given, so
        rotation and checkpoint describe the same instant.
        """
        if self.service.ledger is None:
            raise ValidationError(
                "compact() needs a service with a budget ledger"
            )
        self._check_not_gateway_worker()
        with self._lock, trace.span("checkpoint.compact"):
            if self.gateway is not None:
                with self.gateway.quiesce():
                    archive = self.service.ledger.compact(
                        archive_dir=archive_dir)
                    # Already inside the quiesce: a nested one would be
                    # redundant (the counter allows it, but pointless).
                    path = self._checkpoint_locked(quiesce=False)
            else:
                archive = self.service.ledger.compact(
                    archive_dir=archive_dir)
                path = self._checkpoint_locked()
            return path, archive

    # -- restoring -----------------------------------------------------------

    @classmethod
    def restore(cls, datasets, directory, *, ledger_path=None, **kwargs):
        """Rebuild a service from the newest checkpoint + ledger suffix.

        The restart path this subsystem exists for: finds the newest
        completed checkpoint under ``directory`` (``None`` degrades to a
        ledger-only cold resume) and hands it to
        :meth:`PMWService.restore <repro.serve.service.PMWService.restore>`
        together with ``ledger_path``; extra kwargs (``registry``,
        ``params_override``, ``rng``, ...) pass through.
        """
        from repro.serve.service import PMWService

        paths = discover_checkpoints(directory)
        snapshot = paths[-1] if paths else None
        return PMWService.restore(datasets, snapshot=snapshot,
                                  ledger_path=ledger_path, **kwargs)

    # -- internals -----------------------------------------------------------

    def _next_generation(self) -> int:
        best = -1
        for path in self.checkpoints():
            name = os.path.basename(path)
            digits = name[len(_PREFIX):-len(_SUFFIX)]
            try:
                best = max(best, int(digits))
            except ValueError:
                continue
        return best + 1

    def _prune(self) -> None:
        paths = self.checkpoints()
        for stale in paths[:-self.keep]:
            os.remove(stale)
        if len(paths) > self.keep:
            fsync_dir(self.directory)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpointer(directory={self.directory!r}, "
            f"last_stamp={self.last_stamp}, "
            f"every_records={self.every_records})"
        )


def discover_checkpoints(directory) -> list[str]:
    """Completed checkpoint paths under ``directory``, oldest first
    (generation names sort chronologically; ``.tmp`` artifacts from a
    crash mid-write are excluded). The single source of truth for
    discovery — :meth:`Checkpointer.checkpoints`, :meth:`.latest`, and
    :meth:`.restore` must all agree on what the newest checkpoint is."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith(_PREFIX) and name.endswith(_SUFFIX)
    )


def checkpoint_stamp(path) -> int:
    """The ``ledger_seq`` stamp of a checkpoint file (``-1`` when the
    snapshot was taken without a ledger)."""
    with open(path, encoding="utf-8") as handle:
        stamp = json.load(handle).get("ledger_seq")
    return -1 if stamp is None else int(stamp)


__all__ = ["Checkpointer", "checkpoint_stamp", "discover_checkpoints"]
