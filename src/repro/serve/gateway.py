"""`ServiceGateway` — the concurrent front end over :class:`PMWService`.

The service itself is call-and-wait: ``submit`` blocks the caller for a
full mechanism round, and concurrency exists only inside one
``answer_batch`` call. Under burst load from many analysts that
serializes everything on the submitting thread. The gateway decouples
request arrival from execution:

- **bounded per-session FIFO queues** — requests to different sessions
  run in parallel on a shared worker pool, while each session's
  privacy-state mutations stay strictly serialized (one worker owns a
  session at a time, and the session lock backstops it);
- **priority lanes** — each request rides the ``"fast"`` or ``"bulk"``
  lane (auto-classified: a query whose answer is already cached is
  fast). Workers prefer fast work and ``fast_workers`` threads are
  reserved for it, so a cheap cache-hit read never queues behind a
  multi-second MW update from another session; per-lane queue-wait
  histograms make the isolation measurable;
- **admission control** — a full session queue or a gateway-wide
  in-flight bound sheds with a typed :class:`~repro.exceptions.Overloaded`
  *before* the request touches any mechanism state, and a queued request
  whose deadline passes unclaimed sheds with
  :class:`~repro.exceptions.RequestTimeout`. Once a worker has claimed a
  request into a batch, it always runs to completion: a claimed round's
  write-ahead ledger spend is never abandoned mid-flight;
- **deadline-aware admission** — under pressure (all workers busy), a
  request whose deadline is already smaller than the lane's observed
  queue-wait quantile (from the obs log-scale histograms) sheds at
  *enqueue* with :class:`~repro.exceptions.DeadlineUnmeetable` instead
  of wasting a queue slot and timing out after the wait. All sheds are
  :class:`~repro.exceptions.Shed` subclasses with a machine-readable
  ``reason``, mirrored on the ``gateway.shed{reason=...}`` counter;
- **batch coalescing** — everything waiting on one session when a worker
  claims it is merged into a single
  :meth:`~repro.serve.service.PMWService.serve_session_batch` call, so
  queue pressure converts into the batched evaluation path (the planner
  dedupes and lanes the merged batch, and the session pre-warms the
  mechanism lane through :mod:`repro.engine`);
- **drain/shutdown** — ``close(drain=True)`` stops admissions and waits
  for the queues to empty; ``close(drain=False)`` sheds every unclaimed
  request with :class:`Overloaded` but still lets claimed batches finish,
  so ledger totals stay exact through a forced shutdown.

Observability lives in :class:`~repro.serve.metrics.GatewayMetrics`
(since PR 6 a façade over :class:`repro.obs.MetricsRegistry` — pass
``metrics=GatewayMetrics(registry=...)`` to share one namespace with
mechanism spans and budget telemetry). When a tracer is installed
(:func:`repro.obs.trace.install`), every admitted request is stamped
with a trace ID at submission, and the worker that executes its batch
opens a ``gateway.execute`` root span under that ID — all spans below
(planner, session, mechanism phases, ledger) nest automatically.

Usage::

    with service.gateway(workers=8, max_queue_depth=32) as gateway:
        futures = [gateway.submit_async(sid, q) for q in queries]
        answers = [f.result() for f in futures]
    print(gateway.metrics.describe())
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeout

from repro.exceptions import (
    DeadlineUnmeetable,
    Overloaded,
    RequestTimeout,
    ValidationError,
)
from repro.obs import trace
from repro.serve.metrics import LANES, GatewayMetrics
from repro.serve.resilience import Deadline
from repro.serve.session import try_fingerprint

#: Sentinel distinguishing "use the gateway default" from "no timeout".
_UNSET = object()


class _Request:
    """One queued query with its completion future and deadline."""

    __slots__ = ("session_id", "query", "future", "enqueued_at", "timeout",
                 "claimed", "trace_id", "lane", "idempotency_key")

    def __init__(self, session_id: str, query, timeout: float | None,
                 lane: str = "bulk",
                 idempotency_key: str | None = None) -> None:
        self.session_id = session_id
        self.query = query
        self.future: Future = Future()
        self.enqueued_at = time.monotonic()
        self.timeout = timeout
        self.claimed = False
        self.lane = lane
        self.idempotency_key = idempotency_key
        # Minted at the admission edge so every span this request causes
        # — on whichever worker thread — shares one trace (None when
        # tracing is off; propagating None costs nothing).
        self.trace_id = trace.new_trace_id()

    @property
    def deadline(self) -> float | None:
        if self.timeout is None:
            return None
        return self.enqueued_at + self.timeout


class ServiceGateway:
    """Concurrent, admission-controlled request front end for a service.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.PMWService` to serve through.
    workers:
        Worker threads in the cross-session pool. Each worker owns at
        most one session at a time, so up to ``workers`` *sessions*
        execute concurrently; within a session, requests are strictly
        FIFO-serialized.
    max_queue_depth:
        Per-session bound on queued (unclaimed) requests; submissions
        beyond it shed with :class:`Overloaded`.
    max_in_flight:
        Optional gateway-wide bound on admitted-but-unfinished requests
        across all sessions (queued + claimed); ``None`` (default) means
        only the per-session bound applies.
    max_coalesce:
        Most requests a worker merges into one coalesced batch.
    default_timeout:
        Deadline (seconds, from enqueue) applied when ``submit`` /
        ``submit_async`` does not pass ``timeout``. ``None`` means wait
        forever.
    fast_workers:
        Worker threads reserved for the ``"fast"`` lane (they idle
        rather than claim bulk work, so a burst of MW updates can never
        occupy every thread). Default 0: every worker serves both
        lanes, fast first — lane *priority* is always on; lane
        *reservation* is opt-in because each reserved thread reduces
        bulk concurrency by one.
    admission_quantile, admission_min_samples:
        Deadline-aware admission sheds a request at enqueue when the
        request's lane has at least ``admission_min_samples`` observed
        queue waits, every worker is occupied, and the lane's
        ``admission_quantile`` queue wait already exceeds the request's
        deadline.
    use_cache, on_halt:
        Serving flags forwarded to every coalesced
        :meth:`~repro.serve.service.PMWService.serve_session_batch` call.
        They are gateway-wide so any subset of queued requests can merge
        into one batch. The ``on_halt="hypothesis"`` default keeps
        batches total across a mid-batch halt.
    metrics:
        Optional pre-built :class:`GatewayMetrics` (e.g. shared across
        gateways); by default a fresh registry.
    """

    def __init__(self, service, *, workers: int = 4,
                 max_queue_depth: int = 64,
                 max_in_flight: int | None = None,
                 max_coalesce: int = 16,
                 default_timeout: float | None = None,
                 fast_workers: int = 0,
                 admission_quantile: float = 0.9,
                 admission_min_samples: int = 32,
                 use_cache: bool = True, on_halt: str = "hypothesis",
                 metrics: GatewayMetrics | None = None) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if not 0 <= fast_workers < workers:
            raise ValidationError(
                f"fast_workers must leave at least one general worker "
                f"(0 <= fast_workers < workers), got {fast_workers} of "
                f"{workers}"
            )
        if not 0.0 < admission_quantile < 1.0:
            raise ValidationError(
                f"admission_quantile must be in (0, 1), got "
                f"{admission_quantile}"
            )
        if admission_min_samples < 1:
            raise ValidationError(
                f"admission_min_samples must be >= 1, got "
                f"{admission_min_samples}"
            )
        if max_queue_depth < 1:
            raise ValidationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_in_flight is not None and max_in_flight < 1:
            raise ValidationError(
                f"max_in_flight must be >= 1 or None, got {max_in_flight}"
            )
        if max_coalesce < 1:
            raise ValidationError(
                f"max_coalesce must be >= 1, got {max_coalesce}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ValidationError(
                f"default_timeout must be > 0 or None, got {default_timeout}"
            )
        if on_halt not in ("raise", "hypothesis"):
            raise ValidationError(
                f"on_halt must be 'raise' or 'hypothesis', got {on_halt!r}"
            )
        self.service = service
        self.workers = int(workers)
        self.max_queue_depth = int(max_queue_depth)
        self.max_in_flight = (None if max_in_flight is None
                              else int(max_in_flight))
        self.max_coalesce = int(max_coalesce)
        self.default_timeout = default_timeout
        self.fast_workers = int(fast_workers)
        self.admission_quantile = float(admission_quantile)
        self.admission_min_samples = int(admission_min_samples)
        self.use_cache = bool(use_cache)
        self.on_halt = on_halt
        self.metrics = metrics if metrics is not None else GatewayMetrics()

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # workers wait here
        self._idle = threading.Condition(self._lock)   # drain waiters here
        # session -> lane -> FIFO of unclaimed requests
        self._queues: dict[str, dict[str, deque[_Request]]] = {}
        # lane -> sessions with unclaimed work in that lane
        self._ready: dict[str, deque[str]] = {lane: deque()
                                              for lane in LANES}
        self._scheduled: set[tuple[str, str]] = set()  # mirror of _ready
        self._busy: set[str] = set()        # sessions a worker owns now
        self._in_flight = 0                 # admitted and unfinished
        self._paused = 0                    # quiesce() depth: no claiming
        self._closing = False               # no new admissions
        self._shutdown = False              # workers may exit
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             args=(index < self.fast_workers,),
                             name=f"gateway-worker-{index}", daemon=True)
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------

    def submit_async(self, session_id: str, query, timeout=_UNSET, *,
                     lane: str | None = None, deadline=None,
                     idempotency_key: str | None = None) -> Future:
        """Enqueue one query; returns a future resolving to a
        :class:`~repro.serve.session.ServeResult`.

        Sheds immediately with :class:`Overloaded` when the gateway is
        closing, the session queue is at ``max_queue_depth``, or the
        gateway-wide ``max_in_flight`` bound is reached — and with
        :class:`~repro.exceptions.DeadlineUnmeetable` when, under full
        worker occupancy, the lane's observed queue-wait quantile
        already exceeds the request's deadline (shed at enqueue, not
        after queueing). A ``timeout`` (default: the gateway's
        ``default_timeout``) bounds how long the request may wait
        *unclaimed*; expiry surfaces as :class:`RequestTimeout` on the
        future — detected lazily, when a worker next claims from this
        session's queue, so the future may resolve later than the
        deadline itself (there is no timer thread). Use the blocking
        :meth:`submit` for a waiter-enforced deadline, or pass
        ``future.result(timeout=...)`` your own bound. Unknown or
        closed sessions raise :class:`ValidationError` at submission.

        ``lane`` pins the priority lane (``"fast"``/``"bulk"``); the
        default auto-classifies — a fingerprintable query whose answer
        is already cached rides the fast lane. ``deadline`` (a
        :class:`~repro.serve.resilience.Deadline`, or seconds) is an
        alternative spelling of ``timeout`` that also propagates into
        the engine-batching layer. ``idempotency_key`` flows through to
        the service for exactly-once retry replay.

        ``future.cancel()`` works while the request is still queued
        (it is dropped at claim time, having touched no mechanism
        state); once a worker claims it the future is RUNNING and the
        round always completes.
        """
        return self._submit(session_id, query, timeout, lane=lane,
                            deadline=deadline,
                            idempotency_key=idempotency_key).future

    def submit(self, session_id: str, query, timeout=_UNSET, *,
               lane: str | None = None, deadline=None,
               idempotency_key: str | None = None):
        """Enqueue one query and wait for its answer.

        Blocking form of :meth:`submit_async`. If the deadline passes
        while the request is still queued, it is shed and
        :class:`RequestTimeout` raises; if a worker claimed it first,
        the call waits for the (already-paid-for) answer regardless —
        a claimed round's ledger spend is never orphaned.
        """
        request = self._submit(session_id, query, timeout, lane=lane,
                               deadline=deadline,
                               idempotency_key=idempotency_key)
        if request.timeout is None:
            return request.future.result()
        try:
            return request.future.result(timeout=request.timeout)
        except FutureTimeout:
            if self._shed_unclaimed(request):
                raise RequestTimeout(
                    f"request to {session_id!r} unclaimed after "
                    f"{request.timeout:g}s",
                    session_id=session_id, waited=request.timeout,
                ) from None
            # Claimed while we were timing out: the round ran (and its
            # spend is journaled) — deliver the answer.
            return request.future.result()

    def _submit(self, session_id: str, query, timeout, *,
                lane: str | None = None, deadline=None,
                idempotency_key: str | None = None) -> _Request:
        if deadline is not None:
            if isinstance(deadline, (int, float)):
                deadline = Deadline.after(deadline)
            timeout = deadline.remaining()
            if timeout <= 0:
                self.metrics.record_shed("deadline", session_id)
                raise DeadlineUnmeetable(
                    f"request to {session_id!r} arrived with an already-"
                    f"expired deadline", session_id=session_id,
                    deadline_remaining=timeout, estimated_wait=0.0,
                )
        if timeout is _UNSET:
            timeout = self.default_timeout
        if timeout is not None and timeout <= 0:
            raise ValidationError(
                f"timeout must be > 0 or None, got {timeout}"
            )
        # Fail fast on unknown/closed sessions, outside the gateway lock.
        session = self.service.session(session_id)
        if session.closed:
            raise ValidationError(f"session {session_id!r} is closed")
        lane = self._classify_lane(session, session_id, query, lane)
        with self._lock:
            if self._closing:
                self.metrics.record_shed("shutdown", session_id)
                raise Overloaded(
                    "gateway is draining and admits no new requests",
                    session_id=session_id, reason="shutdown",
                )
            lanes = self._queues.setdefault(
                session_id, {name: deque() for name in LANES})
            depth = sum(len(q) for q in lanes.values())
            if depth >= self.max_queue_depth:
                self.metrics.record_shed("overload", session_id)
                raise Overloaded(
                    f"session {session_id!r} queue is full "
                    f"({self.max_queue_depth} deep)",
                    session_id=session_id,
                )
            if (self.max_in_flight is not None
                    and self._in_flight >= self.max_in_flight):
                self.metrics.record_shed("overload", session_id)
                raise Overloaded(
                    f"gateway at max_in_flight={self.max_in_flight}",
                    session_id=session_id,
                )
            if timeout is not None and self._in_flight >= self.workers:
                # Deadline-aware admission: only consulted under
                # pressure (every worker plausibly occupied — an idle
                # gateway serves immediately no matter what history
                # says), and only once the lane's queue-wait histogram
                # has enough samples to estimate from.
                estimate = self.metrics.estimated_queue_wait(
                    lane, quantile=self.admission_quantile,
                    min_samples=self.admission_min_samples)
                if estimate is not None and estimate > timeout:
                    self.metrics.record_shed("deadline", session_id)
                    raise DeadlineUnmeetable(
                        f"deadline {timeout:.3f}s cannot be met: the "
                        f"{lane!r} lane's p"
                        f"{self.admission_quantile * 100:.0f} queue "
                        f"wait is {estimate:.3f}s",
                        session_id=session_id,
                        deadline_remaining=timeout,
                        estimated_wait=estimate,
                    )
            request = _Request(session_id, query, timeout, lane=lane,
                               idempotency_key=idempotency_key)
            lanes[lane].append(request)
            self._in_flight += 1
            self.metrics.record_submit(session_id, depth + 1)
            self._schedule_locked(session_id, lane)
            self._notify_work_locked((lane,))
        return request

    def _notify_work_locked(self, lanes) -> None:
        """Wake enough workers that one *eligible* waiter must hear it.

        Every worker sees the fast lane, so one wakeup suffices — but
        waiters are heterogeneous: with reserved fast workers, a bulk
        readiness change notified to a single waiter could land on a
        fast-only worker the bulk lane is invisible to, and the wakeup
        would be lost. Waking ``fast_workers + 1`` guarantees a general
        worker is among them (extras re-check and re-sleep); a blanket
        ``notify_all`` would thundering-herd the whole pool on every
        submit.
        """
        if self.fast_workers and "bulk" in lanes:
            self._work.notify(self.fast_workers + 1)
        else:
            self._work.notify()

    def _classify_lane(self, session, session_id: str, query,
                       lane: str | None) -> str:
        """Explicit lane, or auto: cached answers ride the fast lane.

        Auto-classification needs a local cache probe, so it applies to
        in-process services only (:class:`ShardedService` callers pin
        ``lane=`` explicitly — the cache lives in the shard process);
        everything else defaults to bulk.
        """
        if lane is not None:
            if lane not in LANES:
                raise ValidationError(
                    f"unknown lane {lane!r}; known: {LANES}"
                )
            return lane
        cache = getattr(self.service, "cache", None)
        contains = getattr(cache, "contains", None)
        if not callable(contains):
            return "bulk"
        fingerprint = try_fingerprint(query)
        if fingerprint is None:
            return "bulk"
        version = None
        cache_version = getattr(self.service, "_cache_version", None)
        if callable(cache_version):
            version = cache_version(session)
        return "fast" if contains(session_id, fingerprint,
                                  version=version) else "bulk"

    # -- lifecycle ----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Admitted requests not yet completed or shed."""
        with self._lock:
            return self._in_flight

    def queue_depth(self, session_id: str, lane: str | None = None) -> int:
        """Unclaimed requests queued for one session (one lane, or all)."""
        with self._lock:
            lanes = self._queues.get(session_id)
            if not lanes:
                return 0
            if lane is not None:
                queue = lanes.get(lane)
                return len(queue) if queue else 0
            return sum(len(queue) for queue in lanes.values())

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._shutdown

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request finished (or ``timeout``).

        Returns ``True`` when the gateway went idle. Admissions stay
        open — this is a barrier, not a shutdown.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._in_flight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True

    def is_worker_thread(self) -> bool:
        """Whether the calling thread is one of this gateway's workers.

        Request future done-callbacks run on worker threads; anything
        that would wait for the gateway to settle (:meth:`quiesce`,
        :meth:`drain`, a checkpoint) must not run there — it would wait
        on its own worker's batch forever. The checkpointer checks this
        *before* taking its own lock, so the deadlock cannot hide
        behind lock ordering either.
        """
        return threading.current_thread() in self._threads

    @contextlib.contextmanager
    def quiesce(self, timeout: float | None = None):
        """Pause execution — claimed batches finish, nothing new starts.

        A checkpoint barrier, not a shutdown: admissions stay open
        (requests queue up and wait), but no worker claims a batch while
        the context is held, so **no ledger spend can land** between the
        moment this returns and the moment the context exits. This is
        what lets :class:`~repro.serve.checkpoint.Checkpointer` stamp a
        service snapshot with the ledger's high-water ``seq`` with no
        concurrent-writer caveat: the stamp and the captured accountants
        describe the same instant.

        Blocks until every already-claimed batch has settled (their
        write-ahead spends are then journaled and inside the stamp).
        Raises the builtin :class:`TimeoutError` if that takes longer
        than ``timeout``; the pause is rolled back first. Reentrant and
        safe under concurrent quiescers (a depth counter).
        """
        if self.is_worker_thread():
            # A worker's own session sits in _busy until its batch
            # settles, so quiescing from a worker (e.g. a future
            # done-callback running checkpointer.maybe_checkpoint)
            # would wait on itself forever. Fail loudly instead.
            raise ValidationError(
                "quiesce() cannot be called from a gateway worker "
                "thread (e.g. inside a request future's done callback) "
                "— it would deadlock waiting for that worker's own "
                "batch to settle; schedule checkpoints from an "
                "external thread"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._paused += 1
            try:
                while self._busy:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                f"quiesce timed out with {len(self._busy)} "
                                f"sessions still executing"
                            )
                    self._idle.wait(remaining)
            except BaseException:
                self._paused -= 1
                self._work.notify_all()
                raise
        try:
            yield self
        finally:
            with self._lock:
                self._paused -= 1
                if not self._paused:
                    self._work.notify_all()

    def close(self, *, drain: bool = True,
              timeout: float | None = None) -> None:
        """Stop admissions, settle in-flight work, stop the workers.

        ``drain=True`` (default) waits for every admitted request to
        finish. ``drain=False`` sheds all *unclaimed* queued requests
        with :class:`Overloaded` (their futures fail; none of them ever
        touched a mechanism), then waits only for claimed batches —
        which always run to completion, so no write-ahead ledger spend
        is ever left without its journaled record.

        Raises the builtin :class:`TimeoutError` if settling exceeds
        ``timeout`` (claimed rounds may still be mid-stream — this is
        *not* a shed). The gateway is then still draining: admissions
        stay closed, workers stay alive, and calling :meth:`close`
        again finishes the shutdown once in-flight work settles.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        doomed: list[tuple[str, _Request]] = []
        with self._lock:
            self._closing = True
            if not drain:
                for session_id, lanes in self._queues.items():
                    for queue in lanes.values():
                        while queue:
                            request = queue.popleft()
                            self._in_flight -= 1
                            self.metrics.record_shed("shutdown", session_id)
                            doomed.append((session_id, request))
                for ready in self._ready.values():
                    ready.clear()
                self._scheduled.clear()
                # The shed may have emptied the gateway: wake any
                # concurrent drain() waiter blocked on _idle.
                self._idle.notify_all()
        # Settle shed futures OUTSIDE the lock (their done callbacks may
        # re-enter the gateway), then wait for claimed work to finish.
        for session_id, request in doomed:
            _settle_exception(request.future, Overloaded(
                "request shed by gateway shutdown",
                session_id=session_id, reason="shutdown",
            ))
        with self._lock:
            while self._in_flight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # Not a shed: claimed rounds are still running
                        # to completion. The gateway stays draining and
                        # close() can be called again to finish.
                        raise TimeoutError(
                            f"gateway close timed out with "
                            f"{self._in_flight} requests in flight"
                        )
                self._idle.wait(remaining)
            self._shutdown = True
            self._work.notify_all()
        for thread in self._threads:
            thread.join()

    def shutdown(self, *, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Full teardown: close the gateway, then the service.

        :meth:`close` settles in-flight work and stops the workers;
        :meth:`PMWService.close <repro.serve.service.PMWService.close>`
        then releases the budget ledger's file handle — the pairing that
        keeps many short-lived gateway+service stacks in one process
        from leaking a handle each. Use plain :meth:`close` when the
        service outlives the gateway.

        Between the two steps the pull-model domain telemetry
        (:func:`repro.obs.telemetry.publish_service`) gets one final
        refresh, while the quiesced service state is still readable —
        otherwise a deployment whose last scrape predates the final
        batches would archive stale budget/cache gauges. Services that
        publish their own telemetry (the sharded service pulls each
        shard's registry during its close) are left alone.
        """
        self.close(drain=drain, timeout=timeout)
        if hasattr(self.service, "cache"):
            from repro.obs.telemetry import publish_service

            publish_service(self.metrics.registry, self.service,
                            gateway=self)
        self.service.close()

    def __enter__(self) -> "ServiceGateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self, fast_only: bool) -> None:
        # Reserved workers see only the fast lane; general workers serve
        # both, fast first — so cache-hit reads never wait behind an MW
        # update from another session, in either direction of pressure.
        my_lanes = ("fast",) if fast_only else LANES
        while True:
            with self._lock:
                while not self._shutdown and (
                        self._paused
                        or not any(self._ready[lane]
                                   for lane in my_lanes)):
                    self._work.wait()
                if self._shutdown and not any(self._ready[lane]
                                              for lane in my_lanes):
                    return
                lane = next(name for name in my_lanes
                            if self._ready[name])
                session_id = self._ready[lane].popleft()
                self._scheduled.discard((session_id, lane))
                if session_id in self._busy:
                    # Another worker still owns this session; it will
                    # reschedule on release (per-session serialization).
                    continue
                self._busy.add(session_id)
                batch, expired = self._claim_batch_locked(session_id, lane)
            try:
                # Settle expired requests OUTSIDE the lock: a done
                # callback may re-enter the gateway (retry-on-shed),
                # which would deadlock on the non-reentrant lock.
                for request, error in expired:
                    _settle_exception(request.future, error)
                if batch:
                    self._execute(session_id, batch)
            finally:
                with self._lock:
                    self._busy.discard(session_id)
                    self._in_flight -= len(batch)
                    lanes = self._queues.get(session_id)
                    rescheduled = []
                    if lanes:
                        for name, queue in lanes.items():
                            if queue:
                                self._schedule_locked(session_id, name)
                                rescheduled.append(name)
                    if rescheduled:
                        self._notify_work_locked(rescheduled)
                    self._idle.notify_all()

    def _schedule_locked(self, session_id: str, lane: str) -> None:
        """Mark a session's lane ready unless queued or session-owned."""
        if (session_id, lane) in self._scheduled \
                or session_id in self._busy:
            return
        self._ready[lane].append(session_id)
        self._scheduled.add((session_id, lane))

    def _claim_batch_locked(self, session_id: str, lane: str):
        """Pop up to ``max_coalesce`` live requests from one lane;
        returns ``(batch, expired)``. Claimed requests are committed
        (their futures are transitioned to RUNNING, so a client
        ``cancel()`` can no longer race the settle); expired and
        client-cancelled ones are dropped here, with the expired futures
        returned for the caller to settle *outside* the lock."""
        lanes = self._queues.get(session_id)
        queue = lanes.get(lane) if lanes else None
        batch: list[_Request] = []
        expired: list[tuple[_Request, Exception]] = []
        now = time.monotonic()
        waits: list[float] = []
        while queue and len(batch) < self.max_coalesce:
            request = queue.popleft()
            deadline = request.deadline
            if deadline is not None and now >= deadline:
                self._in_flight -= 1
                self.metrics.record_shed("timeout", session_id)
                expired.append((request, RequestTimeout(
                    f"request to {session_id!r} expired after "
                    f"{now - request.enqueued_at:.3f}s in queue",
                    session_id=session_id,
                    waited=now - request.enqueued_at,
                )))
                continue
            if not request.future.set_running_or_notify_cancel():
                # The client cancelled the pending future: it never
                # touched mechanism state, so just drop it.
                self._in_flight -= 1
                self.metrics.record_shed("cancelled", session_id)
                continue
            request.claimed = True
            waits.append(now - request.enqueued_at)
            batch.append(request)
        if batch:
            self.metrics.record_claim(session_id, waits,
                                      len(queue) if queue else 0,
                                      lane=lane)
        return batch, expired

    def _execute(self, session_id: str, batch: list[_Request]) -> None:
        """Serve one coalesced batch and settle its futures.

        A raising batch fails all of its requests with that exception —
        per-request retries are deliberately not attempted, because a
        partially-executed lane may have released (and journaled) some
        answers already, and re-running an unfingerprintable query would
        double-spend its stream slot.
        """
        queries = [request.query for request in batch]
        serve_kwargs = {}
        if any(request.idempotency_key is not None for request in batch):
            serve_kwargs["idempotency_keys"] = [
                request.idempotency_key for request in batch]
        # The batch inherits the tightest member deadline, shipped as a
        # live Deadline so the engine-batching layer (and the shard RPC
        # boundary, via remaining-seconds encoding) can see it tick.
        deadlines = [request.deadline for request in batch
                     if request.deadline is not None]
        if deadlines:
            serve_kwargs["deadline"] = Deadline(min(deadlines))
        try:
            # Root span of the request path on this worker thread; a
            # coalesced batch runs under the oldest request's trace, with
            # the riders' trace IDs attached for offline joining.
            with trace.span(
                "gateway.execute", trace_id=batch[0].trace_id,
                session=session_id, batch_size=len(batch),
                coalesced_traces=[r.trace_id for r in batch[1:]] or None,
            ):
                results = self.service.serve_session_batch(
                    session_id, queries,
                    use_cache=self.use_cache, on_halt=self.on_halt,
                    **serve_kwargs,
                )
        except BaseException as error:
            self.metrics.record_failure(session_id, len(batch))
            for request in batch:
                _settle_exception(request.future, error)
            return
        finished = time.monotonic()
        self.metrics.record_batch(
            session_id, size=len(batch),
            sources=[result.source for result in results],
            latencies=[finished - request.enqueued_at for request in batch],
        )
        for request, result in zip(batch, results):
            _settle_result(request.future, result)

    def _shed_unclaimed(self, request: _Request) -> bool:
        """Remove a still-queued request (timeout path). Returns whether
        the shed happened; ``False`` means a worker claimed it first."""
        with self._lock:
            if request.claimed:
                return False
            lanes = self._queues.get(request.session_id)
            queue = lanes.get(request.lane) if lanes else None
            if queue is None or request not in queue:
                return False
            queue.remove(request)
            self._in_flight -= 1
            self.metrics.record_shed("timeout", request.session_id)
            self._idle.notify_all()
        _settle_exception(request.future, RequestTimeout(
            f"request to {request.session_id!r} shed after timeout",
            session_id=request.session_id, waited=request.timeout,
        ))
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceGateway(workers={self.workers}, "
            f"max_queue_depth={self.max_queue_depth}, "
            f"in_flight={self.in_flight}, closed={self.closed})"
        )


def _settle_result(future: Future, result) -> None:
    """Deliver a result, tolerating a client-cancelled future.

    Claimed futures are moved to RUNNING at claim time (uncancellable),
    so this should never race in practice — the guard keeps a worker
    thread alive even if a future somehow reached a terminal state."""
    try:
        future.set_result(result)
    except InvalidStateError:  # pragma: no cover - belt and suspenders
        pass


def _settle_exception(future: Future, error: Exception) -> None:
    """Fail a future, tolerating a client ``cancel()`` racing the shed
    (the request never touched mechanism state either way)."""
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


__all__ = ["ServiceGateway"]
