"""Crash-safe, append-only privacy-budget ledger.

Durable accounting is what separates "a DP library" from "a DP system": if
the process dies between an oracle call and the analyst's next query, the
budget that oracle call consumed is *gone from the real world* — restarting
with a fresh accountant would silently double-spend it. The ledger journals
every :class:`PrivacyAccountant` spend to disk *before* the answer is
released, so on restart the exact pre-crash totals are rebuilt from the
journal (write-ahead logging, applied to privacy budget).

Format: JSON Lines, one self-contained record per line, fsync'd by default.
Record kinds:

- ``open``  — a session was created (mechanism name + JSON params + analyst)
- ``spend`` — one accountant spend ``(epsilon, delta, label)`` of a session
- ``close`` — a session was closed

Every record carries a monotonically increasing ``seq``; replay verifies
contiguity, so silent truncation in the *middle* of the file is detected.
A torn *final* line (the classic crash artifact: the process died mid-write)
is tolerated and dropped, because its spend was by construction never acted
on — the answer is only released after the journal write returns.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import ValidationError

OPEN = "open"
SPEND = "spend"
CLOSE = "close"


@dataclass
class LedgerState:
    """The replayed content of a ledger file."""

    opens: dict[str, dict] = field(default_factory=dict)
    spends: dict[str, list[dict]] = field(default_factory=dict)
    closed: set[str] = field(default_factory=set)
    last_seq: int = -1

    @property
    def session_ids(self) -> list[str]:
        """Sessions in the order they were opened."""
        return list(self.opens)

    def accountant_for(self, session_id: str) -> PrivacyAccountant:
        """Rebuild the session's accountant exactly as journaled."""
        if session_id not in self.opens:
            raise ValidationError(f"no 'open' record for {session_id!r}")
        budget = self.opens[session_id].get("epsilon_budget")
        delta_budget = self.opens[session_id].get("delta_budget")
        return PrivacyAccountant.from_records(
            self.spends.get(session_id, []),
            epsilon_budget=budget, delta_budget=delta_budget,
        )


class BudgetLedger:
    """Append-only JSONL journal of budget events for one service.

    Parameters
    ----------
    path:
        Journal file; created if missing, appended to if present (a
        restarted service continues the same file, with ``seq`` picking up
        where the replayed journal ended).
    fsync:
        Force each record to stable storage before returning (default).
        Turning it off trades crash-safety for latency; the write is still
        flushed to the OS.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        if os.path.exists(self.path):
            _truncate_torn_tail(self.path)
            existing = replay_ledger(self.path)
        else:
            existing = LedgerState()
        self._seq = existing.last_seq + 1
        self._file = open(self.path, "a", encoding="utf-8")

    # -- appending -----------------------------------------------------------

    def append_open(self, session_id: str, mechanism: str, params: dict, *,
                    analyst: str = "", dataset: str = "",
                    universe_size: int | None = None,
                    dataset_digest: str | None = None,
                    epsilon_budget: float | None = None,
                    delta_budget: float | None = None) -> None:
        """Journal a session creation with its full (JSON) configuration.

        ``universe_size`` and ``dataset_digest`` pin the private dataset's
        content, so a later ledger-only restore against different data
        fails loudly instead of silently grafting one dataset's budget
        accounting onto another.
        """
        self._append({
            "kind": OPEN, "session": session_id, "mechanism": mechanism,
            "params": jsonable_params(params), "analyst": analyst,
            "dataset": dataset, "universe_size": universe_size,
            "dataset_digest": dataset_digest,
            "epsilon_budget": epsilon_budget,
            "delta_budget": delta_budget,
        })

    def append_spends(self, session_id: str, records: list[dict]) -> None:
        """Journal accountant spends (one line each), durably, in order."""
        for record in records:
            self._append({
                "kind": SPEND, "session": session_id,
                "epsilon": float(record["epsilon"]),
                "delta": float(record["delta"]),
                "label": str(record.get("label", "")),
            })

    def append_close(self, session_id: str) -> None:
        """Journal a session close."""
        self._append({"kind": CLOSE, "session": session_id})

    def _append(self, record: dict) -> None:
        with self._lock:
            record = {"seq": self._seq, **record}
            self._seq += 1
            line = json.dumps(record, separators=(",", ":"))
            self._file.write(line + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())

    # -- reading ---------------------------------------------------------------

    def replay(self) -> LedgerState:
        """Replay this ledger's file (including records just appended)."""
        with self._lock:
            self._file.flush()
        return replay_ledger(self.path)

    def close(self) -> None:
        """Close the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "BudgetLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BudgetLedger(path={self.path!r}, next_seq={self._seq})"


def replay_ledger(path) -> LedgerState:
    """Parse a ledger file into a :class:`LedgerState`.

    Raises :class:`ValidationError` on corruption (bad JSON on a complete
    line, or a ``seq`` gap); tolerates and drops a torn final line — one
    with no trailing newline — whose event was never acted upon (see
    module docstring).
    """
    state = LedgerState()
    with open(path, "rb") as handle:
        content = handle.read()
    # The torn-tail criterion must match _truncate_torn_tail exactly
    # (records are single `line + "\n"` writes, so torn <=> no trailing
    # newline) — otherwise a torn-but-parseable final line would be
    # counted by replay yet truncated on the next reopen, and the two
    # views of the journal would disagree.
    ends_complete = content.endswith(b"\n")
    lines = content.decode("utf-8").splitlines()
    for position, line in enumerate(lines):
        if position == len(lines) - 1 and not ends_complete:
            break  # torn final write from a crash: drop it
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            raise ValidationError(
                f"{path}: corrupt ledger record at line {position + 1}"
            )
        seq = record.get("seq")
        if seq != state.last_seq + 1:
            raise ValidationError(
                f"{path}: ledger sequence gap at line {position + 1} "
                f"(expected seq {state.last_seq + 1}, got {seq})"
            )
        state.last_seq = seq
        kind = record.get("kind")
        session = record.get("session", "")
        if kind == OPEN:
            state.opens[session] = record
        elif kind == SPEND:
            state.spends.setdefault(session, []).append({
                "epsilon": record["epsilon"], "delta": record["delta"],
                "label": record.get("label", ""),
            })
        elif kind == CLOSE:
            state.closed.add(session)
        else:
            raise ValidationError(
                f"{path}: unknown ledger record kind {kind!r} at line "
                f"{position + 1}"
            )
    return state


def _truncate_torn_tail(path: str) -> None:
    """Drop a torn final record before appending to an existing ledger.

    Records are written as single ``line + "\\n"`` writes, so a crash
    mid-write leaves exactly one artifact: a final line with no trailing
    newline. Appending after it would concatenate the next record onto the
    fragment; truncating to the last complete line keeps the journal
    parseable. The dropped event was never acted on (answers are released
    only after the journal write returns).
    """
    with open(path, "rb") as handle:
        content = handle.read()
    if not content or content.endswith(b"\n"):
        return
    keep = content.rfind(b"\n") + 1  # 0 when no complete line survives
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def jsonable_params(params: dict) -> dict:
    """Best-effort JSON form of session params.

    Values that cannot be journaled (e.g. a live oracle instance) are
    replaced with a marker; restoring such a session requires the caller to
    re-supply them (``PMWService.restore(params_override=...)``).
    """
    out = {}
    for key, value in params.items():
        try:
            json.dumps(value)
        except TypeError:
            out[key] = {"__unjournalable__": repr(value)}
        else:
            out[key] = value
    return out


__all__ = ["BudgetLedger", "LedgerState", "replay_ledger",
           "jsonable_params"]
