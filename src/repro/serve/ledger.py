"""Crash-safe, append-only privacy-budget ledger.

Durable accounting is what separates "a DP library" from "a DP system": if
the process dies between an oracle call and the analyst's next query, the
budget that oracle call consumed is *gone from the real world* — restarting
with a fresh accountant would silently double-spend it. The ledger journals
every :class:`PrivacyAccountant` spend to disk *before* the answer is
released, so on restart the exact pre-crash totals are rebuilt from the
journal (write-ahead logging, applied to privacy budget).

Format: JSON Lines, one self-contained record per line, fsync'd by default.
Record kinds:

- ``open``  — a session was created (mechanism name + JSON params + analyst)
- ``spend`` — one accountant spend ``(epsilon, delta, label)`` of a session
- ``close`` — a session was closed
- ``compact``  — rotation header: this file starts at a nonzero ``seq``
  because everything through ``compacted_through`` was folded into the
  baseline records that follow (the old segment lives on as ``archive``)
- ``baseline`` — one session's full pre-compaction spend history,
  run-length encoded in order, so replay of a rotated journal rebuilds
  accountants bitwise-identically to replay of the uncompacted one
- ``answer`` — an idempotency-keyed answer journaled *before* its reply
  is released: a client retry carrying the same key after a mid-reply
  crash replays the recorded answer bitwise instead of re-spending
  budget (exactly-once retries; see :mod:`repro.serve.resilience`).
  Values are encoded losslessly — ``float.hex()`` for scalars, dtype +
  base64 raw bytes for arrays — and survive compaction.

Every record carries a monotonically increasing ``seq``; replay verifies
contiguity, so silent truncation in the *middle* of the file is detected.
A torn *final* line (the classic crash artifact: the process died mid-write)
is tolerated and dropped, because its spend was by construction never acted
on — the answer is only released after the journal write returns.

``seq`` is the durability watermark the whole serving stack agrees on:
service snapshots are stamped with the ledger's ``last_seq`` at capture,
so a restart replays only the journal *suffix* past the stamp
(``replay_ledger(path, from_seq=...)``) instead of the entire history,
and :meth:`BudgetLedger.compact` keeps ``seq`` monotone across rotations
so stamps never go stale.
"""

from __future__ import annotations

import base64
import json
import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.dp.accountant import (
    PrivacyAccountant,
    expand_records,
    group_records,
)
from repro.exceptions import ValidationError
from repro.obs import trace

OPEN = "open"
SPEND = "spend"
CLOSE = "close"
COMPACT = "compact"
BASELINE = "baseline"
ANSWER = "answer"


def encode_answer_value(value) -> dict:
    """Lossless JSON encoding of a served answer value.

    Floats round-trip through ``float.hex()`` and arrays through
    ``dtype + shape + base64(raw bytes)``, so a replayed answer is
    **bitwise** identical to the one originally released — the property
    the exactly-once retry contract is stated in.
    """
    if isinstance(value, np.ndarray):
        return {
            "t": "ndarray", "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value)
                                     .tobytes()).decode("ascii"),
        }
    if isinstance(value, (float, np.floating)):
        return {"t": "float", "hex": float(value).hex()}
    if isinstance(value, (int, np.integer)):
        return {"t": "int", "v": int(value)}
    raise ValidationError(
        f"cannot journal answer value of type {type(value).__name__}"
    )


def decode_answer_value(payload: dict):
    """Inverse of :func:`encode_answer_value`."""
    kind = payload.get("t")
    if kind == "ndarray":
        data = base64.b64decode(payload["data"])
        return np.frombuffer(data, dtype=np.dtype(payload["dtype"])) \
            .reshape(payload["shape"]).copy()
    if kind == "float":
        return float.fromhex(payload["hex"])
    if kind == "int":
        return int(payload["v"])
    raise ValidationError(f"unknown answer value encoding {kind!r}")


@dataclass
class LedgerState:
    """The replayed content of a ledger file.

    ``compacted_through`` is the highest ``compacted_through`` of any
    rotation header seen (``-1`` when the replayed range contains none):
    spends at or below it are aggregated inside baseline records rather
    than individually addressable, which a suffix-replaying restore must
    detect (a snapshot stamped *before* that point cannot be reconciled
    record-by-record and falls back to full-replay authority).
    """

    opens: dict[str, dict] = field(default_factory=dict)
    spends: dict[str, list[dict]] = field(default_factory=dict)
    closed: set[str] = field(default_factory=set)
    #: idempotency key -> full ``answer`` record (value still encoded;
    #: :func:`decode_answer_value` turns it back into the released one).
    answers: dict[str, dict] = field(default_factory=dict)
    last_seq: int = -1
    compacted_through: int = -1

    @property
    def session_ids(self) -> list[str]:
        """Sessions in the order they were opened."""
        return list(self.opens)

    def accountant_for(self, session_id: str) -> PrivacyAccountant:
        """Rebuild the session's accountant exactly as journaled."""
        if session_id not in self.opens:
            raise ValidationError(f"no 'open' record for {session_id!r}")
        budget = self.opens[session_id].get("epsilon_budget")
        delta_budget = self.opens[session_id].get("delta_budget")
        return PrivacyAccountant.from_records(
            self.spends.get(session_id, []),
            epsilon_budget=budget, delta_budget=delta_budget,
        )


class BudgetLedger:
    """Append-only JSONL journal of budget events for one service.

    Parameters
    ----------
    path:
        Journal file; created if missing, appended to if present (a
        restarted service continues the same file, with ``seq`` picking up
        where the replayed journal ended).
    fsync:
        Force each record to stable storage before returning (default).
        Turning it off trades crash-safety for latency; the write is still
        flushed to the OS.
    validate:
        Verify the existing journal's seq contiguity at open (default),
        so appending onto a silently-truncated or bit-rotted file fails
        *now* — while a backup is fresh — rather than at the next
        restore. The scan reads seqs only (no record parsing); callers
        that have just replayed the file authoritatively
        (:meth:`PMWService.restore <repro.serve.service.PMWService.restore>`)
        pass ``False`` to keep restarts O(crash window).
    """

    def __init__(self, path, *, fsync: bool = True,
                 validate: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        if os.path.exists(self.path):
            _truncate_torn_tail(self.path)
            self._seq = _scan_last_seq(self.path,
                                       validate=bool(validate)) + 1
        else:
            self._seq = 0
        self._file = open(self.path, "a", encoding="utf-8")

    @property
    def last_seq(self) -> int:
        """Seq of the newest durable record (``-1`` for an empty ledger).

        This is the watermark service snapshots are stamped with: a
        restore replays only records past the stamp.
        """
        with self._lock:
            return self._seq - 1

    # -- appending -----------------------------------------------------------

    def append_open(self, session_id: str, mechanism: str, params: dict, *,
                    analyst: str = "", dataset: str = "",
                    universe_size: int | None = None,
                    dataset_digest: str | None = None,
                    epsilon_budget: float | None = None,
                    delta_budget: float | None = None) -> None:
        """Journal a session creation with its full (JSON) configuration.

        ``universe_size`` and ``dataset_digest`` pin the private dataset's
        content, so a later ledger-only restore against different data
        fails loudly instead of silently grafting one dataset's budget
        accounting onto another.
        """
        self._append({
            "kind": OPEN, "session": session_id, "mechanism": mechanism,
            "params": jsonable_params(params), "analyst": analyst,
            "dataset": dataset, "universe_size": universe_size,
            "dataset_digest": dataset_digest,
            "epsilon_budget": epsilon_budget,
            "delta_budget": delta_budget,
        })

    def append_spends(self, session_id: str, records: list[dict]) -> int:
        """Journal accountant spends (one line each), durably, in order.

        Returns the ``seq`` of the last spend written (``-1`` when
        ``records`` is empty) — sessions track it so a snapshot can say
        exactly which journaled spends its accountants already contain.
        """
        last = -1
        with trace.span("ledger.append", session=session_id,
                        spends=len(records)):
            for record in records:
                last = self._append({
                    "kind": SPEND, "session": session_id,
                    "epsilon": float(record["epsilon"]),
                    "delta": float(record["delta"]),
                    "label": str(record.get("label", "")),
                })
        return last

    def append_answer(self, session_id: str, key: str, *,
                      value, source: str, query_index: int,
                      fingerprint: str = "",
                      epsilon_spent: float = 0.0,
                      delta_spent: float = 0.0) -> int:
        """Journal an idempotency-keyed answer, durably, before release.

        A later replay (crash restore, retried request) reconstructs the
        full :class:`~repro.serve.session.ServeResult` bitwise from this
        record — the write must therefore land *before* the reply leaves
        the process, the same write-ahead discipline as spends. Returns
        the record's ``seq``.
        """
        return self._append({
            "kind": ANSWER, "session": session_id, "key": str(key),
            "fingerprint": str(fingerprint),
            "value": encode_answer_value(value), "source": str(source),
            "query_index": int(query_index),
            "epsilon": float(epsilon_spent), "delta": float(delta_spent),
        })

    def append_close(self, session_id: str) -> None:
        """Journal a session close."""
        self._append({"kind": CLOSE, "session": session_id})

    def _append(self, record: dict) -> int:
        with self._lock:
            if self._file.closed:
                raise ValidationError(
                    f"{self.path}: ledger is closed; the spend was NOT "
                    f"journaled — do not release the answer it pays for"
                )
            record = {"seq": self._seq, **record}
            self._seq += 1
            line = json.dumps(record, separators=(",", ":"))
            self._file.write(line + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            return record["seq"]

    # -- compaction ------------------------------------------------------------

    def compact(self, *, archive_dir=None) -> str:
        """Rotate the journal, bounding replay cost for long-lived services.

        Writes a fresh ledger whose ``open`` records are re-journaled and
        whose spend history is folded into one run-length-encoded
        ``baseline`` record per session, swaps it in atomically, and
        leaves the old segment as an archive file (returned). Replay of
        the rotated journal rebuilds every accountant **bitwise-equal**
        to replay of the uncompacted one: the RLE preserves record order,
        values, and labels exactly.

        Crash consistency: the new file is fully written and fsync'd as
        ``<path>.compact.tmp``; the live journal is first *hard-linked*
        to the archive name, then atomically replaced by the tmp file,
        then the directory is fsync'd. A crash at any point leaves either
        the old journal or the new one at ``path`` — never neither — and
        a half-finished attempt is simply retried (stale tmp/archive
        files are overwritten).

        ``seq`` stays monotone across the rotation (the new file opens
        with a ``compact`` header at ``old last_seq + 1``), so snapshot
        stamps taken before the rotation are still ordered correctly —
        they simply fall back to full-replay authority, which the
        rotation has just made cheap.
        """
        with trace.span("ledger.compact"), self._lock:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            state = replay_ledger(self.path)
            prev_last = state.last_seq
            directory = os.path.dirname(os.path.abspath(self.path))
            archive_directory = (os.fspath(archive_dir)
                                 if archive_dir is not None else directory)
            os.makedirs(archive_directory, exist_ok=True)
            archive_name = (f"{os.path.basename(self.path)}"
                            f".{prev_last + 1:08d}.archive")
            archive_path = os.path.join(archive_directory, archive_name)
            tmp = self.path + ".compact.tmp"

            seq = prev_last + 1
            lines = [{
                "seq": seq, "kind": COMPACT,
                "compacted_through": prev_last, "archive": archive_name,
                "sessions": len(state.opens),
            }]
            answers_by_session: dict[str, list[tuple[str, dict]]] = {}
            for key, record in state.answers.items():
                answers_by_session.setdefault(
                    record.get("session", ""), []).append((key, record))
            for sid, opened in state.opens.items():
                seq += 1
                lines.append({**opened, "seq": seq})
                spends = state.spends.get(sid, [])
                if spends:
                    seq += 1
                    lines.append({
                        "seq": seq, "kind": BASELINE, "session": sid,
                        "spends": _rle_encode(spends),
                    })
                # Idempotency answers survive rotation verbatim (minus
                # their old seqs): a retry after compaction must still
                # replay bitwise.
                for key, record in answers_by_session.pop(sid, []):
                    seq += 1
                    lines.append({**{k: v for k, v in record.items()
                                     if k != "seq"}, "seq": seq})
                if sid in state.closed:
                    seq += 1
                    lines.append({"seq": seq, "kind": CLOSE,
                                  "session": sid})

            with open(tmp, "w", encoding="utf-8") as handle:
                for record in lines:
                    handle.write(json.dumps(record,
                                            separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            # Archive-by-hardlink THEN replace: at no instant is `path`
            # missing, and the old bytes survive under the archive name.
            self._file.close()
            try:
                if os.path.exists(archive_path):
                    os.remove(archive_path)  # stale earlier attempt
                try:
                    os.link(self.path, archive_path)
                except OSError:
                    # Cross-device archive_dir (EXDEV) or a filesystem
                    # without hard links: durable copy instead. Same
                    # crash window — the archive exists in full before
                    # the live journal is replaced.
                    _copy_durable(self.path, archive_path)
                os.replace(tmp, self.path)
                # The rotated file is live the instant the rename
                # lands: advance the seq NOW, before anything below can
                # raise — a stale _seq would make the next append
                # collide with the rotation header and corrupt the
                # journal for every future replay.
                self._seq = seq + 1
                fsync_dir(directory)
                if archive_directory != directory:
                    fsync_dir(archive_directory)
            finally:
                self._file = open(self.path, "a", encoding="utf-8")
        return archive_path

    # -- reading ---------------------------------------------------------------

    def replay(self) -> LedgerState:
        """Replay this ledger's file (including records just appended)."""
        with self._lock:
            self._file.flush()
        return replay_ledger(self.path)

    def close(self) -> None:
        """Close the underlying file handle (serialized against any
        in-progress append; later appends fail loudly)."""
        with self._lock:
            self._file.close()

    def __enter__(self) -> "BudgetLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BudgetLedger(path={self.path!r}, next_seq={self._seq})"


def replay_ledger(path, *, from_seq: int | None = None) -> LedgerState:
    """Parse a ledger file into a :class:`LedgerState`.

    ``from_seq`` replays only the *suffix*: the scan byte-jumps to the
    first record past it (falling back to a cheap per-line seq skip),
    which is what makes restarting from a checkpoint O(crash window)
    instead of O(history). Contiguity is verified from wherever the
    scan starts; the skipped prefix is trusted to the caller's stamp —
    it is validated by every full replay and by the open-time scan in
    :class:`BudgetLedger` instead.

    Raises :class:`ValidationError` on corruption (bad JSON on a complete
    line, or a ``seq`` gap); tolerates and drops a torn final line — one
    with no trailing newline — whose event was never acted upon (see
    module docstring).
    """
    state = LedgerState()
    with open(path, "rb") as handle:
        content = handle.read()
    # The torn-tail criterion must match _truncate_torn_tail exactly
    # (records are single `line + "\n"` writes, so torn <=> no trailing
    # newline) — otherwise a torn-but-parseable final line would be
    # counted by replay yet truncated on the next reopen, and the two
    # views of the journal would disagree.
    ends_complete = content.endswith(b"\n")
    expected_seq = None
    if from_seq is not None:
        # Byte-jump straight to the suffix: records are canonical
        # single-line writes opening with `{"seq":N,` and JSON strings
        # cannot contain a raw newline, so the marker match is exact.
        # Falls back to a line scan when the marker is absent (empty
        # suffix, or a hand-edited journal).
        marker = b'{"seq":%d,' % (from_seq + 1)
        if content.startswith(marker):
            expected_seq = from_seq + 1
        else:
            position = content.find(b"\n" + marker)
            if position >= 0:
                content = content[position + 1:]
                expected_seq = from_seq + 1
            else:
                # No record past the stamp (checkpoint-then-idle crash):
                # jump to the stamp record itself so the scan below
                # touches O(1) lines, not the whole history.
                marker = b'{"seq":%d,' % from_seq
                position = (0 if content.startswith(marker)
                            else content.find(b"\n" + marker) + 1)
                if position > 0 or content.startswith(marker):
                    content = content[position:]
        if expected_seq is not None:
            state.last_seq = from_seq
    lines = content.decode("utf-8").splitlines()
    for position, line in enumerate(lines):
        if position == len(lines) - 1 and not ends_complete:
            break  # torn final write from a crash: drop it
        if not line.strip():
            continue
        if (from_seq is not None
                and (expected_seq is None or expected_seq <= from_seq)):
            # Prefix skip: only the seq is read (fast path), contiguity
            # still checked. A rotation header hiding in the skipped
            # prefix is irrelevant — its baselines predate ``from_seq``.
            seq = _quick_seq(line)
            if seq is None:
                seq = _parse_record(path, position, line).get("seq")
            if seq is not None and seq <= from_seq:
                if expected_seq is not None and seq != expected_seq:
                    raise ValidationError(
                        f"{path}: ledger sequence gap at line "
                        f"{position + 1} (expected seq {expected_seq}, "
                        f"got {seq})"
                    )
                state.last_seq = seq
                expected_seq = seq + 1
                continue
            # First record already past from_seq (a rotated journal):
            # fall through to full processing.
        record = _parse_record(path, position, line)
        seq = record.get("seq")
        kind = record.get("kind")
        if expected_seq is None:
            # First record: seq 0, unless this file opens with a
            # rotation header (compaction keeps seq monotone across
            # files, so a rotated journal legitimately starts higher).
            if seq != 0 and kind != COMPACT:
                raise ValidationError(
                    f"{path}: ledger sequence gap at line {position + 1} "
                    f"(expected seq 0, got {seq})"
                )
        elif seq != expected_seq:
            raise ValidationError(
                f"{path}: ledger sequence gap at line {position + 1} "
                f"(expected seq {expected_seq}, got {seq})"
            )
        state.last_seq = seq
        expected_seq = seq + 1
        session = record.get("session", "")
        if kind == OPEN:
            state.opens[session] = record
        elif kind == SPEND:
            state.spends.setdefault(session, []).append({
                "epsilon": record["epsilon"], "delta": record["delta"],
                "label": record.get("label", ""), "seq": seq,
            })
        elif kind == CLOSE:
            state.closed.add(session)
        elif kind == ANSWER:
            state.answers[record["key"]] = record
        elif kind == COMPACT:
            state.compacted_through = max(state.compacted_through,
                                          int(record["compacted_through"]))
        elif kind == BASELINE:
            state.spends.setdefault(session, []).extend(
                _rle_expand(record["spends"], seq))
        else:
            raise ValidationError(
                f"{path}: unknown ledger record kind {kind!r} at line "
                f"{position + 1}"
            )
    return state


def _parse_record(path, position: int, line: str) -> dict:
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        raise ValidationError(
            f"{path}: corrupt ledger record at line {position + 1}"
        )


def _quick_seq(line: str) -> int | None:
    """Extract ``seq`` from a canonically-written line without JSON
    parsing (records are written ``{"seq":N,...}``); ``None`` on any
    mismatch, signalling the caller to fall back to a full parse."""
    if not line.startswith('{"seq":'):
        return None
    end = line.find(",", 7)
    if end < 0:
        return None
    try:
        return int(line[7:end])
    except ValueError:
        return None


#: Tail window for reading the final record at ledger open. Records are
#: a few hundred bytes; 64 KiB of slack covers even giant param blobs.
_TAIL_CHUNK = 65536


def _scan_last_seq(path, *, validate: bool = True) -> int:
    """Seq of the last complete record (the torn tail has already been
    truncated, so the final line is complete).

    With ``validate`` (the default), every line's seq is checked for
    contiguity — an integer scan, no record parsing — so corruption is
    caught at open time, before anything is appended after it. Without
    it, only the file's tail is read: O(1) for callers that have just
    replayed (and thereby validated) the file themselves.
    """
    if validate:
        last = -1
        expected = None
        with open(path, "rb") as handle:
            content = handle.read()
        for position, raw in enumerate(content.splitlines()):
            line = raw.decode("utf-8")
            if not line.strip():
                continue
            seq = _quick_seq(line)
            kind = None
            if seq is None:
                record = _parse_record(path, position, line)
                seq = record.get("seq")
                kind = record.get("kind")
            if expected is None:
                if seq != 0:
                    # Only a rotation header may open at nonzero seq.
                    if kind is None:
                        kind = _parse_record(path, position,
                                             line).get("kind")
                    if kind != COMPACT:
                        raise ValidationError(
                            f"{path}: ledger sequence gap at line "
                            f"{position + 1} (expected seq 0, got {seq})"
                        )
            elif seq != expected:
                raise ValidationError(
                    f"{path}: ledger sequence gap at line {position + 1} "
                    f"(expected seq {expected}, got {seq})"
                )
            last = seq
            expected = seq + 1
        return last
    size = os.path.getsize(path)
    offset = max(0, size - _TAIL_CHUNK)
    with open(path, "rb") as handle:
        handle.seek(offset)
        tail = handle.read()
        if offset > 0 and b"\n" not in tail[:-1]:
            # One record longer than the window: read it all.
            handle.seek(0)
            tail = handle.read()
            offset = 0
    if offset > 0:
        # Drop the chunk's leading partial line; what follows the first
        # newline is a sequence of complete records.
        tail = tail[tail.index(b"\n") + 1:]
    for raw in reversed(tail.rstrip(b"\n").split(b"\n")):
        line = raw.decode("utf-8")
        if not line.strip():
            continue
        seq = _quick_seq(line)
        if seq is None:
            seq = _parse_record(path, 0, line).get("seq")
        if not isinstance(seq, int):
            raise ValidationError(
                f"{path}: final ledger record carries no seq"
            )
        return seq
    return -1


def _rle_encode(spends: list[dict]) -> list[dict]:
    """Run-length encode a spend history, preserving order exactly
    (:func:`repro.dp.accountant.group_records`): expansion reproduces
    the original record sequence bit-for-bit, so compaction never
    perturbs composed totals (basic sums are order-sensitive in
    floating point)."""
    return group_records(spends)


def _rle_expand(groups: list[dict], seq: int) -> list[dict]:
    """Inverse of :func:`_rle_encode`; every expanded record carries the
    baseline record's ``seq`` (the individual seqs are gone — which is
    exactly what ``compacted_through`` lets restores detect)."""
    expanded = expand_records(groups)
    for record in expanded:
        record["seq"] = seq
    return expanded


def fsync_dir(path) -> None:
    """fsync a directory so a rename/create/truncate in it survives power
    loss — fsync on the *file* makes its bytes durable, but the directory
    entry pointing at them is separate metadata with its own write-back.

    ``path`` may be the directory itself or a file inside it. Best-effort
    on platforms where directories cannot be opened for fsync.
    """
    directory = os.fspath(path)
    if not os.path.isdir(directory):
        directory = os.path.dirname(os.path.abspath(directory)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        # EINVAL/EIO on exotic filesystems: nothing stronger exists
        # there, and failing a rotation that already landed would leave
        # the caller's in-memory state out of sync with a good file.
        pass
    finally:
        os.close(fd)


def _copy_durable(src: str, dst: str) -> None:
    """Copy ``src`` to ``dst`` and fsync it — the hardlink-archive
    fallback for cross-device destinations. A crash mid-copy leaves a
    partial ``dst`` and an untouched live journal; the retried rotation
    overwrites it."""
    with open(src, "rb") as source, open(dst, "wb") as target:
        while True:
            chunk = source.read(1 << 20)
            if not chunk:
                break
            target.write(chunk)
        target.flush()
        os.fsync(target.fileno())


def _truncate_torn_tail(path: str) -> None:
    """Drop a torn final record before appending to an existing ledger.

    Records are written as single ``line + "\\n"`` writes, so a crash
    mid-write leaves exactly one artifact: a final line with no trailing
    newline. Appending after it would concatenate the next record onto the
    fragment; truncating to the last complete line keeps the journal
    parseable. The dropped event was never acted on (answers are released
    only after the journal write returns).

    The truncation itself is fsync'd (file and directory), so a power
    failure right after cannot resurrect the dropped fragment and leave
    the next append concatenated onto it.
    """
    with open(path, "rb") as handle:
        content = handle.read()
    if not content or content.endswith(b"\n"):
        return
    keep = content.rfind(b"\n") + 1  # 0 when no complete line survives
    with open(path, "r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_dir(path)


def jsonable_params(params: dict) -> dict:
    """Best-effort JSON form of session params.

    Values that cannot be journaled (e.g. a live oracle instance) are
    replaced with a marker; restoring such a session requires the caller to
    re-supply them (``PMWService.restore(params_override=...)``).
    """
    out = {}
    for key, value in params.items():
        try:
            json.dumps(value)
        except TypeError:
            out[key] = {"__unjournalable__": repr(value)}
        else:
            out[key] = value
    return out


__all__ = ["BudgetLedger", "LedgerState", "replay_ledger", "fsync_dir",
           "jsonable_params", "encode_answer_value", "decode_answer_value"]
