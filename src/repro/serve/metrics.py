"""Gateway observability: counters, gauges, and latency histograms.

A production front door is only operable if its pressure is visible:
how deep the per-session queues run, how long requests wait before a
worker claims them, how much of the load the coalescer converts into
batched-kernel work, and how often admission control sheds. The
:class:`GatewayMetrics` registry collects exactly that, thread-safely,
and snapshots to a plain-JSON document (``repro-experiments e14`` prints
one; dashboards can poll :meth:`GatewayMetrics.snapshot`).

Since PR 6, :class:`GatewayMetrics` is a thin façade over a
:class:`repro.obs.MetricsRegistry`: every counter, gauge, and histogram
lives on the registry (names under ``gateway.*``), so gateway pressure
shares one namespace — and one Prometheus exposition — with mechanism
spans and privacy-budget telemetry. Pass your own ``registry=`` to get
that unified view; the default constructs a private one. The public
surface (attributes, :meth:`snapshot` schema, :meth:`describe`,
:meth:`to_json`) is unchanged, so E19 and existing dashboards keep
working.

:class:`LatencyHistogram` is now a log-scale histogram
(:class:`repro.obs.LogScaleHistogram`): 100 ns–10 000 s range at 20
buckets/decade, an explicit overflow counter in :meth:`snapshot`, and
*interpolated* quantiles whose relative error is bounded by the bucket
edge ratio (≤ 12.2 %) — replacing the fixed doubling buckets that
saturated at 3276.8 ms and returned raw upper edges.
"""

from __future__ import annotations

import json
import threading

from repro.exceptions import ValidationError
from repro.obs.registry import LogScaleHistogram, MetricsRegistry

#: The shed kinds admission control distinguishes — the same vocabulary
#: as :attr:`repro.exceptions.Shed.reason`, and the values of the
#: ``gateway.shed{reason=...}`` counter labels, so Prometheus queries
#: can slice sheds by cause. ``cancelled`` counts pending futures the
#: client cancelled before a worker claimed them; ``deadline`` counts
#: requests refused at enqueue by deadline-aware admission.
SHED_KINDS = ("overload", "timeout", "shutdown", "cancelled", "deadline")

#: The gateway's priority lanes: ``"fast"`` for cheap cache-hit/replay
#: reads, ``"bulk"`` for everything that may run a mechanism round.
LANES = ("fast", "bulk")

#: Latency histogram resolution: 100 ns to 10 000 s at 20 buckets per
#: decade (edge ratio 10**(1/20) ≈ 1.122 → ≤ 12.2 % quantile error).
LATENCY_LOW = 1e-7
LATENCY_HIGH = 1e4
LATENCY_BUCKETS_PER_DECADE = 20


class LatencyHistogram(LogScaleHistogram):
    """Constant-memory latency distribution over log-scale buckets.

    Thread-safe (each observation takes the histogram lock; when
    registered on a :class:`~repro.obs.MetricsRegistry`, that is the
    registry lock). :meth:`snapshot` keeps the legacy schema — bucket
    entries as ``{"le_seconds", "count"}`` with a trailing
    ``le_seconds: None`` entry for overflow — and adds the explicit
    ``overflow`` count and ``top_edge_seconds``.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(low=LATENCY_LOW, high=LATENCY_HIGH,
                         buckets_per_decade=LATENCY_BUCKETS_PER_DECADE)

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-serializable summary (non-empty buckets only).

        ``p50/p90/p99_seconds`` are interpolated inside the winning
        bucket (relative error ≤ the 12.2 % edge ratio); ``overflow``
        counts samples past ``top_edge_seconds`` — 0 whenever the tail
        is actually being measured.
        """
        base = super().snapshot()
        count = base["count"]
        buckets = [
            {"le_seconds": self.edge(index), "count": bucket}
            for index, bucket in base["counts"]
        ]
        if base["overflow"]:
            buckets.append({"le_seconds": None, "count": base["overflow"]})
        return {
            "count": count,
            "total_seconds": base["total"],
            "mean_seconds": base["total"] / count if count else 0.0,
            "max_seconds": base["max"],
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p99_seconds": self.quantile(0.99),
            "overflow": base["overflow"],
            "top_edge_seconds": self.top_edge,
            "buckets": buckets,
        }


#: Legacy alias: the default latency bucket upper edges, in seconds.
#: Since PR 6 these are the log-scale edges (220 buckets, 100 ns–10 ks),
#: not the old 21 doubling buckets that topped out at ~104.86 s.
_EDGE_TEMPLATE = LatencyHistogram()
BUCKET_EDGES: tuple[float, ...] = tuple(
    _EDGE_TEMPLATE.edge(index) for index in range(_EDGE_TEMPLATE._n)
)
del _EDGE_TEMPLATE


class GatewayMetrics:
    """Thread-safe registry of one gateway's operational counters.

    Tracked:

    - **admission** — submitted, shed (per kind: ``overload`` at a queue
      or in-flight bound, ``timeout`` for requests whose deadline passed
      unclaimed, ``shutdown`` for requests dropped by a non-draining
      close);
    - **coalescing** — executed batches, how many merged more than one
      request (and how many requests rode a merged batch), so the
      "queue pressure becomes batched-kernel work" conversion rate is a
      first-class number;
    - **serving** — completed/failed requests, answers by provenance
      (``cache`` / ``hypothesis`` / ``no-update`` / ``update``);
    - **latency** — queue-wait (enqueue to worker claim) and end-to-end
      (enqueue to answer) histograms;
    - **per-session** — submitted/completed counts and the high-water
      queue depth.

    Parameters
    ----------
    registry:
        Optional :class:`repro.obs.MetricsRegistry` to publish onto
        (``gateway.*`` metric names; per-session series labelled
        ``{session=...}``). Default builds a private registry. Sharing
        one registry between two gateways merges their counters — give
        each gateway its own unless aggregation is what you want.

    Thread-safety: every ``record_*`` method holds the façade lock for
    its full multi-metric update, and :meth:`snapshot` takes the same
    lock, so concurrent recording from worker threads loses nothing and
    snapshots never observe a half-recorded batch.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._submitted = reg.counter("gateway.submitted")
        self._completed = reg.counter("gateway.completed")
        self._failed = reg.counter("gateway.failed")
        self._batches = reg.counter("gateway.batches")
        self._coalesced_batches = reg.counter("gateway.coalesced_batches")
        self._coalesced_requests = reg.counter("gateway.coalesced_requests")
        self._sheds = {
            kind: reg.counter("gateway.shed", {"reason": kind})
            for kind in SHED_KINDS
        }
        self.queue_wait = reg.register_histogram(
            "gateway.queue_wait", histogram=LatencyHistogram())
        self.queue_wait_lanes = {
            lane: reg.register_histogram(
                "gateway.queue_wait", {"lane": lane},
                histogram=LatencyHistogram())
            for lane in LANES
        }
        self.end_to_end = reg.register_histogram(
            "gateway.end_to_end", histogram=LatencyHistogram())
        self._session_metrics: dict[str, dict] = {}

    # -- recording (called by the gateway) --------------------------------

    def record_submit(self, session_id: str, depth: int) -> None:
        """One admitted request; ``depth`` is the queue depth after it."""
        with self._lock:
            self._submitted.inc()
            entry = self._session(session_id)
            entry["submitted"].inc()
            entry["queue_depth"].set(depth)
            if depth > entry["max_queue_depth"].value:
                entry["max_queue_depth"].set(depth)

    def record_shed(self, kind: str, session_id: str | None = None) -> None:
        """One request refused (``overload``/``timeout``/``shutdown``)."""
        if kind not in self._sheds:
            raise ValidationError(
                f"unknown shed kind {kind!r}; known: {SHED_KINDS}"
            )
        with self._lock:
            self._sheds[kind].inc()
            if session_id is not None:
                self._session(session_id)["shed"].inc()

    def record_claim(self, session_id: str, waits: list[float],
                     depth: int, lane: str | None = None) -> None:
        """A worker claimed a batch; ``waits`` are per-request queue
        waits, ``depth`` the queue depth left behind, ``lane`` the
        priority lane the batch was claimed from (observed into the
        lane's own histogram as well as the all-lanes one)."""
        lane_histogram = self.queue_wait_lanes.get(lane) \
            if lane is not None else None
        with self._lock:
            for wait in waits:
                self.queue_wait.observe(wait)
                if lane_histogram is not None:
                    lane_histogram.observe(wait)
            self._session(session_id)["queue_depth"].set(depth)

    def estimated_queue_wait(self, lane: str, *, quantile: float = 0.9,
                             min_samples: int = 32) -> float | None:
        """The lane's observed queue-wait quantile, in seconds — the
        input to deadline-aware admission. ``None`` until the lane has
        ``min_samples`` observations (no shedding on folklore)."""
        histogram = self.queue_wait_lanes.get(lane)
        if histogram is None or histogram.count < min_samples:
            return None
        return histogram.quantile(quantile)

    def record_batch(self, session_id: str, *, size: int, sources,
                     latencies) -> None:
        """One executed batch: provenance tally + end-to-end latencies."""
        with self._lock:
            self._batches.inc()
            if size > 1:
                self._coalesced_batches.inc()
                self._coalesced_requests.inc(size)
            self._completed.inc(size)
            self._session(session_id)["completed"].inc(size)
            for source in sources:
                self.registry.counter(
                    "gateway.answers", {"source": source}).inc()
            for latency in latencies:
                self.end_to_end.observe(latency)

    def record_failure(self, session_id: str, count: int) -> None:
        """A batch execution raised; all its requests failed."""
        with self._lock:
            self._failed.inc(count)
            self._session(session_id)["failed"].inc(count)

    # -- reading ----------------------------------------------------------

    @property
    def submitted(self) -> int:
        """Requests admitted past admission control."""
        return self._submitted.value

    @property
    def completed(self) -> int:
        """Requests answered successfully."""
        return self._completed.value

    @property
    def failed(self) -> int:
        """Requests whose batch execution raised."""
        return self._failed.value

    @property
    def batches(self) -> int:
        """Batches executed."""
        return self._batches.value

    @property
    def coalesced_batches(self) -> int:
        """Batches that merged more than one request."""
        return self._coalesced_batches.value

    @property
    def coalesced_requests(self) -> int:
        """Requests that rode a merged batch."""
        return self._coalesced_requests.value

    @property
    def sheds(self) -> dict[str, int]:
        """Shed counts per kind (a fresh plain dict)."""
        return {kind: counter.value
                for kind, counter in self._sheds.items()}

    @property
    def sources(self) -> dict[str, int]:
        """Answer counts by provenance (``cache``/``hypothesis``/...)."""
        return {
            labels[0][1]: counter.value
            for (name, labels), counter
            in self.registry.collect("counter").items()
            if name == "gateway.answers"
        }

    @property
    def shed_total(self) -> int:
        """Requests refused across all shed kinds."""
        return sum(counter.value for counter in self._sheds.values())

    @property
    def cache_hits(self) -> int:
        """Answers served by zero-cost replay."""
        counter = self.registry.get("gateway.answers", {"source": "cache"})
        return counter.value if counter is not None else 0

    def snapshot(self) -> dict:
        """Full JSON-serializable state of the registry."""
        with self._lock:
            completed = self._completed.value
            coalesced_requests = self._coalesced_requests.value
            sheds = self.sheds
            return {
                "submitted": self._submitted.value,
                "completed": completed,
                "failed": self._failed.value,
                "shed": sheds,
                "shed_total": sum(sheds.values()),
                "batches": self._batches.value,
                "coalesced_batches": self._coalesced_batches.value,
                "coalesced_requests": coalesced_requests,
                "coalesce_rate": (coalesced_requests / completed
                                  if completed else 0.0),
                "sources": self.sources,
                "queue_wait": self.queue_wait.snapshot(),
                "queue_wait_lanes": {
                    lane: histogram.snapshot()
                    for lane, histogram in self.queue_wait_lanes.items()
                },
                "end_to_end": self.end_to_end.snapshot(),
                "sessions": {
                    sid: {
                        "submitted": entry["submitted"].value,
                        "completed": entry["completed"].value,
                        "failed": entry["failed"].value,
                        "shed": entry["shed"].value,
                        "queue_depth": entry["queue_depth"].value,
                        "max_queue_depth": entry["max_queue_depth"].value,
                    }
                    for sid, entry in self._session_metrics.items()
                },
            }

    def to_json(self, path=None, *, indent: int = 2) -> str:
        """The snapshot as a JSON document, optionally written to disk."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the backing registry (includes
        anything else published onto a shared registry)."""
        return self.registry.render_prometheus()

    def describe(self) -> str:
        """One-paragraph operator summary."""
        snap = self.snapshot()
        return (
            f"gateway: {snap['submitted']} submitted, "
            f"{snap['completed']} completed, {snap['failed']} failed, "
            f"{snap['shed_total']} shed {snap['shed']}; "
            f"{snap['batches']} batches "
            f"({snap['coalesced_batches']} coalesced covering "
            f"{snap['coalesced_requests']} requests); "
            f"sources {snap['sources']}; "
            f"queue wait p50 {snap['queue_wait']['p50_seconds'] * 1e3:.2f}ms, "
            f"end-to-end p99 {snap['end_to_end']['p99_seconds'] * 1e3:.2f}ms"
        )

    # -- internals --------------------------------------------------------

    def _session(self, session_id: str) -> dict:
        entry = self._session_metrics.get(session_id)
        if entry is None:
            labels = {"session": session_id}
            reg = self.registry
            entry = {
                "submitted": reg.counter("gateway.session.submitted",
                                         labels),
                "completed": reg.counter("gateway.session.completed",
                                         labels),
                "failed": reg.counter("gateway.session.failed", labels),
                "shed": reg.counter("gateway.session.shed", labels),
                "queue_depth": reg.gauge("gateway.queue_depth", labels),
                "max_queue_depth": reg.gauge("gateway.max_queue_depth",
                                             labels),
            }
            self._session_metrics[session_id] = entry
        return entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GatewayMetrics(submitted={self.submitted}, "
            f"completed={self.completed}, shed={self.shed_total})"
        )


__all__ = ["GatewayMetrics", "LatencyHistogram", "BUCKET_EDGES",
           "SHED_KINDS", "LANES"]
