"""Gateway observability: counters, gauges, and latency histograms.

A production front door is only operable if its pressure is visible:
how deep the per-session queues run, how long requests wait before a
worker claims them, how much of the load the coalescer converts into
batched-kernel work, and how often admission control sheds. The
:class:`GatewayMetrics` registry collects exactly that, thread-safely,
and snapshots to a plain-JSON document (``repro-experiments e14`` prints
one; dashboards can poll :meth:`GatewayMetrics.snapshot`).

Latencies are recorded in fixed geometric buckets
(:class:`LatencyHistogram`) rather than raw samples, so the registry's
memory footprint is constant no matter how long the gateway runs.
"""

from __future__ import annotations

import json
import threading

from repro.exceptions import ValidationError

#: Geometric bucket upper edges in seconds: 100us doubling up to ~200s.
#: Observations above the last edge land in a single overflow bucket.
BUCKET_EDGES: tuple[float, ...] = tuple(1e-4 * 2.0 ** i for i in range(21))

#: The shed kinds admission control distinguishes. ``cancelled`` counts
#: pending futures the client cancelled before a worker claimed them.
SHED_KINDS = ("overload", "timeout", "shutdown", "cancelled")


class LatencyHistogram:
    """Constant-memory latency distribution over geometric buckets.

    Not thread-safe on its own; :class:`GatewayMetrics` serializes access
    under its registry lock.
    """

    __slots__ = ("counts", "overflow", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * len(BUCKET_EDGES)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative clock skew clamps to 0)."""
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)
        for index, edge in enumerate(BUCKET_EDGES):
            if seconds <= edge:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-quantile, ``q`` in [0, 1].

        Bucketed, so the estimate is conservative: the true quantile is
        at most the returned edge. Overflow samples report the max seen.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank at least 1, so q=0 lands on the first *occupied* bucket
        # (the minimum sample's edge) rather than the first edge.
        rank = max(1.0, q * self.count)
        seen = 0
        for index, edge in enumerate(BUCKET_EDGES):
            seen += self.counts[index]
            if seen >= rank:
                return edge
        return self.max

    def snapshot(self) -> dict:
        """JSON-serializable summary (non-empty buckets only)."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p99_seconds": self.quantile(0.99),
            "buckets": [
                {"le_seconds": edge, "count": count}
                for edge, count in zip(BUCKET_EDGES, self.counts)
                if count
            ] + ([{"le_seconds": None, "count": self.overflow}]
                 if self.overflow else []),
        }


class GatewayMetrics:
    """Thread-safe registry of one gateway's operational counters.

    Tracked:

    - **admission** — submitted, shed (per kind: ``overload`` at a queue
      or in-flight bound, ``timeout`` for requests whose deadline passed
      unclaimed, ``shutdown`` for requests dropped by a non-draining
      close);
    - **coalescing** — executed batches, how many merged more than one
      request (and how many requests rode a merged batch), so the
      "queue pressure becomes batched-kernel work" conversion rate is a
      first-class number;
    - **serving** — completed/failed requests, answers by provenance
      (``cache`` / ``hypothesis`` / ``no-update`` / ``update``);
    - **latency** — queue-wait (enqueue to worker claim) and end-to-end
      (enqueue to answer) histograms;
    - **per-session** — submitted/completed counts and the high-water
      queue depth.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.sheds = {kind: 0 for kind in SHED_KINDS}
        self.batches = 0
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        self.sources: dict[str, int] = {}
        self.queue_wait = LatencyHistogram()
        self.end_to_end = LatencyHistogram()
        self._sessions: dict[str, dict] = {}

    # -- recording (called by the gateway) --------------------------------

    def record_submit(self, session_id: str, depth: int) -> None:
        """One admitted request; ``depth`` is the queue depth after it."""
        with self._lock:
            self.submitted += 1
            entry = self._session(session_id)
            entry["submitted"] += 1
            entry["queue_depth"] = depth
            entry["max_queue_depth"] = max(entry["max_queue_depth"], depth)

    def record_shed(self, kind: str, session_id: str | None = None) -> None:
        """One request refused (``overload``/``timeout``/``shutdown``)."""
        if kind not in self.sheds:
            raise ValidationError(
                f"unknown shed kind {kind!r}; known: {SHED_KINDS}"
            )
        with self._lock:
            self.sheds[kind] += 1
            if session_id is not None:
                self._session(session_id)["shed"] += 1

    def record_claim(self, session_id: str, waits: list[float],
                     depth: int) -> None:
        """A worker claimed a batch; ``waits`` are per-request queue
        waits, ``depth`` the queue depth left behind."""
        with self._lock:
            for wait in waits:
                self.queue_wait.observe(wait)
            self._session(session_id)["queue_depth"] = depth

    def record_batch(self, session_id: str, *, size: int, sources,
                     latencies) -> None:
        """One executed batch: provenance tally + end-to-end latencies."""
        with self._lock:
            self.batches += 1
            if size > 1:
                self.coalesced_batches += 1
                self.coalesced_requests += size
            self.completed += size
            entry = self._session(session_id)
            entry["completed"] += size
            for source in sources:
                self.sources[source] = self.sources.get(source, 0) + 1
            for latency in latencies:
                self.end_to_end.observe(latency)

    def record_failure(self, session_id: str, count: int) -> None:
        """A batch execution raised; all its requests failed."""
        with self._lock:
            self.failed += count
            self._session(session_id)["failed"] += count

    # -- reading ----------------------------------------------------------

    @property
    def shed_total(self) -> int:
        """Requests refused across all shed kinds."""
        with self._lock:
            return sum(self.sheds.values())

    @property
    def cache_hits(self) -> int:
        """Answers served by zero-cost replay."""
        with self._lock:
            return self.sources.get("cache", 0)

    def snapshot(self) -> dict:
        """Full JSON-serializable state of the registry."""
        with self._lock:
            coalesce_rate = (self.coalesced_requests / self.completed
                            if self.completed else 0.0)
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": dict(self.sheds),
                "shed_total": sum(self.sheds.values()),
                "batches": self.batches,
                "coalesced_batches": self.coalesced_batches,
                "coalesced_requests": self.coalesced_requests,
                "coalesce_rate": coalesce_rate,
                "sources": dict(self.sources),
                "queue_wait": self.queue_wait.snapshot(),
                "end_to_end": self.end_to_end.snapshot(),
                "sessions": {sid: dict(entry)
                             for sid, entry in self._sessions.items()},
            }

    def to_json(self, path=None, *, indent: int = 2) -> str:
        """The snapshot as a JSON document, optionally written to disk."""
        text = json.dumps(self.snapshot(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    def describe(self) -> str:
        """One-paragraph operator summary."""
        snap = self.snapshot()
        return (
            f"gateway: {snap['submitted']} submitted, "
            f"{snap['completed']} completed, {snap['failed']} failed, "
            f"{snap['shed_total']} shed {snap['shed']}; "
            f"{snap['batches']} batches "
            f"({snap['coalesced_batches']} coalesced covering "
            f"{snap['coalesced_requests']} requests); "
            f"sources {snap['sources']}; "
            f"queue wait p50 {snap['queue_wait']['p50_seconds'] * 1e3:.2f}ms, "
            f"end-to-end p99 {snap['end_to_end']['p99_seconds'] * 1e3:.2f}ms"
        )

    # -- internals --------------------------------------------------------

    def _session(self, session_id: str) -> dict:
        entry = self._sessions.get(session_id)
        if entry is None:
            entry = {"submitted": 0, "completed": 0, "failed": 0, "shed": 0,
                     "queue_depth": 0, "max_queue_depth": 0}
            self._sessions[session_id] = entry
        return entry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GatewayMetrics(submitted={self.submitted}, "
            f"completed={self.completed}, shed={self.shed_total})"
        )


__all__ = ["GatewayMetrics", "LatencyHistogram", "BUCKET_EDGES",
           "SHED_KINDS"]
