"""Batch query planning and cross-session concurrency.

An incoming batch rarely needs one mechanism round per query. The planner
partitions a batch, *before touching private data*, into lanes ordered from
free to expensive:

- ``cached``     — already-released answers (zero cost, dictionary lookup);
- ``duplicates`` — repeats within the batch of an earlier uncached query
  (served by replaying that query's fresh answer, zero marginal cost);
- ``hypothesis`` — queries to a session whose update budget is exhausted,
  served from the final public hypothesis (pure post-processing);
- ``mechanism``  — genuinely new queries that must enter the mechanism's
  stream (and may or may not trigger a paid oracle round — that judgement
  is the sparse vector's, made on private data at execution time).

Lanes only use public information (cache keys, fingerprints, the halted
flag), so planning itself is not a privacy event.

The mechanism lane is submitted to the mechanism *as a whole batch*, not
query by query: the executor pre-warms the session through the batched
evaluation engine (:meth:`Session.prewarm` →
:func:`repro.engine.batch_data_minima`) so data-side minimizations for the
entire lane collapse into one vectorized pass, and only then streams the
lane in order (the sparse vector is a stream; order is part of the
mechanism's semantics and of the ledger's write-ahead contract).

Across sessions the mechanisms are independent, so a multi-session batch is
served concurrently by a thread pool — within a session the stream order is
preserved (mechanisms are stateful), across sessions there is no shared
mutable state beyond the thread-safe cache and ledger.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.serve.cache import AnswerCache
from repro.serve.session import Session, try_fingerprint


@dataclass(frozen=True)
class BatchPlan:
    """The lane assignment of one batch for one session."""

    fingerprints: list[str | None]
    cached: list[int] = field(default_factory=list)
    duplicates: dict[int, int] = field(default_factory=dict)
    hypothesis: list[int] = field(default_factory=list)
    mechanism: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of queries planned."""
        return len(self.fingerprints)

    @property
    def free_fraction(self) -> float:
        """Fraction of the batch served without a mechanism round."""
        if not self.fingerprints:
            return 0.0
        free = len(self.cached) + len(self.duplicates) + len(self.hypothesis)
        return free / len(self.fingerprints)

    def describe(self) -> str:
        """One-line lane summary."""
        return (
            f"plan: {self.total} queries -> {len(self.cached)} cached, "
            f"{len(self.duplicates)} in-batch duplicates, "
            f"{len(self.hypothesis)} hypothesis, "
            f"{len(self.mechanism)} mechanism"
        )

    def mechanism_lane(self, queries) -> list:
        """The mechanism-lane queries, in stream order.

        This is the batch the executor hands to the engine
        (:meth:`repro.serve.session.Session.prewarm`) before streaming the
        lane through the mechanism.
        """
        return [queries[index] for index in self.mechanism]


def plan_batch(session: Session, queries, *,
               cache: AnswerCache | None = None,
               version: int | None = None) -> BatchPlan:
    """Partition ``queries`` into serving lanes for ``session``.

    Planning reads only public state; the expensive lanes stay in original
    stream order so execution preserves the mechanism's online semantics.
    Unfingerprintable queries (fingerprint ``None``) always take the
    mechanism/hypothesis lane — they cannot be deduplicated or cached.

    ``version`` opts cache-lane planning into update-aware lookups
    (hypothesis-derived entries stamped with a different hypothesis
    version plan as fresh mechanism work — see
    :meth:`repro.serve.cache.AnswerCache.get`).
    """
    fingerprints = [try_fingerprint(query) for query in queries]
    plan = BatchPlan(fingerprints=fingerprints)
    first_seen: dict[str, int] = {}
    halted = session.halted
    for index, fingerprint in enumerate(fingerprints):
        if (fingerprint is not None and cache is not None
                and cache.contains(session.session_id, fingerprint,
                                   version=version)):
            plan.cached.append(index)
        elif fingerprint is not None and fingerprint in first_seen:
            plan.duplicates[index] = first_seen[fingerprint]
        else:
            if fingerprint is not None:
                first_seen[fingerprint] = index
            if halted:
                plan.hypothesis.append(index)
            else:
                plan.mechanism.append(index)
    return plan


def concurrent_map(worker, batches: dict, *, max_workers: int | None = None) -> dict:
    """Run ``worker(session_id, queries)`` over every batch, concurrently.

    Returns ``{session_id: worker_result}``. Exceptions propagate (the
    first one raised wins, as with any future-based fan-out) — but every
    submitted worker still runs to completion before the pool is torn
    down, so one session's failure never truncates another session's
    stream mid-batch. ``max_workers=1`` runs the batches inline on the
    calling thread, byte-identical to a serial loop; ``None`` sizes the
    pool automatically. Sessions are independent mechanisms, so
    cross-session parallelism is safe; the per-session work stays on one
    thread, preserving stream order.
    """
    if max_workers is not None and max_workers < 1:
        raise ValidationError(
            f"max_workers must be >= 1 (or None for automatic sizing), "
            f"got {max_workers}"
        )
    if not batches:
        return {}
    if max_workers is None:
        max_workers = min(8, len(batches))
    if max_workers == 1 or len(batches) == 1:
        return {sid: worker(sid, queries) for sid, queries in batches.items()}
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            sid: pool.submit(worker, sid, queries)
            for sid, queries in batches.items()
        }
        return {sid: future.result() for sid, future in futures.items()}


__all__ = ["BatchPlan", "plan_batch", "concurrent_map"]
