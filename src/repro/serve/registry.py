"""Mechanism registry: config-driven construction of query mechanisms.

The serving layer never hard-codes mechanism classes. Each mechanism type
registers a :class:`MechanismEntry` — a factory, a snapshot-restore hook,
and a description — under a string name, and sessions are opened as
``service.open_session("pmw-convex", scale=2.0, alpha=0.2, ...)``. New
mechanism types (an offline variant, a Rényi-accounted one, a stub for
testing) plug in by name without touching the service:

    registry = default_registry()

    @registry.register("my-mechanism", restore=MyMechanism.restore)
    def build_my_mechanism(dataset, *, rng=None, **params):
        return MyMechanism(dataset, **params)

Oracles are likewise referenced by name inside the ``oracle`` parameter
(``oracle="noisy-sgd"``, ``oracle={"name": "output-perturbation",
"sigma_steps": 40}``) so a session's full configuration is a JSON document
— exactly what the budget ledger journals for crash recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.erm.exponential import ExponentialMechanismOracle
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.objective_perturbation import ObjectivePerturbationOracle
from repro.erm.oracle import NonPrivateOracle, SingleQueryOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import ValidationError

#: Single-query oracle constructors by name. Each is called with
#: ``(epsilon, delta, **extra)``; PMW re-budgets the instance to its
#: per-round ``(eps0, delta0)`` via ``with_budget`` regardless.
ORACLES: dict[str, Callable[..., SingleQueryOracle]] = {
    "noisy-sgd": NoisyGradientDescentOracle,
    "output-perturbation": OutputPerturbationOracle,
    "objective-perturbation": ObjectivePerturbationOracle,
    "glm-projection": GLMProjectionOracle,
    "exponential": lambda epsilon, delta, **kw: ExponentialMechanismOracle(
        epsilon, **kw
    ),
    "non-private": lambda epsilon, delta, **kw: NonPrivateOracle(**kw),
}


def build_oracle(spec, epsilon: float, delta: float) -> SingleQueryOracle:
    """Resolve an oracle spec: an instance, a name, or ``{"name": ...}``.

    Instances pass through untouched (non-journalable: a ledger replay
    cannot rebuild them, so config-driven sessions should use names).
    """
    if isinstance(spec, SingleQueryOracle):
        return spec
    if isinstance(spec, str):
        name, extra = spec, {}
    elif isinstance(spec, dict):
        extra = dict(spec)
        name = extra.pop("name", None)
        if name is None:
            raise ValidationError("oracle dict spec requires a 'name' key")
    else:
        raise ValidationError(
            f"oracle spec must be an oracle instance, a name, or a dict, "
            f"got {type(spec).__name__}"
        )
    if name not in ORACLES:
        raise ValidationError(
            f"unknown oracle {name!r}; known: {sorted(ORACLES)}"
        )
    return ORACLES[name](epsilon, delta, **extra)


@dataclass(frozen=True)
class MechanismEntry:
    """One registered mechanism type."""

    name: str
    factory: Callable
    restore: Callable | None = None
    description: str = ""


class MechanismRegistry:
    """Name -> :class:`MechanismEntry` mapping with a decorator interface."""

    def __init__(self) -> None:
        self._entries: dict[str, MechanismEntry] = {}

    def register(self, name: str, factory: Callable | None = None, *,
                 restore: Callable | None = None, description: str = ""):
        """Register a factory, directly or as a decorator.

        ``factory(dataset, *, rng=None, **params) -> mechanism``;
        ``restore(snapshot, dataset, *, rng=None, **params) -> mechanism``.
        """
        def _register(func: Callable) -> Callable:
            if name in self._entries:
                raise ValidationError(f"mechanism {name!r} already registered")
            self._entries[name] = MechanismEntry(
                name=name, factory=func, restore=restore,
                description=description or (func.__doc__ or "").strip(),
            )
            return func

        if factory is not None:
            return _register(factory)
        return _register

    def create(self, name: str, dataset, *, rng=None, **params):
        """Build a mechanism instance by registered name."""
        return self._entry(name).factory(dataset, rng=rng, **params)

    def restore(self, name: str, snapshot: dict, dataset, *, rng=None,
                **params):
        """Rebuild a mechanism from a snapshot taken by a session."""
        entry = self._entry(name)
        if entry.restore is None:
            raise ValidationError(
                f"mechanism {name!r} does not support snapshot restore"
            )
        return entry.restore(snapshot, dataset, rng=rng, **params)

    def names(self) -> list[str]:
        """Registered mechanism names, sorted."""
        return sorted(self._entries)

    def describe(self) -> str:
        """One line per registered mechanism."""
        return "\n".join(
            f"{entry.name}: {entry.description}".rstrip(": ")
            for entry in (self._entries[n] for n in self.names())
        )

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def _entry(self, name: str) -> MechanismEntry:
        if name not in self._entries:
            raise ValidationError(
                f"unknown mechanism {name!r}; known: {self.names()}"
            )
        return self._entries[name]


def _build_pmw_convex(dataset, *, rng=None, oracle="noisy-sgd", **params):
    """Figure 3's CM mechanism (:class:`PrivateMWConvex`)."""
    epsilon = params.get("epsilon", 1.0)
    delta = params.get("delta", 1e-6)
    resolved = build_oracle(oracle, epsilon, delta)
    return PrivateMWConvex(dataset, resolved, rng=rng, **params)


def _restore_pmw_convex(snapshot, dataset, *, rng=None, oracle="noisy-sgd",
                        **params):
    config = snapshot["config"]
    resolved = build_oracle(oracle, config["epsilon"], config["delta"])
    # The numeric backend is the one restore-time parameter that may
    # legitimately differ from the snapshot (arithmetic, not state);
    # everything else is rebuilt from the snapshot itself.
    return PrivateMWConvex.restore(snapshot, dataset, resolved, rng=rng,
                                   backend=params.get("backend"))


def _build_pmw_linear(dataset, *, rng=None, **params):
    """The HR10 linear-query baseline (:class:`PrivateMWLinear`)."""
    return PrivateMWLinear(dataset, rng=rng, **params)


def _restore_pmw_linear(snapshot, dataset, *, rng=None, **params):
    return PrivateMWLinear.restore(snapshot, dataset, rng=rng,
                                   backend=params.get("backend"))


def default_registry() -> MechanismRegistry:
    """A fresh registry with the built-in mechanism types."""
    registry = MechanismRegistry()
    registry.register(
        "pmw-convex", _build_pmw_convex, restore=_restore_pmw_convex,
        description="online private MW for convex-minimization queries "
                    "(Figure 3)",
    )
    registry.register(
        "pmw-linear", _build_pmw_linear, restore=_restore_pmw_linear,
        description="online private MW for linear queries (HR10 baseline)",
    )
    return registry
